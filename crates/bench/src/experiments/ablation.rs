//! Experiment A3 — ablation of the SM timing model.
//!
//! Table III's shape (the RAP ~10× speedup on naive transposes and the
//! ~2.5× DRDW penalty) should be robust to the simulator's free
//! parameters. This experiment sweeps the memory latency, the
//! address-computation ALU cost, and the DMM pipeline latency, reporting
//! how the two headline ratios move. DESIGN.md §8 lists these as the
//! design choices worth ablating.

use rap_core::{RowShift, Scheme};
use rap_gpu_sim::{lower_program, simulate, SmConfig};
use rap_stats::{CellSummary, ExperimentRecord, SeedDomain};
use rap_transpose::{transpose_program, TransposeKind};

/// Headline ratios at one parameter setting.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which parameter was varied and its value.
    pub setting: String,
    /// CRSW time RAW / RAP (the paper's ~10×).
    pub crsw_speedup: f64,
    /// DRDW time RAP / RAW (the paper's ~2.7×).
    pub drdw_penalty: f64,
}

fn transpose_ns(kind: TransposeKind, scheme: Scheme, sm: &SmConfig, seed: u64) -> f64 {
    let w = sm.width;
    let domain = SeedDomain::new(seed).child("ablation");
    let instances = if scheme == Scheme::Raw { 1 } else { 12 };
    let mut total = 0.0;
    for inst in 0..instances {
        let mut rng = domain.child(kind.name()).child(scheme.name()).rng(inst);
        let mapping = RowShift::of_scheme(scheme, &mut rng, w);
        let program = transpose_program::<f64>(kind, &mapping, 0, (w * w) as u64);
        let alu = rap_gpu_sim::titan::transpose_alu_costs(scheme, kind == TransposeKind::Drdw);
        let kernel = lower_program(&program, w, &alu);
        total += simulate(&kernel, sm).ns;
    }
    total / instances as f64
}

/// Compute the headline ratios for one SM configuration.
#[must_use]
pub fn ratios(sm: &SmConfig, seed: u64) -> (f64, f64) {
    let crsw_raw = transpose_ns(TransposeKind::Crsw, Scheme::Raw, sm, seed);
    let crsw_rap = transpose_ns(TransposeKind::Crsw, Scheme::Rap, sm, seed);
    let drdw_raw = transpose_ns(TransposeKind::Drdw, Scheme::Raw, sm, seed);
    let drdw_rap = transpose_ns(TransposeKind::Drdw, Scheme::Rap, sm, seed);
    (crsw_raw / crsw_rap, drdw_rap / drdw_raw)
}

/// Sweep memory latency and ALU throughput around the calibrated point.
#[must_use]
pub fn run(seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for mem_latency in [4u64, 12, 26, 40, 64] {
        let sm = SmConfig {
            mem_latency,
            ..SmConfig::gtx_titan()
        };
        let (s, p) = ratios(&sm, seed);
        rows.push(AblationRow {
            setting: format!("mem_latency={mem_latency}"),
            crsw_speedup: s,
            drdw_penalty: p,
        });
    }
    for alu in [1u64, 2, 4] {
        let sm = SmConfig {
            alu_cycles_per_op: alu,
            ..SmConfig::gtx_titan()
        };
        let (s, p) = ratios(&sm, seed);
        rows.push(AblationRow {
            setting: format!("alu_cycles_per_op={alu}"),
            crsw_speedup: s,
            drdw_penalty: p,
        });
    }
    for overhead in [0u64, 12, 50, 150] {
        let sm = SmConfig {
            launch_overhead: overhead,
            ..SmConfig::gtx_titan()
        };
        let (s, p) = ratios(&sm, seed);
        rows.push(AblationRow {
            setting: format!("launch_overhead={overhead}"),
            crsw_speedup: s,
            drdw_penalty: p,
        });
    }
    // The paper's §VIII proposal: hardware RAP removes the address-ALU
    // overhead entirely.
    let (s, p) = ratios_hw(&SmConfig::gtx_titan(), seed);
    rows.push(AblationRow {
        setting: "hardware RAP (§VIII)".to_string(),
        crsw_speedup: s,
        drdw_penalty: p,
    });
    rows
}

/// [`ratios`] but with the RAP/RAS address conversion done in hardware
/// (zero extra ALU ops — `titan::transpose_alu_costs_hw`).
#[must_use]
pub fn ratios_hw(sm: &SmConfig, seed: u64) -> (f64, f64) {
    let w = sm.width;
    let domain = SeedDomain::new(seed).child("ablation-hw");
    let ns = |kind: TransposeKind, scheme: Scheme| {
        let instances = if scheme == Scheme::Raw { 1 } else { 12 };
        let mut total = 0.0;
        for inst in 0..instances {
            let mut rng = domain.child(kind.name()).child(scheme.name()).rng(inst);
            let mapping = RowShift::of_scheme(scheme, &mut rng, w);
            let program = transpose_program::<f64>(kind, &mapping, 0, (w * w) as u64);
            let alu = rap_gpu_sim::titan::transpose_alu_costs_hw(kind == TransposeKind::Drdw);
            total += simulate(&lower_program(&program, w, &alu), sm).ns;
        }
        total / instances as f64
    };
    (
        ns(TransposeKind::Crsw, Scheme::Raw) / ns(TransposeKind::Crsw, Scheme::Rap),
        ns(TransposeKind::Drdw, Scheme::Rap) / ns(TransposeKind::Drdw, Scheme::Raw),
    )
}

/// Serialize the sweep.
#[must_use]
pub fn to_record(seed: u64, rows: &[AblationRow]) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "A3",
        "Ablation: robustness of Table III's shape to SM model parameters",
        format!("seed={seed}; paper ratios: speedup 10.3, penalty 2.74"),
    );
    for r in rows {
        record.push(CellSummary::exact(
            "CRSW RAW/RAP speedup",
            &r.setting,
            r.crsw_speedup,
            Some(1595.0 / 154.5),
        ));
        record.push(CellSummary::exact(
            "DRDW RAP/RAW penalty",
            &r.setting,
            r.drdw_penalty,
            Some(433.3 / 158.4),
        ));
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_robust_across_parameters() {
        for r in run(3) {
            assert!(
                r.crsw_speedup > 4.0,
                "{}: RAP must stay clearly ahead, got {:.1}x",
                r.setting,
                r.crsw_speedup
            );
            assert!(
                r.drdw_penalty > 1.3 && r.drdw_penalty < 5.0,
                "{}: DRDW penalty {:.1} out of plausible range",
                r.setting,
                r.drdw_penalty
            );
        }
    }

    #[test]
    fn calibrated_point_is_near_paper() {
        let (speedup, penalty) = ratios(&SmConfig::gtx_titan(), 3);
        assert!((7.0..14.0).contains(&speedup), "speedup {speedup:.1}");
        assert!((1.8..3.6).contains(&penalty), "penalty {penalty:.2}");
    }

    #[test]
    fn record_covers_all_settings() {
        let rows = run(3);
        let rec = to_record(3, &rows);
        assert_eq!(rec.cells.len(), rows.len() * 2);
    }
}
