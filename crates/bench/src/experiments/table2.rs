//! Experiment T2 — reproduce Table II: expected congestion of memory
//! access to a `w × w` matrix, for `w ∈ {16, 32, 64, 128, 256}`, patterns
//! {contiguous, stride, diagonal, random} × schemes {RAW, RAS, RAP}.

use crate::paper::table2_reference;
use rap_access::montecarlo::{matrix_congestion, TRIALS_PER_BLOCK};
use rap_access::resilient::{matrix_congestion_resilient, ResilientConfig};
use rap_access::MatrixPattern;
use rap_core::Scheme;
use rap_resilience::BlockReport;
use rap_stats::{CellSummary, ExperimentRecord, OnlineStats, SeedDomain};

/// Configuration of the Table II sweep.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Matrix widths to sweep (the paper uses 16..256).
    pub widths: Vec<usize>,
    /// Monte-Carlo trials at `w = 32`; other widths are scaled by `32/w`
    /// so each cell sees a comparable number of warp samples.
    pub base_trials: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            widths: crate::paper::TABLE2_WIDTHS.to_vec(),
            base_trials: 2000,
            seed: 2014,
        }
    }
}

impl Table2Config {
    /// Trials used at width `w` (≥ 100).
    #[must_use]
    pub fn trials_for(&self, w: usize) -> u64 {
        ((self.base_trials * 32) / w as u64).max(100)
    }

    /// The checkpoint fingerprint of this sweep: every parameter that
    /// shapes the block structure or the sample streams, plus the engine
    /// block size. A ledger written under different parameters must never
    /// be resumed into this run.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        rap_resilience::fingerprint([
            "t2".to_string(),
            format!("widths={:?}", self.widths),
            format!("base_trials={}", self.base_trials),
            format!("seed={}", self.seed),
            format!("block={TRIALS_PER_BLOCK}"),
        ])
    }
}

/// One measured cell of Table II.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Access pattern (row).
    pub pattern: MatrixPattern,
    /// Mapping scheme (column group).
    pub scheme: Scheme,
    /// Matrix width.
    pub w: usize,
    /// Measured congestion statistics.
    pub stats: OnlineStats,
    /// The paper's value for this cell.
    pub paper: Option<f64>,
}

/// Run the full sweep. Cells run serially; each cell's Monte-Carlo
/// estimator parallelizes over trials internally (see
/// [`rap_access::montecarlo`]), which balances far better than one thread
/// per cell — large-`w` cells no longer straggle behind an idle pool.
#[must_use]
pub fn run(cfg: &Table2Config) -> Vec<Table2Cell> {
    let domain = SeedDomain::new(cfg.seed).child("table2");
    let mut cells: Vec<(MatrixPattern, Scheme, usize)> = Vec::new();
    for pattern in MatrixPattern::table2() {
        for scheme in Scheme::all() {
            for &w in &cfg.widths {
                cells.push((pattern, scheme, w));
            }
        }
    }
    cells
        .into_iter()
        .map(|(pattern, scheme, w)| {
            let cell_domain = domain
                .child(pattern.name())
                .child(scheme.name())
                .child_idx(w as u64);
            let stats = matrix_congestion(scheme, pattern, w, cfg.trials_for(w), &cell_domain);
            Table2Cell {
                pattern,
                scheme,
                w,
                stats,
                paper: table2_reference(scheme, pattern.name(), w),
            }
        })
        .collect()
}

/// [`run`] through the resilient executor: identical cell order, cell
/// domains, and sample streams, plus checkpointing to `rcfg.ledger`,
/// panic retry, and budget degradation. A clean run (no faults, no
/// budget hits) returns cells bit-identical to [`run`]'s; a resumed run
/// re-executes only blocks missing from the ledger and still merges to
/// the identical bits.
#[must_use]
pub fn run_resilient(
    cfg: &Table2Config,
    rcfg: &ResilientConfig<'_>,
) -> (Vec<Table2Cell>, BlockReport) {
    let domain = SeedDomain::new(cfg.seed).child("table2");
    let mut report = BlockReport::default();
    let mut cells = Vec::new();
    for pattern in MatrixPattern::table2() {
        for scheme in Scheme::all() {
            for &w in &cfg.widths {
                let cell_domain = domain
                    .child(pattern.name())
                    .child(scheme.name())
                    .child_idx(w as u64);
                let key = format!("{}/{}/w={w}", pattern.name(), scheme.name());
                let run = matrix_congestion_resilient(
                    scheme,
                    pattern,
                    w,
                    cfg.trials_for(w),
                    &cell_domain,
                    &key,
                    rcfg,
                );
                report.absorb(&run.report);
                cells.push(Table2Cell {
                    pattern,
                    scheme,
                    w,
                    stats: run.stats,
                    paper: table2_reference(scheme, pattern.name(), w),
                });
            }
        }
    }
    (cells, report)
}

/// The sweep as distributable [`rap_cluster::SweepCell`]s: identical
/// cell order, checkpoint keys, and seed domains to [`run_resilient`],
/// so a cluster coordinator's merge is bit-identical to [`run`] and a
/// ledger written by either executor resumes into the other.
#[must_use]
pub fn sweep_cells(cfg: &Table2Config) -> Vec<rap_cluster::SweepCell> {
    let domain = SeedDomain::new(cfg.seed).child("table2");
    let mut cells = Vec::new();
    for pattern in MatrixPattern::table2() {
        for scheme in Scheme::all() {
            for &w in &cfg.widths {
                let cell_domain = domain
                    .child(pattern.name())
                    .child(scheme.name())
                    .child_idx(w as u64);
                cells.push(rap_cluster::SweepCell::new(
                    format!("{}/{}/w={w}", pattern.name(), scheme.name()),
                    pattern,
                    scheme,
                    w,
                    cfg.trials_for(w),
                    &cell_domain,
                ));
            }
        }
    }
    cells
}

/// Attach merged per-cell statistics (in [`sweep_cells`] order) back to
/// [`Table2Cell`]s carrying the paper references.
///
/// # Panics
/// When `stats` does not have one entry per sweep cell.
#[must_use]
pub fn cells_from_stats(cfg: &Table2Config, stats: &[OnlineStats]) -> Vec<Table2Cell> {
    let shape = sweep_cells(cfg);
    assert_eq!(shape.len(), stats.len(), "one stats entry per sweep cell");
    shape
        .iter()
        .zip(stats)
        .map(|(c, s)| Table2Cell {
            pattern: c.pattern,
            scheme: c.scheme,
            w: c.width,
            stats: *s,
            paper: table2_reference(c.scheme, c.pattern.name(), c.width),
        })
        .collect()
}

/// Convert the measured cells into a serializable record.
#[must_use]
pub fn to_record(cfg: &Table2Config, cells: &[Table2Cell]) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "T2",
        "Table II: expected congestion of matrix access patterns",
        format!(
            "widths={:?} base_trials={} seed={}",
            cfg.widths, cfg.base_trials, cfg.seed
        ),
    );
    for c in cells {
        record.push(CellSummary::from_stats(
            c.pattern.name(),
            format!("{} w={}", c.scheme, c.w),
            &c.stats,
            c.paper,
        ));
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Table2Config {
        Table2Config {
            widths: vec![16, 32],
            base_trials: 60,
            seed: 7,
        }
    }

    #[test]
    fn sweep_covers_all_cells() {
        let cfg = small_cfg();
        let cells = run(&cfg);
        // 4 patterns × 3 schemes × 2 widths
        assert_eq!(cells.len(), 24);
        assert!(cells.iter().all(|c| c.stats.count() > 0));
        assert!(cells.iter().all(|c| c.paper.is_some()));
    }

    #[test]
    fn deterministic_cells_are_exact() {
        let cells = run(&small_cfg());
        for c in &cells {
            if c.pattern == MatrixPattern::Contiguous {
                assert_eq!(c.stats.mean(), 1.0, "{} w={}", c.scheme, c.w);
            }
            if c.pattern == MatrixPattern::Stride && c.scheme == Scheme::Rap {
                assert_eq!(c.stats.mean(), 1.0);
            }
            if c.pattern == MatrixPattern::Stride && c.scheme == Scheme::Raw {
                assert_eq!(c.stats.mean(), c.w as f64);
            }
        }
    }

    #[test]
    fn stochastic_cells_land_near_paper() {
        let cells = run(&Table2Config {
            widths: vec![32],
            base_trials: 600,
            seed: 11,
        });
        for c in &cells {
            if let Some(p) = c.paper {
                let tol: f64 = if p > 2.0 { 0.15 } else { 1e-9 };
                assert!(
                    (c.stats.mean() - p).abs() <= tol.max(p * 0.05),
                    "{} {} w={}: measured {} vs paper {p}",
                    c.pattern,
                    c.scheme,
                    c.w,
                    c.stats.mean()
                );
            }
        }
    }

    #[test]
    fn trials_scale_with_width() {
        let cfg = Table2Config::default();
        assert!(cfg.trials_for(16) > cfg.trials_for(256));
        assert!(cfg.trials_for(4096) >= 100);
    }

    #[test]
    fn record_has_all_cells() {
        let cfg = small_cfg();
        let cells = run(&cfg);
        let rec = to_record(&cfg, &cells);
        assert_eq!(rec.cells.len(), cells.len());
        assert_eq!(rec.id, "T2");
        assert!(rec.worst_relative_error().is_some());
    }

    #[test]
    fn sweep_is_reproducible() {
        let cfg = small_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn resilient_sweep_is_bit_identical_to_plain() {
        let cfg = small_cfg();
        let plain = run(&cfg);
        let ledger = rap_resilience::Ledger::in_memory();
        let (cells, report) = run_resilient(&cfg, &ResilientConfig::new(&ledger));
        assert!(!report.degraded());
        assert_eq!(report.total_blocks, report.completed);
        assert_eq!(cells.len(), plain.len());
        for (a, b) in cells.iter().zip(&plain) {
            assert_eq!((a.pattern, a.scheme, a.w), (b.pattern, b.scheme, b.w));
            assert_eq!(
                a.stats.to_raw(),
                b.stats.to_raw(),
                "{} {} w={}",
                a.pattern,
                a.scheme,
                a.w
            );
        }
    }

    #[test]
    fn resumed_sweep_matches_clean_sweep_bit_for_bit() {
        use rap_resilience::{Ledger, SyncPolicy};
        let cfg = small_cfg();
        let fp = cfg.fingerprint();
        let dir = std::env::temp_dir().join(format!("rap-t2-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t2.ledger");

        // "Killed" first run: budget allows only one block per cell, so
        // the ledger holds a strict prefix of the work.
        {
            let ledger = Ledger::open(&path, fp, SyncPolicy::Flush).unwrap();
            let rcfg = ResilientConfig {
                ledger: &ledger,
                budget: rap_resilience::RunBudget::unlimited().with_block_cap(1),
                retry: rap_resilience::RetryPolicy::default(),
            };
            let (_, report) = run_resilient(&cfg, &rcfg);
            assert!(report.degraded(), "the cap must leave work undone");
            assert!(report.completed > 0, "some blocks must have checkpointed");
        }

        // Resume and compare against an uninterrupted run.
        let ledger = Ledger::open(&path, fp, SyncPolicy::Flush).unwrap();
        assert!(ledger.resumed_entries() > 0);
        let (resumed, report) = run_resilient(&cfg, &ResilientConfig::new(&ledger));
        assert!(!report.degraded());
        assert!(
            report.from_checkpoint > 0,
            "the resume must reuse the ledger"
        );
        for (a, b) in resumed.iter().zip(&run(&cfg)) {
            assert_eq!(
                a.stats.to_raw(),
                b.stats.to_raw(),
                "{} {} w={}",
                a.pattern,
                a.scheme,
                a.w
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_sweep_over_these_cells_matches_run_bit_for_bit() {
        use rap_cluster::{Cluster, ClusterConfig, WorkerPool};
        let cfg = small_cfg();
        let plain = run(&cfg);
        let cells = sweep_cells(&cfg);
        assert_eq!(cells.len(), plain.len());
        let pool = WorkerPool::in_process(2).expect("spawn workers");
        let cluster = Cluster::new(pool, ClusterConfig::default());
        let ledger = rap_resilience::Ledger::in_memory();
        let (merged, report) = cluster.run_sweep(&cells, &ledger);
        assert!(!report.degraded, "{report:?}");
        let rebuilt = cells_from_stats(&cfg, &merged);
        for (a, b) in rebuilt.iter().zip(&plain) {
            assert_eq!((a.pattern, a.scheme, a.w), (b.pattern, b.scheme, b.w));
            assert_eq!(a.paper, b.paper);
            assert_eq!(
                a.stats.to_raw(),
                b.stats.to_raw(),
                "{} {} w={}",
                a.pattern,
                a.scheme,
                a.w
            );
        }
        cluster.pool().shutdown();
    }

    #[test]
    fn fingerprint_tracks_every_parameter() {
        let base = small_cfg();
        let fp = base.fingerprint();
        assert_eq!(fp, small_cfg().fingerprint());
        for cfg in [
            Table2Config {
                seed: 8,
                ..small_cfg()
            },
            Table2Config {
                base_trials: 61,
                ..small_cfg()
            },
            Table2Config {
                widths: vec![16],
                ..small_cfg()
            },
        ] {
            assert_ne!(cfg.fingerprint(), fp);
        }
    }
}
