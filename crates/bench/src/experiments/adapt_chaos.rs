//! Experiment ADAPT_CHAOS: soak the self-healing adaptive remapping
//! layer end to end — live servers, shifting traffic, epoch fault
//! storms, and kills mid-migration — and prove its three headline
//! guarantees each time:
//!
//! 1. **Swap under traffic shift** — an unfrozen adaptive server fed
//!    contiguous traffic stays put; shifting the storm to stride
//!    traffic (pathological for the initial `raw` layout) makes the
//!    controller propose, migrate, and commit a better scheme, after
//!    which the *measured* windowed stride congestion drops strictly
//!    below the old scheme's certified bound. The server's response
//!    conservation law holds throughout.
//! 2. **Epoch fault storm** — panics at `adapt.observe`/`adapt.propose`
//!    /`adapt.migrate`/`adapt.commit`, plus partial writes and delays
//!    inside epoch-ledger appends, while adaptive traffic keeps
//!    flowing. Every request is still answered (conservation), the
//!    controller never reaches an invalid phase, and the storm must
//!    actually bite (observed faults > 0) or the check fails as vacuous.
//! 3. **Kill mid-migration, resume byte-identical** — a server is
//!    killed while a forced migration is in flight; the restart rolls
//!    the interrupted epoch back and its adaptive answers are
//!    **byte-identical** to the static path on the rolled-back scheme.
//!    A second kill *after* a commit proves the committed epoch
//!    survives: the next restart answers byte-identically to the static
//!    path on the *new* scheme.
//!
//! With a `--server-bin` path the servers are real `rap serve --adapt`
//! processes on real sockets and the kills are genuine SIGKILLs (CI
//! does this); otherwise the same wire protocol runs against in-process
//! servers. The fault-storm check always runs in-process — failpoint
//! registries are per-process, so faults installed here cannot reach a
//! child.

use super::serve_chaos::SoakCheck;
use rap_resilience::{install, FailPlan, Fault, HitSchedule};
use rap_serve::{AdaptOptions, Client, Response, Server, ServerConfig, ServerHandle};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Soak parameters (see the module docs).
#[derive(Debug, Clone)]
pub struct AdaptChaosConfig {
    /// Root seed keying request seeds and fault schedules.
    pub seed: u64,
    /// Tile width of every adaptive server (16 keeps the stride
    /// pathology sharp: congestion = width under `raw`).
    pub width: usize,
    /// Requests per traffic phase in the swap and storm checks.
    pub requests: u64,
    /// Spawn real `rap serve --adapt` processes from this binary;
    /// `None` runs in-process servers over the same wire protocol.
    pub server_bin: Option<PathBuf>,
}

impl Default for AdaptChaosConfig {
    fn default() -> Self {
        AdaptChaosConfig {
            seed: 2014,
            width: 16,
            requests: 192,
            server_bin: None,
        }
    }
}

/// The full soak result, written to `results/adapt_chaos.json`.
#[derive(Debug, Serialize)]
pub struct AdaptChaosReport {
    /// Root seed.
    pub seed: u64,
    /// Tile width.
    pub width: u64,
    /// Whether servers were real processes (`rap serve --adapt`).
    pub process_servers: bool,
    /// Total requests driven across all checks.
    pub requests_driven: u64,
    /// Committed swaps observed across all checks.
    pub swaps_observed: u64,
    /// Epoch faults + rollbacks the storm check survived.
    pub faults_survived: u64,
    /// One entry per check.
    pub checks: Vec<SoakCheck>,
    /// True iff every check passed.
    pub passed: bool,
}

/// One adaptive server under test — in-process or a spawned child.
enum AdaptServer {
    InProcess(ServerHandle),
    Process(Child, SocketAddr),
}

impl AdaptServer {
    fn addr(&self) -> SocketAddr {
        match self {
            AdaptServer::InProcess(h) => h.addr(),
            AdaptServer::Process(_, addr) => *addr,
        }
    }

    /// Kill the server without draining: SIGKILL for a child process; an
    /// immediate shutdown for an in-process server. Either way no epoch
    /// record is written after this point.
    fn kill(self) {
        match self {
            AdaptServer::InProcess(h) => {
                h.begin_shutdown();
                let _ = h.join();
            }
            AdaptServer::Process(mut child, _) => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// The adaptive controller settings every server in the soak runs:
/// initial `raw` (whose stride bound equals the width — the worst
/// certified candidate for the shifted storm), fast evaluation cadence,
/// and a short automatic migration.
fn adapt_config(cfg: &AdaptChaosConfig, frozen: bool) -> rap_adapt::AdaptConfig {
    rap_adapt::AdaptConfig {
        width: cfg.width,
        initial: "raw".to_string(),
        seed: cfg.seed,
        window: 64,
        eval_every: 8,
        min_samples: 8,
        migrate_steps: 4,
        start_frozen: frozen,
        ..rap_adapt::AdaptConfig::default()
    }
}

/// Start one adaptive server per the config's backend choice.
fn start_server(
    cfg: &AdaptChaosConfig,
    ledger: Option<&std::path::Path>,
    frozen: bool,
) -> Result<AdaptServer, String> {
    match &cfg.server_bin {
        None => {
            let handle = Server::bind(ServerConfig {
                workers: 4,
                adapt: Some(AdaptOptions {
                    config: adapt_config(cfg, frozen),
                    ledger: ledger.map(std::path::Path::to_path_buf),
                }),
                ..ServerConfig::default()
            })
            .and_then(Server::spawn)
            .map_err(|e| format!("in-process adaptive server: {e}"))?;
            Ok(AdaptServer::InProcess(handle))
        }
        Some(bin) => {
            let mut args = vec![
                "serve".to_string(),
                "--addr".to_string(),
                "127.0.0.1:0".to_string(),
                "--workers".to_string(),
                "4".to_string(),
                "--adapt".to_string(),
                "--adapt-width".to_string(),
                cfg.width.to_string(),
                "--adapt-initial".to_string(),
                "raw".to_string(),
                "--adapt-seed".to_string(),
                cfg.seed.to_string(),
                "--adapt-window".to_string(),
                "64".to_string(),
                "--adapt-eval-every".to_string(),
                "8".to_string(),
                "--adapt-min-samples".to_string(),
                "8".to_string(),
                "--adapt-migrate-steps".to_string(),
                "4".to_string(),
            ];
            if frozen {
                args.push("--adapt-frozen".to_string());
            }
            if let Some(path) = ledger {
                args.push("--adapt-ledger".to_string());
                args.push(path.display().to_string());
            }
            let mut child = Command::new(bin)
                .args(&args)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawning {}: {e}", bin.display()))?;
            let stdout = child.stdout.take().ok_or("child stdout was not captured")?;
            let mut reader = BufReader::new(stdout);
            let addr = loop {
                let mut line = String::new();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| format!("reading readiness: {e}"))?;
                if n == 0 {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err("server exited before its readiness line".to_string());
                }
                if let Some(rest) = line.trim().strip_prefix(rap_cluster::READY_PREFIX) {
                    break rest
                        .trim()
                        .parse::<SocketAddr>()
                        .map_err(|e| format!("bad readiness address '{rest}': {e}"))?;
                }
            };
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader.into_inner(), &mut std::io::sink());
            });
            Ok(AdaptServer::Process(child, addr))
        }
    }
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    Client::connect_with_timeout(addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))
}

fn roundtrip(client: &mut Client, line: &str) -> Result<Response, String> {
    client
        .roundtrip(line)
        .map_err(|e| format!("roundtrip `{line}`: {e}"))
}

/// A field of an object `Value`, by key.
fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn data_field<'a>(resp: &'a Response, key: &str) -> Result<&'a Value, String> {
    resp.data
        .as_ref()
        .and_then(|d| field(d, key))
        .ok_or_else(|| format!("no '{key}' in {resp:?}"))
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Parsed slice of an `adapt_status` payload the checks assert on.
struct Status {
    scheme: String,
    phase: String,
    swaps: u64,
    rollbacks: u64,
    observe_faults: u64,
    swap_faults: u64,
    resumed_records: u64,
    resumed_interrupted: bool,
    /// (windowed mean, active certified bound) for the stride class.
    stride: (f64, f64),
}

fn adapt_status(client: &mut Client) -> Result<Status, String> {
    let resp = roundtrip(client, r#"{"cmd":"adapt_status"}"#)?;
    if !resp.ok {
        return Err(format!("adapt_status rejected: {resp:?}"));
    }
    let stride = data_field(&resp, "classes")?
        .as_array()
        .ok_or("classes is not an array")?
        .iter()
        .find(|c| field(c, "class").and_then(as_str) == Some("stride"))
        .ok_or("no stride class in status")?;
    let stride = (
        field(stride, "mean").and_then(as_f64).unwrap_or(f64::NAN),
        field(stride, "bound").and_then(as_f64).unwrap_or(f64::NAN),
    );
    let get_u64 = |key: &str| -> Result<u64, String> {
        data_field(&resp, key)
            .ok()
            .and_then(as_u64)
            .ok_or_else(|| format!("'{key}' is not a number in {resp:?}"))
    };
    Ok(Status {
        scheme: data_field(&resp, "scheme")
            .ok()
            .and_then(|v| as_str(v).map(str::to_string))
            .ok_or("no scheme in status")?,
        phase: data_field(&resp, "phase")
            .ok()
            .and_then(|v| as_str(v).map(str::to_string))
            .ok_or("no phase in status")?,
        swaps: get_u64("swaps")?,
        rollbacks: get_u64("rollbacks")?,
        observe_faults: get_u64("observe_faults")?,
        swap_faults: get_u64("swap_faults")?,
        resumed_records: get_u64("resumed_records")?,
        resumed_interrupted: data_field(&resp, "resumed_interrupted")
            .is_ok_and(|v| matches!(v, Value::Bool(true))),
        stride,
    })
}

/// `received == completed_ok + degraded_served + errors_total`, read
/// from the server's own stats endpoint.
fn conservation_holds(client: &mut Client) -> Result<(), String> {
    let resp = roundtrip(client, r#"{"cmd":"stats"}"#)?;
    match data_field(&resp, "conserves_responses")? {
        Value::Bool(true) => Ok(()),
        other => Err(format!("conservation broken: {other:?}")),
    }
}

/// One adaptive `pattern` request line.
fn adaptive_line(id: u64, pattern: &str, width: usize, seed: u64) -> String {
    format!(
        r#"{{"cmd":"pattern","id":{id},"pattern":"{pattern}","scheme":"adaptive","width":{width},"trials":2,"seed":{seed}}}"#
    )
}

/// The same request against a static scheme (the byte-identity
/// reference).
fn static_line(id: u64, pattern: &str, scheme: &str, width: usize, seed: u64) -> String {
    format!(
        r#"{{"cmd":"pattern","id":{id},"pattern":"{pattern}","scheme":"{scheme}","width":{width},"trials":2,"seed":{seed}}}"#
    )
}

/// Drive `n` adaptive requests of one pattern; every response must be
/// `ok` (the breaker never opens in these soaks). Returns requests sent.
fn drive(
    client: &mut Client,
    pattern: &str,
    n: u64,
    width: usize,
    seed: u64,
) -> Result<u64, String> {
    for i in 0..n {
        let resp = roundtrip(client, &adaptive_line(i, pattern, width, seed ^ i))?;
        if !resp.ok {
            return Err(format!("adaptive {pattern} request {i} failed: {resp:?}"));
        }
    }
    Ok(n)
}

/// Check 1: contiguous traffic holds steady; a stride storm triggers a
/// certified swap; the measured stride congestion ends below the old
/// scheme's certified bound; conservation holds throughout.
fn swap_under_traffic_shift(cfg: &AdaptChaosConfig) -> Result<(String, u64, u64), String> {
    let server = start_server(cfg, None, false)?;
    let mut client = connect(server.addr())?;
    let mut driven = 0u64;

    // Phase 1: contiguous traffic — congestion 1.0 under every scheme,
    // so no swap can pay off.
    driven += drive(
        &mut client,
        "contiguous",
        cfg.requests / 3,
        cfg.width,
        cfg.seed,
    )?;
    let calm = adapt_status(&mut client)?;
    if calm.swaps != 0 || calm.scheme != "raw" {
        server.kill();
        return Err(format!(
            "calm contiguous traffic must not trigger a swap (swaps {}, scheme {})",
            calm.swaps, calm.scheme
        ));
    }
    // The old scheme's certified stride bound, straight from the active
    // candidate before anything shifts (raw: bound == width).
    let old_bound = calm.stride.1;
    if !(old_bound.is_finite() && old_bound >= cfg.width as f64) {
        server.kill();
        return Err(format!(
            "raw's certified stride bound looks wrong: {old_bound}"
        ));
    }

    // Phase 2: the storm shifts to stride — pathological for raw.
    driven += drive(&mut client, "stride", cfg.requests, cfg.width, cfg.seed)?;
    let shifted = adapt_status(&mut client)?;
    if shifted.swaps == 0 || shifted.scheme == "raw" {
        server.kill();
        return Err(format!(
            "the stride storm never triggered a swap (phase {}, scheme {}, mean {:.2})",
            shifted.phase, shifted.scheme, shifted.stride.0
        ));
    }

    // Phase 3: keep driving stride until the monitor window holds only
    // post-swap samples, then compare measured congestion to the OLD
    // certified bound — the observable "self-healing" claim.
    driven += drive(&mut client, "stride", 80, cfg.width, cfg.seed)?;
    let healed = adapt_status(&mut client)?;
    let measured = healed.stride.0;
    if !(measured.is_finite() && measured < old_bound) {
        server.kill();
        return Err(format!(
            "measured stride congestion {measured:.2} did not drop below the old certified \
             bound {old_bound} (scheme {}, phase {})",
            healed.scheme, healed.phase
        ));
    }
    conservation_holds(&mut client)?;
    let detail = format!(
        "swap raw -> {} committed under a stride storm; measured congestion {measured:.2} \
         < old certified bound {old_bound} ({driven} requests, conservation holds)",
        healed.scheme
    );
    let swaps = healed.swaps;
    server.kill();
    Ok((detail, driven, swaps))
}

/// Check 2: epoch fault storm — always in-process (failpoints are
/// process-local). The server must answer everything, the controller
/// must end in a valid phase, and the storm must actually bite.
fn epoch_fault_storm(cfg: &AdaptChaosConfig) -> Result<(String, u64, u64), String> {
    let in_process = AdaptChaosConfig {
        server_bin: None,
        ..cfg.clone()
    };
    // The epoch sites fire only on transitions (evaluation every
    // `eval_every` observations; propose/migrate/commit rarer still),
    // so rates are aggressive — a 1/7 observe rate at mini scale sees
    // ~12 hits and can legitimately never fire. Rules stack per site:
    // some hits panic (the worker must isolate them — those leave no
    // counter), the rest inject ENOSPC (counted, so the storm's bite is
    // provable from `adapt_status`).
    let guard = install(
        FailPlan::new(cfg.seed)
            .rule(
                "adapt.observe",
                Fault::Panic,
                HitSchedule::Rate { num: 1, den: 7 },
            )
            .rule(
                "adapt.observe",
                Fault::Enospc,
                HitSchedule::Rate { num: 1, den: 3 },
            )
            .rule(
                "adapt.propose",
                Fault::Panic,
                HitSchedule::Rate { num: 1, den: 7 },
            )
            .rule(
                "adapt.propose",
                Fault::Enospc,
                HitSchedule::Rate { num: 1, den: 4 },
            )
            .rule(
                "adapt.migrate",
                Fault::Enospc,
                HitSchedule::Rate { num: 1, den: 3 },
            )
            .rule(
                "adapt.commit",
                Fault::Enospc,
                HitSchedule::Rate { num: 1, den: 4 },
            )
            .rule(
                "ledger.append",
                Fault::PartialWrite,
                HitSchedule::Rate { num: 1, den: 11 },
            )
            .rule(
                "ledger.append",
                Fault::Delay,
                HitSchedule::Rate { num: 1, den: 9 },
            ),
    );
    let result = (|| -> Result<(String, u64, u64), String> {
        let server = start_server(&in_process, None, false)?;
        let mut client = connect(server.addr())?;
        let mut driven = 0u64;
        let mut status = adapt_status(&mut client)?;
        // Stride-heavy traffic keeps proposing swaps straight into the
        // fault storm; contiguous interludes vary the interleavings.
        // Keep storming past the base six rounds until a fault lands
        // (bounded) — a storm nothing survives proves nothing.
        for round in 0..24u64 {
            let pattern = if round % 3 == 2 {
                "contiguous"
            } else {
                "stride"
            };
            driven += drive(
                &mut client,
                pattern,
                cfg.requests / 6,
                cfg.width,
                cfg.seed ^ round,
            )?;
            status = adapt_status(&mut client)?;
            if round >= 5 && status.observe_faults + status.swap_faults + status.rollbacks > 0 {
                break;
            }
        }
        if !matches!(status.phase.as_str(), "stable" | "proposed" | "migrating") {
            server.kill();
            return Err(format!("invalid controller phase '{}'", status.phase));
        }
        let faults = status.observe_faults + status.swap_faults + status.rollbacks;
        if faults == 0 {
            server.kill();
            return Err("the fault storm never bit; the check proved nothing".to_string());
        }
        conservation_holds(&mut client)?;
        let detail = format!(
            "{driven} requests answered through {} observe fault(s), {} swap fault(s), \
             {} rollback(s); controller ended {} / {} (conservation holds)",
            status.observe_faults,
            status.swap_faults,
            status.rollbacks,
            status.scheme,
            status.phase
        );
        let swaps = status.swaps;
        server.kill();
        Ok((detail, driven, faults.max(swaps)))
    })();
    drop(guard);
    result
}

/// The probe set both sides of a byte-identity comparison answer.
const PROBE_PATTERNS: &[&str] = &["contiguous", "stride", "diagonal", "random"];

/// Every adaptive answer must re-serialize byte-identically to the
/// static path on `scheme`, over the same connection.
fn assert_adaptive_matches_static(
    client: &mut Client,
    scheme: &str,
    width: usize,
    seed: u64,
) -> Result<(), String> {
    for (i, pattern) in PROBE_PATTERNS.iter().enumerate() {
        let id = 9_000 + i as u64;
        let adaptive = roundtrip(client, &adaptive_line(id, pattern, width, seed ^ i as u64))?;
        let reference = roundtrip(
            client,
            &static_line(id, pattern, scheme, width, seed ^ i as u64),
        )?;
        let (a, r) = (adaptive.to_line(), reference.to_line());
        if a != r {
            return Err(format!(
                "adaptive '{pattern}' diverged from static '{scheme}':\n  adaptive:  {a}\n  reference: {r}"
            ));
        }
    }
    Ok(())
}

/// Check 3: kill a server mid-migration; the restart must roll back to
/// the last committed epoch and answer byte-identically to the static
/// path on it. Kill again after a commit; the next restart must keep
/// the committed scheme, byte-identically.
fn kill_mid_migration_resume(cfg: &AdaptChaosConfig) -> Result<(String, u64, u64), String> {
    let dir = std::env::temp_dir().join(format!(
        "rap-adapt-chaos-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
    let ledger = dir.join("epochs.jsonl");
    let mut driven = 0u64;

    // Server A: forced swap with a migration long enough that nothing
    // can commit it before the kill.
    let server = start_server(cfg, Some(&ledger), true)?;
    let mut client = connect(server.addr())?;
    let forced = roundtrip(
        &mut client,
        r#"{"cmd":"adapt_force","target":"padded","steps":1000000}"#,
    )?;
    if !forced.ok {
        server.kill();
        return Err(format!("force failed: {forced:?}"));
    }
    driven += drive(&mut client, "stride", 3, cfg.width, cfg.seed)?;
    drop(client);
    server.kill(); // mid-migration: Proposed+Migrating are on disk, no commit

    // Server B: resume must roll back to raw, bit-identically.
    let server = start_server(cfg, Some(&ledger), true)?;
    let mut client = connect(server.addr())?;
    let resumed = adapt_status(&mut client)?;
    if !(resumed.resumed_interrupted && resumed.scheme == "raw" && resumed.phase == "stable") {
        server.kill();
        return Err(format!(
            "expected a rolled-back resume to raw/stable, got {}/{} (interrupted {})",
            resumed.scheme, resumed.phase, resumed.resumed_interrupted
        ));
    }
    assert_adaptive_matches_static(&mut client, "raw", cfg.width, cfg.seed)?;
    driven += 2 * PROBE_PATTERNS.len() as u64;
    let rollback_records = resumed.resumed_records;

    // Commit a swap for real this time, then kill post-commit.
    let forced = roundtrip(
        &mut client,
        r#"{"cmd":"adapt_force","target":"padded","steps":0}"#,
    )?;
    if !forced.ok {
        server.kill();
        return Err(format!("post-resume force failed: {forced:?}"));
    }
    drop(client);
    server.kill();

    // Server C: the committed epoch must survive the kill.
    let server = start_server(cfg, Some(&ledger), true)?;
    let mut client = connect(server.addr())?;
    let committed = adapt_status(&mut client)?;
    if !(committed.scheme == "padded"
        && committed.phase == "stable"
        && !committed.resumed_interrupted)
    {
        server.kill();
        return Err(format!(
            "expected the committed padded epoch to survive, got {}/{} (interrupted {})",
            committed.scheme, committed.phase, committed.resumed_interrupted
        ));
    }
    if committed.resumed_records == 0 {
        server.kill();
        return Err("the final resume replayed no records; the ledger went missing".to_string());
    }
    assert_adaptive_matches_static(&mut client, "padded", cfg.width, cfg.seed)?;
    driven += 2 * PROBE_PATTERNS.len() as u64;
    conservation_holds(&mut client)?;
    server.kill();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        format!(
            "mid-migration kill rolled back to raw ({rollback_records} record(s) replayed) and a \
             post-commit kill kept padded ({} record(s)); both resumes byte-identical to the \
             static paths",
            committed.resumed_records
        ),
        driven,
        1,
    ))
}

/// Run the whole soak suite.
#[must_use]
pub fn run(cfg: &AdaptChaosConfig) -> AdaptChaosReport {
    let cfg = AdaptChaosConfig {
        width: cfg.width.clamp(4, 64),
        requests: cfg.requests.clamp(96, 1_000_000),
        ..cfg.clone()
    };
    let mut checks = Vec::new();
    let mut requests_driven = 0u64;
    let mut swaps_observed = 0u64;
    let mut faults_survived = 0u64;

    let mut named = |name: &str, result: Result<(String, u64, u64), String>| match result {
        Ok((detail, driven, counted)) => {
            requests_driven += driven;
            match name {
                "epoch-fault-storm-tolerated" => faults_survived += counted,
                _ => swaps_observed += counted,
            }
            SoakCheck {
                name: name.to_string(),
                passed: true,
                detail,
            }
        }
        Err(detail) => SoakCheck {
            name: name.to_string(),
            passed: false,
            detail,
        },
    };

    checks.push(named(
        "swap-under-traffic-shift",
        swap_under_traffic_shift(&cfg),
    ));
    checks.push(named(
        "epoch-fault-storm-tolerated",
        epoch_fault_storm(&cfg),
    ));
    checks.push(named(
        "kill-mid-migration-resume-byte-identical",
        kill_mid_migration_resume(&cfg),
    ));

    let passed = checks.iter().all(|c| c.passed);
    AdaptChaosReport {
        seed: cfg.seed,
        width: cfg.width as u64,
        process_servers: cfg.server_bin.is_some(),
        requests_driven,
        swaps_observed,
        faults_survived,
        checks,
        passed,
    }
}

/// [`run`] wrapped in `catch_unwind` per the suite convention: a broken
/// invariant must report a failed check, not kill the harness.
#[must_use]
pub fn run_caught(cfg: &AdaptChaosConfig) -> AdaptChaosReport {
    catch_unwind(AssertUnwindSafe(|| run(cfg))).unwrap_or_else(|_| AdaptChaosReport {
        seed: cfg.seed,
        width: cfg.width as u64,
        process_servers: cfg.server_bin.is_some(),
        requests_driven: 0,
        swaps_observed: 0,
        faults_survived: 0,
        checks: vec![SoakCheck {
            name: "suite-panicked".to_string(),
            passed: false,
            detail: "the adapt chaos harness itself panicked".to_string(),
        }],
        passed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak (fast enough for unit CI) must pass end to end.
    #[test]
    fn mini_adapt_soak_passes() {
        let _chaos = crate::experiments::chaos_test_guard();
        let report = run_caught(&AdaptChaosConfig {
            seed: 11,
            width: 16,
            requests: 96,
            server_bin: None,
        });
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
        assert!(report.passed);
        assert!(report.swaps_observed >= 1, "{report:?}");
        assert!(report.faults_survived >= 1, "{report:?}");
    }
}
