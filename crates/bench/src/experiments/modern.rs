//! Experiment A7 — RAP vs the modern deterministic baselines (extension
//! beyond the paper).
//!
//! Today's GPU libraries avoid bank conflicts with deterministic layouts:
//! XOR swizzling (CUTLASS) and `+1` padding. On the paper's fixed
//! patterns they match RAP; this experiment quantifies where they differ:
//!
//! * **storage**: padding wastes `w − 1` words per matrix; XOR and RAP
//!   are in-place;
//! * **state**: XOR/padding store nothing; RAP stores `w` shifts (packed
//!   into ⌈w/6⌉ registers at w = 32);
//! * **worst case**: XOR/padding are public and fixed, so an
//!   instance-blind adversary achieves congestion `w` against them with
//!   no information; RAP's expectation stays `O(log w/ log log w)` for
//!   *every* pattern because `σ` is secret.

use rap_access::matrix::warp_congestion;
use rap_access::montecarlo::matrix_congestion;
use rap_access::MatrixPattern;
use rap_core::modern::{blind_adversary, build_mapping};
use rap_core::Scheme;
use rap_stats::{CellSummary, ExperimentRecord, OnlineStats, SeedDomain};
use rap_transpose::{run_transpose, TransposeKind};

/// One (pattern, scheme) measurement plus the scheme's static properties.
#[derive(Debug, Clone)]
pub struct ModernCell {
    /// Row label.
    pub row: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Measured value (congestion or cycles or words).
    pub stats: OnlineStats,
}

/// The full-pattern congestion of one scheme, via the montecarlo
/// estimators for the row-shift schemes and direct evaluation for the
/// deterministic ones (which need no averaging on fixed patterns).
fn pattern_congestion(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    match scheme {
        Scheme::Raw | Scheme::Ras | Scheme::Rap => {
            matrix_congestion(scheme, pattern, w, trials, domain)
        }
        Scheme::Xor | Scheme::Padded => {
            // Deterministic layout; only the Random pattern needs trials.
            let mut stats = OnlineStats::new();
            let n_trials = if pattern == MatrixPattern::Random {
                trials
            } else {
                1
            };
            for trial in 0..n_trials {
                let mut rng = domain.child("modern").rng(trial);
                let mapping = build_mapping(scheme, &mut rng, w);
                for warp in rap_access::matrix::generate(pattern, w, &mut rng) {
                    stats.push_u32(warp_congestion(mapping.as_ref(), &warp));
                }
            }
            stats
        }
    }
}

/// Run the comparison at width `w`.
#[must_use]
pub fn run(w: usize, trials: u64, seed: u64) -> Vec<ModernCell> {
    let domain = SeedDomain::new(seed).child("a7");
    let mut cells = Vec::new();

    // Congestion rows.
    for pattern in MatrixPattern::table2() {
        for scheme in Scheme::extended() {
            cells.push(ModernCell {
                row: format!("{pattern} congestion"),
                scheme,
                stats: pattern_congestion(scheme, pattern, w, trials, &domain),
            });
        }
    }

    // Blind-adversary row: deterministic schemes are solved outright;
    // randomized ones face the strongest blind pattern (the diagonal).
    for scheme in Scheme::extended() {
        let mut stats = OnlineStats::new();
        match blind_adversary(scheme, w, 0) {
            Some(warp) => {
                let mut rng = domain.child("adv").rng(0);
                let mapping = build_mapping(scheme, &mut rng, w);
                stats.push_u32(warp_congestion(mapping.as_ref(), &warp));
            }
            None => {
                stats.merge(&matrix_congestion(
                    scheme,
                    MatrixPattern::Diagonal,
                    w,
                    trials,
                    &domain.child("adv-blind"),
                ));
            }
        }
        cells.push(ModernCell {
            row: "blind adversary congestion".to_string(),
            scheme,
            stats,
        });
    }

    // Transpose timing row (CRSW on the DMM, latency 8).
    let data: Vec<f64> = (0..w * w).map(|x| x as f64).collect();
    for scheme in Scheme::extended() {
        let instances = if matches!(scheme, Scheme::Ras | Scheme::Rap) {
            15
        } else {
            1
        };
        let mut stats = OnlineStats::new();
        for inst in 0..instances {
            let mut rng = domain.child("transpose").child(scheme.name()).rng(inst);
            let mapping = build_mapping(scheme, &mut rng, w);
            let run = run_transpose(TransposeKind::Crsw, mapping.as_ref(), 8, &data);
            assert!(run.verified, "{scheme} transpose must verify");
            stats.push(run.report.cycles as f64);
        }
        cells.push(ModernCell {
            row: "CRSW transpose cycles".to_string(),
            scheme,
            stats,
        });
    }

    // Static rows: storage overhead and stored random values.
    for scheme in Scheme::extended() {
        let mut rng = domain.child("static").rng(0);
        let mapping = build_mapping(scheme, &mut rng, w);
        let mut overhead = OnlineStats::new();
        overhead.push((mapping.storage_words() - w * w) as f64);
        cells.push(ModernCell {
            row: "storage overhead words".to_string(),
            scheme,
            stats: overhead,
        });
        let mut rand_vals = OnlineStats::new();
        rand_vals.push(match scheme {
            Scheme::Ras | Scheme::Rap => w as f64,
            _ => 0.0,
        });
        cells.push(ModernCell {
            row: "stored random values".to_string(),
            scheme,
            stats: rand_vals,
        });
    }
    cells
}

/// Serialize the comparison.
#[must_use]
pub fn to_record(w: usize, trials: u64, seed: u64, cells: &[ModernCell]) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "A7",
        "RAP vs modern deterministic baselines (XOR swizzle, +1 padding)",
        format!("w={w} trials={trials} seed={seed}"),
    );
    for c in cells {
        record.push(CellSummary::from_stats(
            &c.row,
            c.scheme.name(),
            &c.stats,
            None,
        ));
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(cells: &'a [ModernCell], row: &str, scheme: Scheme) -> &'a ModernCell {
        cells
            .iter()
            .find(|c| c.row == row && c.scheme == scheme)
            .expect("cell exists")
    }

    #[test]
    fn deterministic_baselines_match_rap_on_fixed_patterns() {
        let cells = run(16, 50, 1);
        for scheme in [Scheme::Xor, Scheme::Padded, Scheme::Rap] {
            assert_eq!(
                get(&cells, "Contiguous congestion", scheme).stats.mean(),
                1.0,
                "{scheme}"
            );
            assert_eq!(
                get(&cells, "Stride congestion", scheme).stats.mean(),
                1.0,
                "{scheme}"
            );
        }
    }

    #[test]
    fn blind_adversary_separates_random_from_deterministic() {
        let cells = run(16, 80, 2);
        for scheme in [Scheme::Raw, Scheme::Xor, Scheme::Padded] {
            assert_eq!(
                get(&cells, "blind adversary congestion", scheme)
                    .stats
                    .mean(),
                16.0,
                "{scheme} must fall to the blind adversary"
            );
        }
        let rap = get(&cells, "blind adversary congestion", Scheme::Rap)
            .stats
            .mean();
        assert!(
            rap < 5.0,
            "RAP must hold at max-load scale against blind attacks, got {rap}"
        );
    }

    #[test]
    fn only_padding_wastes_storage() {
        let cells = run(8, 10, 3);
        assert_eq!(
            get(&cells, "storage overhead words", Scheme::Padded)
                .stats
                .mean(),
            7.0
        );
        for scheme in [Scheme::Raw, Scheme::Ras, Scheme::Rap, Scheme::Xor] {
            assert_eq!(
                get(&cells, "storage overhead words", scheme).stats.mean(),
                0.0,
                "{scheme}"
            );
        }
    }

    #[test]
    fn transpose_fast_under_all_conflict_free_schemes() {
        let cells = run(16, 10, 4);
        let raw = get(&cells, "CRSW transpose cycles", Scheme::Raw)
            .stats
            .mean();
        for scheme in [Scheme::Rap, Scheme::Xor, Scheme::Padded] {
            let t = get(&cells, "CRSW transpose cycles", scheme).stats.mean();
            assert!(t * 4.0 < raw, "{scheme}: {t} vs RAW {raw}");
        }
    }

    #[test]
    fn record_shape() {
        let cells = run(8, 5, 5);
        let rec = to_record(8, 5, 5, &cells);
        assert_eq!(rec.cells.len(), cells.len());
        // 4 patterns×5 + adversary×5 + transpose×5 + 2 static×5
        assert_eq!(cells.len(), 4 * 5 + 5 + 5 + 10);
    }
}
