//! The experiment implementations, one module per DESIGN.md experiment id.

pub mod ablation;
pub mod adapt_chaos;
pub mod apps;
pub mod chaos;
pub mod cluster_chaos;
pub mod lemma1;
pub mod malicious;
pub mod modern;
pub mod permutation;
pub mod serve_chaos;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod umm;

/// Serializes the fault-installing mini-soak `#[test]`s: the failpoint
/// registry is process-global and `install` is last-writer-wins, so two
/// chaos tests running on parallel test threads would silently replace
/// each other's plans. Production bins are single-suite processes and
/// never need this.
#[cfg(test)]
pub(crate) static CHAOS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Take [`CHAOS_TEST_LOCK`], surviving a previous holder's panic (the
/// chaos suites deliberately panic under injected faults).
#[cfg(test)]
pub(crate) fn chaos_test_guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
