//! The experiment implementations, one module per DESIGN.md experiment id.

pub mod ablation;
pub mod apps;
pub mod chaos;
pub mod cluster_chaos;
pub mod lemma1;
pub mod malicious;
pub mod modern;
pub mod permutation;
pub mod serve_chaos;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod umm;
