//! Experiment CLUSTER_CHAOS: soak the `rap-cluster` coordinator against
//! worker crashes, coordinator faults, and straggler storms, and prove
//! its headline guarantee each time: the distributed Table II sweep
//! merges **bit-identically** to a single-process run.
//!
//! 1. **Kill mid-sweep** — one worker is killed (a real `kill -9` for
//!    process workers) while the sweep is in flight; its leases are
//!    re-dispatched and the merged statistics still match the local run
//!    bit for bit.
//! 2. **Query soak** — a multi-threaded request storm through the
//!    consistent-hash router; every request is answered (full-fidelity,
//!    degraded fallback, or a structured rejection), none lost.
//! 3. **Coordinator kill + resume** — a sweep is interrupted partway
//!    (prefix run) under `ledger.append` partial-write and delay
//!    failpoint storms; a restarted coordinator resumes from the torn
//!    ledger and produces a final record **byte-identical** to an
//!    uninterrupted single-process run.
//! 4. **Quorum degrade** — with every worker dead the sweep still
//!    completes in-process, explicitly `degraded`, source
//!    `"cluster-local"`, same bits.
//!
//! With a `--worker-bin` path the pool spawns real `rap serve` processes
//! on real sockets (CI does this); otherwise the same code paths run
//! against in-process servers.

use super::serve_chaos::SoakCheck;
use super::table2::{self, Table2Config};
use rap_cluster::{Cluster, ClusterConfig, ClusterReport, WorkerPool};
use rap_resilience::{install, FailPlan, Fault, HitSchedule, Ledger, SyncPolicy};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak parameters (see the module docs).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed keying sweeps and fault schedules.
    pub seed: u64,
    /// Worker shards in the pool.
    pub workers: usize,
    /// Requests driven through the router soak.
    pub requests: u64,
    /// Concurrent client threads in the router soak.
    pub clients: u64,
    /// `base_trials` of the Table II sweeps (kept small: the soak runs
    /// the sweep several times).
    pub base_trials: u64,
    /// Spawn real worker processes from this `rap` binary; `None` runs
    /// in-process servers over the same sockets-and-protocol path.
    pub worker_bin: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2014,
            workers: 8,
            requests: 100_000,
            clients: 8,
            base_trials: 200,
            worker_bin: None,
        }
    }
}

/// Client-side tallies of the router soak.
#[derive(Debug, Default, Clone, Serialize)]
pub struct QueryTally {
    /// Requests sent.
    pub sent: u64,
    /// Full-fidelity `ok` answers from a shard.
    pub ok: u64,
    /// `degraded:true` answers (in-process fallback).
    pub degraded: u64,
    /// Structured rejections of deliberately malformed lines.
    pub bad_requests: u64,
}

/// The full soak result, written to `results/cluster_chaos.json`.
#[derive(Debug, Serialize)]
pub struct ChaosReport {
    /// Root seed.
    pub seed: u64,
    /// Worker shards.
    pub workers: u64,
    /// Whether workers were real processes (`rap serve` children).
    pub process_workers: bool,
    /// Requests driven through the router soak.
    pub requests: u64,
    /// Router-soak tallies.
    pub query_tally: QueryTally,
    /// Router-soak throughput, requests per second.
    pub query_throughput: f64,
    /// Coordinator report of the kill-mid-sweep check.
    pub sweep: Option<ClusterReport>,
    /// One entry per check.
    pub checks: Vec<SoakCheck>,
    /// True iff every check passed.
    pub passed: bool,
}

/// The small Table II sweep the soak re-runs under faults.
fn sweep_cfg(cfg: &ChaosConfig) -> Table2Config {
    Table2Config {
        widths: vec![16, 32],
        base_trials: cfg.base_trials.max(60),
        seed: cfg.seed,
    }
}

fn spawn_pool(cfg: &ChaosConfig, n: usize) -> Result<WorkerPool, String> {
    match &cfg.worker_bin {
        Some(bin) => WorkerPool::spawn_processes(bin, n).map_err(|e| {
            format!(
                "spawning {n} worker process(es) from {}: {e}",
                bin.display()
            )
        }),
        None => {
            WorkerPool::in_process(n).map_err(|e| format!("spawning {n} in-process workers: {e}"))
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rap-cluster-chaos-{tag}-{}", std::process::id()))
}

fn assert_bits(
    merged: &[rap_stats::OnlineStats],
    truth: &[table2::Table2Cell],
) -> Result<(), String> {
    if merged.len() != truth.len() {
        return Err(format!(
            "cell count diverged: {} vs {}",
            merged.len(),
            truth.len()
        ));
    }
    for (m, t) in merged.iter().zip(truth) {
        if m.to_raw() != t.stats.to_raw() {
            return Err(format!(
                "{} {} w={} diverged: {:?} vs {:?}",
                t.pattern,
                t.scheme,
                t.w,
                m.to_raw(),
                t.stats.to_raw()
            ));
        }
    }
    Ok(())
}

/// Check 1: kill one worker mid-sweep; re-dispatch keeps the merge
/// bit-identical and every block resolves.
fn kill_mid_sweep_check(cfg: &ChaosConfig) -> Result<(String, ClusterReport), String> {
    let t2 = sweep_cfg(cfg);
    let truth = table2::run(&t2);
    let pool = spawn_pool(cfg, cfg.workers)?;
    let cluster = Arc::new(Cluster::new(
        pool,
        ClusterConfig {
            max_reconnects: 1,
            ..ClusterConfig::default()
        },
    ));
    let victim = cfg.workers - 1;
    let killer = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            cluster.pool().kill(victim)
        })
    };
    let ledger = Ledger::in_memory();
    let (merged, report) = cluster.run_sweep(&table2::sweep_cells(&t2), &ledger);
    let killed = killer.join().map_err(|_| "killer thread panicked")?;
    cluster.pool().shutdown();
    if !killed {
        return Err("the kill hook reported it could not kill the victim".to_string());
    }
    assert_bits(&merged, &truth)?;
    let resolved = report.from_checkpoint + report.executed + report.local_blocks;
    if resolved != report.blocks_total {
        return Err(format!(
            "{} of {} blocks unaccounted for: {report:?}",
            report.blocks_total - resolved,
            report.blocks_total
        ));
    }
    Ok((
        format!(
            "bit-identical through a mid-sweep kill ({} blocks: {} on workers, {} local, \
             {} redispatched, {} hedged, {} duplicate(s) deduped, {} worker(s) died)",
            report.blocks_total,
            report.executed,
            report.local_blocks,
            report.redispatched,
            report.hedged,
            report.hedge_wasted,
            report.workers_died,
        ),
        report,
    ))
}

/// The router-soak request mix: mostly cheap valid queries, a few
/// malformed lines to prove rejections are structured, keyed so repeats
/// stay on warm shards.
fn query_line(i: u64) -> (String, String) {
    let key = format!("q-{}", i % 61);
    let line = match i % 16 {
        15 => r#"{"cmd":"congestion","width":0,"addresses":[]}"#.to_string(),
        n if n % 3 == 0 => format!(
            r#"{{"cmd":"congestion","id":{i},"width":16,"addresses":[0,16,32,{}]}}"#,
            i % 16
        ),
        n if n % 3 == 1 => format!(
            r#"{{"cmd":"layout","id":{i},"scheme":"rap","width":8,"seed":{}}}"#,
            i % 17
        ),
        _ => format!(
            r#"{{"cmd":"congestion","id":{i},"width":8,"addresses":[{},8,1]}}"#,
            i % 8
        ),
    };
    (key, line)
}

/// Check 2: `requests` requests over `clients` threads; every one is
/// answered or structurally rejected — none lost, none panic.
fn query_soak_check(
    cluster: &Arc<Cluster>,
    requests: u64,
    clients: u64,
) -> Result<(QueryTally, f64), String> {
    let counter = Arc::new(AtomicU64::new(0));
    let per_client = requests.max(clients) / clients;
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let cluster = Arc::clone(cluster);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || -> Result<QueryTally, String> {
                let mut tally = QueryTally::default();
                for _ in 0..per_client {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    let (key, line) = query_line(i);
                    tally.sent += 1;
                    match cluster.query(&key, &line) {
                        Ok(resp) if resp.ok && resp.degraded => tally.degraded += 1,
                        Ok(resp) if resp.ok => tally.ok += 1,
                        Ok(resp) if resp.error_kind() == Some("bad_request") => {
                            tally.bad_requests += 1;
                        }
                        Ok(resp) => return Err(format!("request {i} unanswered: {resp:?}")),
                        Err(rap_cluster::ClusterError::BadRequest(_)) => tally.bad_requests += 1,
                        Err(e) => return Err(format!("request {i} lost: {e}")),
                    }
                }
                Ok(tally)
            })
        })
        .collect();
    let mut total = QueryTally::default();
    for t in threads {
        let tally = t
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        total.sent += tally.sent;
        total.ok += tally.ok;
        total.degraded += tally.degraded;
        total.bad_requests += tally.bad_requests;
    }
    let throughput = total.sent as f64 / start.elapsed().as_secs_f64().max(1e-9);
    if total.ok + total.degraded + total.bad_requests != total.sent {
        return Err(format!("soak lost requests: {total:?}"));
    }
    if total.bad_requests == 0 {
        return Err("the malformed lines were never rejected; the soak proved nothing".to_string());
    }
    Ok((total, throughput))
}

/// Check 3: interrupt a sweep partway under `ledger.append` fault storms,
/// restart the coordinator on the torn ledger, and require the final
/// record to be **byte-identical** to an uninterrupted local run.
fn coordinator_kill_resume_check(cfg: &ChaosConfig) -> Result<String, String> {
    let t2 = sweep_cfg(cfg);
    let fp = t2.fingerprint();
    let dir = scratch_dir("resume");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("sweep.ledger");
    let cells = table2::sweep_cells(&t2);

    // "Killed" first coordinator: runs only a prefix of the sweep, with
    // partial-write and delay faults firing inside ledger appends — the
    // checkpoint it leaves behind is incomplete and possibly torn.
    let append_failures = {
        let guard = install(
            FailPlan::new(cfg.seed)
                .rule(
                    "ledger.append",
                    Fault::PartialWrite,
                    HitSchedule::At(vec![7]),
                )
                .rule(
                    "ledger.append",
                    Fault::Delay,
                    HitSchedule::Rate { num: 1, den: 9 },
                ),
        );
        let pool = spawn_pool(cfg, 2)?;
        let cluster = Cluster::new(pool, ClusterConfig::default());
        let ledger = Ledger::open(&path, fp, SyncPolicy::EveryEntry)
            .map_err(|e| format!("opening ledger: {e}"))?;
        let prefix = &cells[..cells.len() / 2];
        let (_, report) = cluster.run_sweep(prefix, &ledger);
        cluster.pool().shutdown();
        drop(guard);
        report.append_failures
    };
    if append_failures == 0 {
        return Err("the partial-write failpoint never fired".to_string());
    }

    // Restarted coordinator: resumes from the torn ledger and finishes.
    let pool = spawn_pool(cfg, 2)?;
    let cluster = Cluster::new(pool, ClusterConfig::default());
    let ledger =
        Ledger::open(&path, fp, SyncPolicy::EveryEntry).map_err(|e| format!("reopen: {e}"))?;
    let resumed = ledger.resumed_entries();
    if resumed == 0 {
        return Err("the restarted coordinator found an empty checkpoint".to_string());
    }
    let (merged, report) = cluster.run_sweep(&cells, &ledger);
    cluster.pool().shutdown();
    if report.from_checkpoint == 0 {
        return Err(format!("the resume reused nothing: {report:?}"));
    }

    // Byte-level comparison of the serialized records (`cmp` semantics).
    let local = serde_json::to_string(&table2::to_record(&t2, &table2::run(&t2)))
        .map_err(|e| e.to_string())?;
    let distributed = serde_json::to_string(&table2::to_record(
        &t2,
        &table2::cells_from_stats(&t2, &merged),
    ))
    .map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&dir);
    if local != distributed {
        return Err("resumed record differs from the single-process record".to_string());
    }
    Ok(format!(
        "record byte-identical after kill+resume ({resumed} checkpointed block(s) recovered, \
         {} reused, {append_failures} torn append(s) survived)",
        report.from_checkpoint
    ))
}

/// Check 4: every worker dead → the sweep completes in-process, marked
/// degraded, same bits.
fn quorum_degrade_check(cfg: &ChaosConfig) -> Result<String, String> {
    let t2 = Table2Config {
        widths: vec![16],
        base_trials: 60,
        seed: cfg.seed,
    };
    let truth = table2::run(&t2);
    let pool = spawn_pool(cfg, 1)?;
    let cluster = Cluster::new(pool, ClusterConfig::default());
    cluster.pool().kill(0);
    std::thread::sleep(Duration::from_millis(50));
    let ledger = Ledger::in_memory();
    let (merged, report) = cluster.run_sweep(&table2::sweep_cells(&t2), &ledger);
    cluster.pool().shutdown();
    assert_bits(&merged, &truth)?;
    if !report.degraded || report.source != "cluster-local" {
        return Err(format!("expected an explicit local degrade: {report:?}"));
    }
    Ok(format!(
        "all {} blocks served in-process below quorum, bit-identical, marked degraded",
        report.local_blocks
    ))
}

/// Run the sweep twice — distributed over a fresh (undisturbed) pool
/// and locally in one process — and write the two Table II records as
/// separate JSON files, so an **external** `cmp` (the CI cluster-soak
/// job) can assert byte-identity without trusting this process's own
/// comparison code.
///
/// # Errors
/// Worker spawn failures, a degraded sweep (dead pool), or write errors.
pub fn write_identity_pair(
    cfg: &ChaosConfig,
    dir: &std::path::Path,
) -> Result<(PathBuf, PathBuf), String> {
    let t2 = sweep_cfg(cfg);
    let pool = spawn_pool(cfg, cfg.workers.clamp(2, 64))?;
    let cluster = Cluster::new(pool, ClusterConfig::default());
    let ledger = Ledger::in_memory();
    let (merged, report) = cluster.run_sweep(&table2::sweep_cells(&t2), &ledger);
    cluster.pool().shutdown();
    if report.degraded {
        return Err("identity-pair sweep unexpectedly degraded to local execution".into());
    }
    let distributed = dir.join("t2_distributed.json");
    let single = dir.join("t2_single.json");
    rap_resilience::write_json_atomic(
        &distributed,
        &table2::to_record(&t2, &table2::cells_from_stats(&t2, &merged)),
    )
    .map_err(|e| format!("writing {}: {e}", distributed.display()))?;
    rap_resilience::write_json_atomic(&single, &table2::to_record(&t2, &table2::run(&t2)))
        .map_err(|e| format!("writing {}: {e}", single.display()))?;
    Ok((distributed, single))
}

/// Run the whole soak suite.
#[must_use]
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    let cfg = ChaosConfig {
        workers: cfg.workers.clamp(2, 64),
        clients: cfg.clients.clamp(1, 64),
        ..cfg.clone()
    };
    let mut checks = Vec::new();
    let mut query_tally = QueryTally::default();
    let mut query_throughput = 0.0;
    let mut sweep = None;

    let named = |name: &str, result: Result<String, String>| match result {
        Ok(detail) => SoakCheck {
            name: name.to_string(),
            passed: true,
            detail,
        },
        Err(detail) => SoakCheck {
            name: name.to_string(),
            passed: false,
            detail,
        },
    };

    match kill_mid_sweep_check(&cfg) {
        Ok((detail, report)) => {
            sweep = Some(report);
            checks.push(SoakCheck {
                name: "sweep-survives-worker-kill".to_string(),
                passed: true,
                detail,
            });
        }
        Err(e) => checks.push(SoakCheck {
            name: "sweep-survives-worker-kill".to_string(),
            passed: false,
            detail: e,
        }),
    }

    // Router soak over a fresh pool; one worker is killed mid-storm so
    // failover (and, for the key it owned, re-routing) happens live.
    match spawn_pool(&cfg, cfg.workers) {
        Err(e) => checks.push(SoakCheck {
            name: "query-soak-zero-lost".to_string(),
            passed: false,
            detail: e,
        }),
        Ok(pool) => {
            let cluster = Arc::new(Cluster::new(pool, ClusterConfig::default()));
            let killer = {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(40));
                    cluster.pool().kill(0);
                })
            };
            let result = query_soak_check(&cluster, cfg.requests, cfg.clients);
            let _ = killer.join();
            cluster.pool().shutdown();
            checks.push(match result {
                Ok((tally, throughput)) => {
                    let detail = format!(
                        "{} sent = {} ok + {} degraded + {} structured rejections \
                         ({throughput:.0} req/s, one shard killed mid-storm)",
                        tally.sent, tally.ok, tally.degraded, tally.bad_requests
                    );
                    query_tally = tally;
                    query_throughput = throughput;
                    SoakCheck {
                        name: "query-soak-zero-lost".to_string(),
                        passed: true,
                        detail,
                    }
                }
                Err(e) => SoakCheck {
                    name: "query-soak-zero-lost".to_string(),
                    passed: false,
                    detail: e,
                },
            });
        }
    }

    checks.push(named(
        "coordinator-kill-resume-byte-identical",
        coordinator_kill_resume_check(&cfg),
    ));
    checks.push(named(
        "below-quorum-local-degrade",
        quorum_degrade_check(&cfg),
    ));

    let passed = checks.iter().all(|c| c.passed);
    ChaosReport {
        seed: cfg.seed,
        workers: cfg.workers as u64,
        process_workers: cfg.worker_bin.is_some(),
        requests: cfg.requests,
        query_tally,
        query_throughput,
        sweep,
        checks,
        passed,
    }
}

/// [`run`] wrapped in `catch_unwind` per the suite convention: a broken
/// invariant must report a failed check, not kill the harness.
#[must_use]
pub fn run_caught(cfg: &ChaosConfig) -> ChaosReport {
    catch_unwind(AssertUnwindSafe(|| run(cfg))).unwrap_or_else(|_| ChaosReport {
        seed: cfg.seed,
        workers: cfg.workers as u64,
        process_workers: cfg.worker_bin.is_some(),
        requests: cfg.requests,
        query_tally: QueryTally::default(),
        query_throughput: 0.0,
        sweep: None,
        checks: vec![SoakCheck {
            name: "suite-panicked".to_string(),
            passed: false,
            detail: "the chaos harness itself panicked".to_string(),
        }],
        passed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak (fast enough for unit CI) must pass end to end.
    #[test]
    fn mini_cluster_soak_passes() {
        let _chaos = crate::experiments::chaos_test_guard();
        let report = run_caught(&ChaosConfig {
            seed: 7,
            workers: 2,
            requests: 256,
            clients: 4,
            base_trials: 60,
            worker_bin: None,
        });
        for c in &report.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
        assert!(report.passed);
        assert_eq!(
            report.query_tally.sent,
            report.query_tally.ok + report.query_tally.degraded + report.query_tally.bad_requests
        );
        let sweep = report.sweep.expect("kill check ran");
        assert_eq!(
            sweep.blocks_total,
            sweep.from_checkpoint + sweep.executed + sweep.local_blocks
        );
    }
}
