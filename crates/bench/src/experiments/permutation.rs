//! Experiment A4 — offline permutation: direct vs graph-coloring vs RAP
//! (the paper's §I motivation, refs \[8\]/\[13\]).
//!
//! For each permutation family the three strategies run on the DMM; we
//! report cycles and worst congestion. The paper's narrative to
//! reproduce: the coloring is optimal but requires offline analysis; RAP
//! achieves near-optimal time with none.

use rap_core::Permutation;
use rap_permute::{run_permutation, transpose_permutation, RapArrayMapping, Strategy};
use rap_stats::{CellSummary, ExperimentRecord, OnlineStats, SeedDomain};
use serde::{Deserialize, Serialize};

/// The permutation families evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PermFamily {
    /// The identity (best case for everyone).
    Identity,
    /// The matrix transpose viewed as a flat permutation (worst case for
    /// direct execution).
    Transpose,
    /// Uniformly random permutations.
    Random,
    /// Bit-reversal of the flat index (FFT reordering) — a structured
    /// permutation whose direct write pattern also serializes RAW.
    BitReversal,
}

impl PermFamily {
    /// All families.
    #[must_use]
    pub fn all() -> [PermFamily; 4] {
        [
            PermFamily::Identity,
            PermFamily::Transpose,
            PermFamily::Random,
            PermFamily::BitReversal,
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PermFamily::Identity => "Identity",
            PermFamily::Transpose => "Transpose",
            PermFamily::Random => "Random",
            PermFamily::BitReversal => "BitReversal",
        }
    }

    /// Build an instance on `n = w²` elements.
    ///
    /// # Panics
    /// Panics if `w` is not a power of two (bit reversal needs one).
    #[must_use]
    pub fn build<R: rand::Rng + ?Sized>(self, w: usize, rng: &mut R) -> Permutation {
        let n = w * w;
        match self {
            PermFamily::Identity => Permutation::identity(n),
            PermFamily::Transpose => transpose_permutation(w),
            PermFamily::Random => Permutation::random(rng, n),
            PermFamily::BitReversal => {
                assert!(
                    n.is_power_of_two(),
                    "bit reversal needs a power-of-two size"
                );
                let bits = n.trailing_zeros();
                Permutation::from_table(
                    (0..n as u32)
                        .map(|t| t.reverse_bits() >> (32 - bits))
                        .collect(),
                )
                .expect("bit reversal is a permutation")
            }
        }
    }
}

impl std::fmt::Display for PermFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Measurements for one (family, strategy) pair.
#[derive(Debug, Clone)]
pub struct PermutationCell {
    /// Permutation family.
    pub family: PermFamily,
    /// Execution strategy.
    pub strategy: Strategy,
    /// DMM cycles over instances.
    pub cycles: OnlineStats,
    /// Worst per-warp congestion over instances.
    pub max_congestion: OnlineStats,
    /// All runs verified.
    pub all_verified: bool,
}

/// Run the comparison at width `w` with the given DMM latency.
#[must_use]
pub fn run(w: usize, latency: u64, instances: u64, seed: u64) -> Vec<PermutationCell> {
    let domain = SeedDomain::new(seed).child("permutation");
    let data: Vec<u64> = (0..(w * w) as u64).collect();
    let mut out = Vec::new();
    for family in PermFamily::all() {
        for strategy in Strategy::all() {
            let fresh_each = matches!(family, PermFamily::Random) || strategy == Strategy::Rap;
            let n_inst = if fresh_each { instances } else { 1 };
            let mut cycles = OnlineStats::new();
            let mut maxc = OnlineStats::new();
            let mut all_verified = true;
            for inst in 0..n_inst {
                let mut rng = domain.child(family.name()).child(strategy.name()).rng(inst);
                let pi = family.build(w, &mut rng);
                let mapping = RapArrayMapping::random(&mut rng, w);
                let run = run_permutation(strategy, w, &pi, latency, &data, Some(&mapping));
                all_verified &= run.verified;
                cycles.push(run.report.cycles as f64);
                maxc.push(f64::from(run.report.max_congestion()));
            }
            out.push(PermutationCell {
                family,
                strategy,
                cycles,
                max_congestion: maxc,
                all_verified,
            });
        }
    }
    out
}

/// Serialize the comparison.
#[must_use]
pub fn to_record(w: usize, latency: u64, seed: u64, cells: &[PermutationCell]) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "A4",
        "Offline permutation: direct vs graph-coloring vs RAP on the DMM",
        format!("w={w} latency={latency} seed={seed}"),
    );
    for c in cells {
        record.push(CellSummary::from_stats(
            format!("{} cycles", c.family),
            c.strategy.name(),
            &c.cycles,
            None,
        ));
        record.push(CellSummary::from_stats(
            format!("{} max congestion", c.family),
            c.strategy.name(),
            &c.max_congestion,
            None,
        ));
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_valid_permutations() {
        let mut rng = rap_stats::SeedDomain::new(1).rng(0);
        for family in PermFamily::all() {
            let pi = family.build(8, &mut rng);
            assert_eq!(pi.len(), 64, "{family}");
        }
    }

    #[test]
    fn bit_reversal_is_involution() {
        let mut rng = rap_stats::SeedDomain::new(2).rng(0);
        let pi = PermFamily::BitReversal.build(8, &mut rng);
        assert!(pi.compose(&pi).is_identity());
    }

    #[test]
    fn comparison_shape() {
        let cells = run(16, 4, 4, 3);
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().all(|c| c.all_verified));
        let get = |f: PermFamily, s: Strategy| {
            cells
                .iter()
                .find(|c| c.family == f && c.strategy == s)
                .unwrap()
        };
        // Coloring is congestion-1 always.
        for f in PermFamily::all() {
            assert_eq!(
                get(f, Strategy::ConflictFree).max_congestion.mean(),
                1.0,
                "{f}"
            );
        }
        // Direct transpose is the disaster case; RAP rescues it.
        let direct_t = get(PermFamily::Transpose, Strategy::Direct);
        let rap_t = get(PermFamily::Transpose, Strategy::Rap);
        assert_eq!(direct_t.max_congestion.mean(), 16.0);
        assert!(rap_t.cycles.mean() * 3.0 < direct_t.cycles.mean());
        // Identity is free for direct.
        assert_eq!(
            get(PermFamily::Identity, Strategy::Direct)
                .max_congestion
                .mean(),
            1.0
        );
    }

    #[test]
    fn record_shape() {
        let cells = run(8, 2, 2, 4);
        let rec = to_record(8, 2, 4, &cells);
        assert_eq!(rec.cells.len(), 24);
    }
}
