//! Shared machinery of the performance binaries (`perf_smoke`,
//! `perf_gate`): hardware-topology detection and the fixed
//! Table-II-style timing sweep.
//!
//! Trustworthy scaling numbers need to know the difference between
//! **logical** CPUs (what `available_parallelism` reports — SMT threads
//! included) and **physical** cores: a "2x speedup at 2 threads" on one
//! physical core is timesharing noise, not parallel scaling. The
//! detectors here read the Linux CPU topology (sysfs, then
//! `/proc/cpuinfo`) and fall back to the logical count when neither is
//! readable, so callers can flag oversubscribed samples instead of
//! reporting them as scaling.

use rap_access::montecarlo::matrix_congestion;
use rap_access::MatrixPattern;
use rap_core::Scheme;
use rap_stats::SeedDomain;
use std::collections::HashSet;
use std::time::Instant;

/// Logical CPUs visible to this process (SMT threads count separately).
#[must_use]
pub fn logical_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Physical cores, best effort: unique `(package, core)` pairs from the
/// sysfs CPU topology, then `/proc/cpuinfo`, then the logical count when
/// neither source is readable (non-Linux hosts, restricted containers).
/// Always at least 1 and never more than [`logical_cpus`].
#[must_use]
pub fn physical_cpus() -> usize {
    let detected = sysfs_physical().or_else(cpuinfo_physical);
    detected
        .unwrap_or_else(logical_cpus)
        .clamp(1, logical_cpus())
}

/// Unique `(physical_package_id, core_id)` pairs from
/// `/sys/devices/system/cpu/cpu*/topology/`.
fn sysfs_physical() -> Option<usize> {
    let entries = std::fs::read_dir("/sys/devices/system/cpu").ok()?;
    let mut pairs = HashSet::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_str()?;
        let digits = name.strip_prefix("cpu")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let topology = entry.path().join("topology");
        let core = std::fs::read_to_string(topology.join("core_id")).ok();
        let package = std::fs::read_to_string(topology.join("physical_package_id")).ok();
        if let (Some(core), Some(package)) = (core, package) {
            pairs.insert((package.trim().to_string(), core.trim().to_string()));
        }
    }
    (!pairs.is_empty()).then_some(pairs.len())
}

/// Unique `(physical id, core id)` pairs from `/proc/cpuinfo` blocks.
fn cpuinfo_physical() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let mut pairs = HashSet::new();
    let (mut package, mut core) = (None, None);
    for line in text.lines() {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package.take(), core.take()) {
                pairs.insert((p, c));
            }
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = Some(value.trim().to_string()),
            "core id" => core = Some(value.trim().to_string()),
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (package, core) {
        pairs.insert((p, c));
    }
    (!pairs.is_empty()).then_some(pairs.len())
}

/// Number of `(pattern, scheme)` cells in the fixed sweep.
#[must_use]
pub fn sweep_cells() -> usize {
    MatrixPattern::table2().len() * Scheme::all().len()
}

/// One timed run of the fixed sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Wall time of the whole sweep in seconds.
    pub wall_seconds: f64,
    /// Sum of all cell means — the determinism checksum (bit-identical
    /// across thread counts and runs with the same parameters).
    pub mean_checksum: f64,
    /// Total Monte-Carlo trials executed.
    pub total_trials: u64,
}

impl SweepTiming {
    /// Trials completed per wall-clock second.
    #[must_use]
    pub fn trials_per_second(&self) -> f64 {
        self.total_trials as f64 / self.wall_seconds
    }
}

/// Time the fixed Table-II-style sweep (every Table II pattern × scheme
/// at width `w`, `trials` Monte-Carlo trials per cell) on the current
/// rayon pool.
#[must_use]
pub fn run_sweep(w: usize, trials: u64, seed: u64) -> SweepTiming {
    let domain = SeedDomain::new(seed).child("perf_smoke");
    let start = Instant::now();
    let mut checksum = 0.0;
    for pattern in MatrixPattern::table2() {
        for scheme in Scheme::all() {
            let cell_domain = domain.child(pattern.name()).child(scheme.name());
            let stats = matrix_congestion(scheme, pattern, w, trials, &cell_domain);
            checksum += stats.mean();
        }
    }
    SweepTiming {
        wall_seconds: start.elapsed().as_secs_f64(),
        mean_checksum: checksum,
        total_trials: trials * sweep_cells() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_counts_are_sane() {
        let logical = logical_cpus();
        let physical = physical_cpus();
        assert!(logical >= 1);
        assert!((1..=logical).contains(&physical));
    }

    #[test]
    fn sweep_checksum_is_deterministic() {
        let a = run_sweep(8, 40, 7);
        let b = run_sweep(8, 40, 7);
        assert_eq!(a.mean_checksum, b.mean_checksum);
        assert_eq!(a.total_trials, 40 * sweep_cells() as u64);
    }
}
