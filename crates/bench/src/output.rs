//! JSON output of experiment records — atomic, durable, relocatable.
//!
//! Each bench binary writes its [`ExperimentRecord`] into the results
//! directory so EXPERIMENTS.md can be cross-checked against
//! machine-readable data. Two robustness guarantees:
//!
//! * every write goes through [`rap_resilience::write_atomic`] (temp
//!   sibling + fsync + rename), so a crash mid-write can never leave a
//!   torn `results/*.json` — the file holds the complete old or the
//!   complete new document;
//! * the directory is overridable: see [`results_dir`] for the
//!   precedence order.

use rap_stats::ExperimentRecord;
use std::path::{Path, PathBuf};

/// The directory experiment JSON lands in, resolved with this precedence:
///
/// 1. `RAP_RESULTS_DIR` — used verbatim (created on first write). This is
///    how CI isolates runs and how kill/resume tests compare outputs;
/// 2. `CARGO_MANIFEST_DIR/../../results` — the workspace `results/` when
///    a binary is invoked through `cargo run -p rap-bench`;
/// 3. `./results` — the current directory, for a bare binary.
///
/// The `CARGO_MANIFEST_DIR` heuristic only works for crates two levels
/// below the workspace root (all of `crates/*` are); `RAP_RESULTS_DIR`
/// is the escape hatch when it guesses wrong.
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("RAP_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    default_root().join("results")
}

/// The default output *root* (the directory containing `results/`): the
/// workspace directory if invoked via cargo, else the current directory.
/// Prefer [`results_dir`], which also honours `RAP_RESULTS_DIR`.
#[must_use]
pub fn default_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map_or_else(|| PathBuf::from("."), |d| PathBuf::from(d).join("../.."))
}

/// The checkpoint-ledger directory for resumable sweeps, kept next to
/// the results they protect.
#[must_use]
pub fn checkpoints_dir() -> PathBuf {
    results_dir().join("checkpoints")
}

/// Atomically serialize `record` to `<dir>/<id>.json` (directory created
/// if missing). Returns the written path.
///
/// # Errors
/// Propagates I/O and serialization errors, with the path in the message.
pub fn write_record_to(dir: &Path, record: &ExperimentRecord) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("{}.json", record.id.to_lowercase()));
    rap_resilience::write_json_atomic(&path, record)?;
    Ok(path)
}

/// Atomically serialize `record` to `results/<id>.json` under `root`.
/// Prefer `write_record_to(&results_dir(), ..)` in binaries — that form
/// honours `RAP_RESULTS_DIR`.
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn write_record(root: &Path, record: &ExperimentRecord) -> std::io::Result<PathBuf> {
    write_record_to(&root.join("results"), record)
}

/// Read a record back (used by tests and tooling).
///
/// # Errors
/// Propagates I/O and deserialization errors.
pub fn read_record(path: &Path) -> std::io::Result<ExperimentRecord> {
    let data = std::fs::read_to_string(path)
        .map_err(|e| std::io::Error::new(e.kind(), format!("reading {}: {e}", path.display())))?;
    serde_json::from_str(&data).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("parsing {}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_stats::CellSummary;

    #[test]
    fn roundtrip_through_disk() {
        let mut record = ExperimentRecord::new("TX", "test", "p=1");
        record.push(CellSummary::exact("r", "c", 1.5, Some(1.0)));
        let tmp = std::env::temp_dir().join(format!("rap-bench-test-{}", std::process::id()));
        let path = write_record(&tmp, &record).unwrap();
        assert!(path.ends_with("results/tx.json"));
        let back = read_record(&path).unwrap();
        assert_eq!(back, record);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn write_record_to_uses_the_directory_verbatim() {
        let mut record = ExperimentRecord::new("TY", "test", "p=1");
        record.push(CellSummary::exact("r", "c", 2.5, None));
        let dir = std::env::temp_dir().join(format!("rap-bench-direct-{}", std::process::id()));
        let path = write_record_to(&dir, &record).unwrap();
        assert_eq!(path, dir.join("ty.json"));
        assert_eq!(read_record(&path).unwrap(), record);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn results_dir_honours_the_env_override() {
        // Serialized via the single-threaded assertion below: this test is
        // the only one in the crate touching RAP_RESULTS_DIR.
        std::env::set_var("RAP_RESULTS_DIR", "/tmp/rap-override");
        assert_eq!(results_dir(), PathBuf::from("/tmp/rap-override"));
        assert_eq!(
            checkpoints_dir(),
            PathBuf::from("/tmp/rap-override/checkpoints")
        );
        std::env::set_var("RAP_RESULTS_DIR", "");
        let fallback = results_dir();
        assert!(fallback.ends_with("results"), "{}", fallback.display());
        std::env::remove_var("RAP_RESULTS_DIR");
        assert_eq!(results_dir(), fallback);
    }

    #[test]
    fn read_record_errors_name_the_path() {
        let missing = Path::new("/nonexistent/rap/results/zz.json");
        let err = read_record(missing).unwrap_err();
        assert!(err.to_string().contains("zz.json"), "{err}");
    }
}
