//! JSON output of experiment records.
//!
//! Each bench binary writes its [`ExperimentRecord`] under `results/` so
//! EXPERIMENTS.md can be cross-checked against machine-readable data.

use rap_stats::ExperimentRecord;
use std::path::{Path, PathBuf};

/// Serialize `record` to `results/<id>.json` under `root` (created if
/// missing). Returns the written path.
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn write_record(root: &Path, record: &ExperimentRecord) -> std::io::Result<PathBuf> {
    let dir = root.join("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", record.id.to_lowercase()));
    let json = serde_json::to_string_pretty(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Read a record back (used by tests and tooling).
///
/// # Errors
/// Propagates I/O and deserialization errors.
pub fn read_record(path: &Path) -> std::io::Result<ExperimentRecord> {
    let data = std::fs::read_to_string(path)?;
    serde_json::from_str(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// The default output root: the workspace directory if invoked via cargo,
/// else the current directory.
#[must_use]
pub fn default_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map_or_else(|| PathBuf::from("."), |d| PathBuf::from(d).join("../.."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_stats::CellSummary;

    #[test]
    fn roundtrip_through_disk() {
        let mut record = ExperimentRecord::new("TX", "test", "p=1");
        record.push(CellSummary::exact("r", "c", 1.5, Some(1.0)));
        let tmp = std::env::temp_dir().join(format!("rap-bench-test-{}", std::process::id()));
        let path = write_record(&tmp, &record).unwrap();
        assert!(path.ends_with("results/tx.json"));
        let back = read_record(&path).unwrap();
        assert_eq!(back, record);
        std::fs::remove_dir_all(&tmp).ok();
    }
}
