//! Minimal fixed-width table printer for the bench binaries.

/// A simple text table: a header row plus data rows, rendered with
/// per-column widths and right-aligned cells (first column left-aligned).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given header.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity must match the header"
        );
        self.rows.push(row);
        self
    }

    /// Render the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                }
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2–3 significant decimals as the paper does.
#[must_use]
pub fn fmt2(x: f64) -> String {
    if (x - x.round()).abs() < 5e-4 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Format a paper-vs-measured pair with relative deviation.
#[must_use]
pub fn fmt_vs(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) if p != 0.0 => {
            let dev = 100.0 * (measured - p) / p;
            format!("{} (paper {}, {dev:+.1}%)", fmt2(measured), fmt2(p))
        }
        _ => fmt2(measured),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "123.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
        // all data lines equal width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn fmt2_integers_and_decimals() {
        assert_eq!(fmt2(32.0), "32");
        assert_eq!(fmt2(3.53), "3.53");
        assert_eq!(fmt2(1.0001), "1");
    }

    #[test]
    fn fmt_vs_shows_deviation() {
        let s = fmt_vs(3.6, Some(3.53));
        assert!(s.contains("paper 3.53"));
        assert!(s.contains('%'));
        assert_eq!(fmt_vs(2.0, None), "2");
    }
}
