//! # rap-bench — the experiment harness
//!
//! Reproduces every table of the RAP paper plus the ablations indexed in
//! DESIGN.md:
//!
//! | id | binary | paper artifact |
//! |---|---|---|
//! | T1 | `table1` | Table I — congestion classes |
//! | T2 | `table2` | Table II — congestion simulation |
//! | T3 | `table3` | Table III — transpose timing on (simulated) GTX TITAN |
//! | T4 | `table4` | Table IV — 4-D extensions |
//! | A1 | `malicious_bound` | abstract claim + Theorem 2 bound |
//! | A2 | `lemma1` | Lemma 1 closed forms |
//! | A3 | `ablation` | SM-model robustness |
//!
//! Each binary prints the paper's value next to ours and writes
//! `results/<id>.json`. Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod paper;
pub mod table;

/// Parse `--key value` style options from `std::env::args`, with defaults.
/// Minimal by design — the binaries accept `--trials`, `--seed`,
/// `--width`, `--instances`.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    opts: std::collections::HashMap<String, String>,
}

impl CliArgs {
    /// Parse the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (for tests).
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = std::collections::HashMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(value) = iter.next() {
                    opts.insert(key.to_string(), value);
                }
            }
        }
        Self { opts }
    }

    /// Look up a numeric option with a default.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.opts
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Look up a usize option with a default.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.opts
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_args_parse_pairs() {
        let a = CliArgs::parse_args(["--trials", "500", "--seed", "9"].map(String::from));
        assert_eq!(a.get_u64("trials", 1), 500);
        assert_eq!(a.get_u64("seed", 1), 9);
        assert_eq!(a.get_u64("missing", 7), 7);
        assert_eq!(a.get_usize("trials", 1), 500);
    }

    #[test]
    fn cli_args_ignore_malformed() {
        let a = CliArgs::parse_args(["--trials", "abc", "stray"].map(String::from));
        assert_eq!(a.get_u64("trials", 3), 3);
    }
}
