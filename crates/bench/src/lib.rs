//! # rap-bench — the experiment harness
//!
//! Reproduces every table of the RAP paper plus the ablations indexed in
//! DESIGN.md:
//!
//! | id | binary | paper artifact |
//! |---|---|---|
//! | T1 | `table1` | Table I — congestion classes |
//! | T2 | `table2` | Table II — congestion simulation |
//! | T3 | `table3` | Table III — transpose timing on (simulated) GTX TITAN |
//! | T4 | `table4` | Table IV — 4-D extensions |
//! | A1 | `malicious_bound` | abstract claim + Theorem 2 bound |
//! | A2 | `lemma1` | Lemma 1 closed forms |
//! | A3 | `ablation` | SM-model robustness |
//!
//! Each binary prints the paper's value next to ours and writes
//! `results/<id>.json`. Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod paper;
pub mod perf;
pub mod table;

/// Parse `--key value` style options from `std::env::args`, with defaults.
/// Minimal by design — the binaries accept `--trials`, `--seed`,
/// `--width`, `--instances`.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    opts: std::collections::HashMap<String, String>,
}

impl CliArgs {
    /// Parse the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (for tests).
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = std::collections::HashMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(value) = iter.next() {
                    opts.insert(key.to_string(), value);
                }
            }
        }
        Self { opts }
    }

    /// Look up a raw string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Look up a numeric option with a default.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.opts
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Look up a usize option with a default.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.opts
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// The resilience options shared by the resumable bench binaries
/// (`table2`, `table4`, `perf_smoke`): where to checkpoint, how long to
/// run, how hard to retry.
///
/// Flags:
/// * `--checkpoint <path|off>` — ledger location; `off` disables disk
///   checkpointing; default is `<results>/checkpoints/<name>` (which
///   honours `RAP_RESULTS_DIR`);
/// * `--budget-ms <n>` — wall-clock deadline (0 or absent = unlimited);
/// * `--block-cap <n>` — max 32-trial blocks per cell (0 = unlimited);
/// * `--retries <n>` — retry attempts per panicking/failing block.
#[derive(Debug)]
pub struct ResilienceArgs {
    /// Ledger path; `None` means checkpointing is off (in-memory).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Wall/block budget.
    pub budget: rap_resilience::RunBudget,
    /// Per-block retry policy.
    pub retry: rap_resilience::RetryPolicy,
}

impl ResilienceArgs {
    /// Parse from CLI options, defaulting the ledger to
    /// `<results>/checkpoints/<default_ledger_name>`.
    #[must_use]
    pub fn from_cli(args: &CliArgs, default_ledger_name: &str) -> Self {
        let checkpoint = match args.get("checkpoint") {
            Some("off") => None,
            Some(path) => Some(std::path::PathBuf::from(path)),
            None => Some(output::checkpoints_dir().join(default_ledger_name)),
        };
        let mut budget = rap_resilience::RunBudget::unlimited();
        let ms = args.get_u64("budget-ms", 0);
        if ms > 0 {
            budget = budget.with_wall_limit(std::time::Duration::from_millis(ms));
        }
        let cap = args.get_u64("block-cap", 0);
        if cap > 0 {
            budget = budget.with_block_cap(cap);
        }
        let retry = rap_resilience::RetryPolicy {
            max_retries: u32::try_from(args.get_u64("retries", 2)).unwrap_or(u32::MAX),
            ..rap_resilience::RetryPolicy::default()
        };
        Self {
            checkpoint,
            budget,
            retry,
        }
    }

    /// Open the configured ledger for a run with this `fingerprint`
    /// (fsync-per-entry — bench checkpoints must survive `kill -9`), or
    /// an in-memory ledger when checkpointing is off.
    ///
    /// # Errors
    /// Propagates ledger I/O errors.
    pub fn open_ledger(&self, fingerprint: u64) -> std::io::Result<rap_resilience::Ledger> {
        match &self.checkpoint {
            None => Ok(rap_resilience::Ledger::in_memory()),
            Some(path) => rap_resilience::Ledger::open(
                path,
                fingerprint,
                rap_resilience::SyncPolicy::EveryEntry,
            ),
        }
    }
}

/// Install the failpoint plan named by `RAP_FAILPOINTS`, if set.
///
/// Every bench binary calls this first thing, so chaos drills work on
/// the real binaries without recompiling: the returned guard must stay
/// alive for the whole run. Unset (or empty) is a no-op.
///
/// # Errors
/// A malformed spec is a loud, contextual error — a typo'd chaos drill
/// must not silently run clean.
pub fn failpoints_from_env() -> Result<Option<rap_resilience::FailpointGuard>, String> {
    rap_resilience::install_from_env().map_err(|e| format!("RAP_FAILPOINTS: {e}"))
}

/// Fold a sweep's [`rap_resilience::BlockReport`] into its record: set
/// the degraded flag when blocks were lost or skipped and carry the
/// notes. Clean reports add nothing, so clean records stay
/// byte-comparable across runs (including resumed ones).
pub fn annotate_record(
    record: &mut rap_stats::ExperimentRecord,
    report: &rap_resilience::BlockReport,
) {
    if report.degraded() {
        record.degraded = true;
    }
    record.notes.extend(report.notes.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_args_parse_pairs() {
        let a = CliArgs::parse_args(["--trials", "500", "--seed", "9"].map(String::from));
        assert_eq!(a.get_u64("trials", 1), 500);
        assert_eq!(a.get_u64("seed", 1), 9);
        assert_eq!(a.get_u64("missing", 7), 7);
        assert_eq!(a.get_usize("trials", 1), 500);
    }

    #[test]
    fn cli_args_ignore_malformed() {
        let a = CliArgs::parse_args(["--trials", "abc", "stray"].map(String::from));
        assert_eq!(a.get_u64("trials", 3), 3);
    }

    #[test]
    fn resilience_args_parse_the_full_surface() {
        let a = CliArgs::parse_args(
            [
                "--checkpoint",
                "/tmp/x.ledger",
                "--budget-ms",
                "250",
                "--block-cap",
                "4",
                "--retries",
                "7",
            ]
            .map(String::from),
        );
        let r = ResilienceArgs::from_cli(&a, "t2.ledger");
        assert_eq!(
            r.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/x.ledger"))
        );
        assert_eq!(
            r.budget.wall_limit,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(r.budget.block_cap, Some(4));
        assert_eq!(r.retry.max_retries, 7);

        let off = ResilienceArgs::from_cli(
            &CliArgs::parse_args(["--checkpoint", "off"].map(String::from)),
            "t2.ledger",
        );
        assert_eq!(off.checkpoint, None);
        assert_eq!(off.budget.wall_limit, None);
        assert_eq!(off.budget.block_cap, None);

        let default = ResilienceArgs::from_cli(&CliArgs::default(), "t2.ledger");
        let path = default.checkpoint.expect("checkpointing on by default");
        assert!(
            path.ends_with("checkpoints/t2.ledger"),
            "{}",
            path.display()
        );
    }

    #[test]
    fn annotate_record_carries_degradation_and_notes() {
        let mut record = rap_stats::ExperimentRecord::new("TX", "d", "p");
        let clean = rap_resilience::BlockReport::default();
        annotate_record(&mut record, &clean);
        assert!(!record.degraded);
        assert!(
            record.notes.is_empty(),
            "clean reports must not perturb records"
        );

        let report = rap_resilience::BlockReport {
            total_blocks: 4,
            completed: 3,
            failed: 1,
            notes: vec!["block c#2 failed".into()],
            ..rap_resilience::BlockReport::default()
        };
        annotate_record(&mut record, &report);
        assert!(record.degraded);
        assert_eq!(record.notes, vec!["block c#2 failed".to_string()]);
    }
}
