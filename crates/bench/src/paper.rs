//! The paper's published numbers, hard-coded as reference values.
//!
//! Every bench binary prints these next to our measurements and
//! EXPERIMENTS.md records the comparison. Sources: Table II (congestion
//! simulation) and Table III (GTX TITAN timing) of the ICPP 2014 paper.

use rap_core::Scheme;
use rap_transpose::TransposeKind;

/// The widths Table II sweeps.
pub const TABLE2_WIDTHS: [usize; 5] = [16, 32, 64, 128, 256];

/// Table II: expected congestion of stride access under RAS
/// (and of diagonal access under RAS), for the widths in
/// [`TABLE2_WIDTHS`].
pub const TABLE2_STRIDE_RAS: [f64; 5] = [3.08, 3.53, 3.96, 4.38, 4.77];

/// Table II: expected congestion of diagonal access under RAP.
pub const TABLE2_DIAGONAL_RAP: [f64; 5] = [3.20, 3.61, 4.00, 4.41, 4.78];

/// Table II: expected congestion of random access (identical for RAW,
/// RAS, and RAP).
pub const TABLE2_RANDOM: [f64; 5] = [2.92, 3.44, 3.90, 4.34, 4.75];

/// Table II lookup: the paper's value for `(scheme, pattern, w)`, if the
/// paper reports that cell. `pattern` uses the paper's row names.
#[must_use]
pub fn table2_reference(scheme: Scheme, pattern: &str, w: usize) -> Option<f64> {
    let idx = TABLE2_WIDTHS.iter().position(|&x| x == w)?;
    match (pattern, scheme) {
        ("Contiguous", _) => Some(1.0),
        ("Stride", Scheme::Raw) => Some(w as f64),
        ("Stride", Scheme::Ras) => Some(TABLE2_STRIDE_RAS[idx]),
        ("Stride", Scheme::Rap) => Some(1.0),
        ("Diagonal", Scheme::Raw) => Some(1.0),
        ("Diagonal", Scheme::Ras) => Some(TABLE2_STRIDE_RAS[idx]),
        ("Diagonal", Scheme::Rap) => Some(TABLE2_DIAGONAL_RAP[idx]),
        ("Random", _) => Some(TABLE2_RANDOM[idx]),
        _ => None,
    }
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Cell {
    /// Congestion of the read phase on the DMM.
    pub read_congestion: f64,
    /// Congestion of the write phase on the DMM.
    pub write_congestion: f64,
    /// Measured time on the GeForce GTX TITAN, nanoseconds.
    pub time_ns: f64,
}

/// Table III: the paper's congestion and GTX TITAN time for
/// `(algorithm, scheme)`, 32×32 double matrix.
///
/// # Panics
/// Panics for the modern-baseline schemes (XOR, Padded), which the paper
/// does not evaluate.
#[must_use]
pub fn table3_reference(kind: TransposeKind, scheme: Scheme) -> Table3Cell {
    use Scheme::{Rap, Ras, Raw};
    use TransposeKind::{Crsw, Drdw, Srcw};
    let (r, w, t) = match (kind, scheme) {
        (Crsw, Raw) => (1.0, 32.0, 1595.0),
        (Crsw, Ras) => (1.0, 3.53, 303.6),
        (Crsw, Rap) => (1.0, 1.0, 154.5),
        (Srcw, Raw) => (32.0, 1.0, 1596.0),
        (Srcw, Ras) => (3.53, 1.0, 297.1),
        (Srcw, Rap) => (1.0, 1.0, 159.1),
        (Drdw, Raw) => (1.0, 1.0, 158.4),
        (Drdw, Ras) => (3.53, 3.53, 427.4),
        (Drdw, Rap) => (3.61, 3.61, 433.3),
        (_, Scheme::Xor | Scheme::Padded) => {
            panic!("the paper's Table III has no {scheme} column")
        }
    };
    Table3Cell {
        read_congestion: r,
        write_congestion: w,
        time_ns: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lookup_known_cells() {
        assert_eq!(table2_reference(Scheme::Raw, "Stride", 32), Some(32.0));
        assert_eq!(table2_reference(Scheme::Ras, "Stride", 32), Some(3.53));
        assert_eq!(table2_reference(Scheme::Rap, "Stride", 256), Some(1.0));
        assert_eq!(table2_reference(Scheme::Rap, "Diagonal", 16), Some(3.20));
        assert_eq!(table2_reference(Scheme::Raw, "Random", 64), Some(3.90));
        assert_eq!(table2_reference(Scheme::Raw, "Contiguous", 128), Some(1.0));
    }

    #[test]
    fn table2_lookup_unknown_cells() {
        assert_eq!(table2_reference(Scheme::Raw, "Stride", 17), None);
        assert_eq!(table2_reference(Scheme::Raw, "Bogus", 32), None);
    }

    #[test]
    fn table3_headline_numbers() {
        let raw = table3_reference(TransposeKind::Crsw, Scheme::Raw);
        let rap = table3_reference(TransposeKind::Crsw, Scheme::Rap);
        assert_eq!(raw.time_ns, 1595.0);
        assert_eq!(rap.time_ns, 154.5);
        // The abstract's headline: a factor ~10 speedup.
        assert!((raw.time_ns / rap.time_ns) > 10.0);
        // DRDW is the RAW-optimized algorithm.
        let drdw = table3_reference(TransposeKind::Drdw, Scheme::Raw);
        assert!(drdw.time_ns < 160.0);
    }
}
