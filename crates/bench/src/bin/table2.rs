//! Reproduce Table II: expected congestion of matrix access patterns.
//!
//! Usage: `cargo run -p rap-bench --bin table2 --release [--trials 2000]
//! [--seed 2014] [--checkpoint <path>|off] [--budget-ms N] [--block-cap N]
//! [--retries N]`
//!
//! The sweep checkpoints completed Monte-Carlo blocks to a ledger
//! (default `results/checkpoints/t2.ledger`), so a killed run resumes
//! where it stopped and still produces byte-identical final JSON.

use rap_access::resilient::ResilientConfig;
use rap_bench::experiments::table2::{self, Table2Config};
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs, ResilienceArgs};
use rap_core::Scheme;

fn main() {
    if let Err(err) = run() {
        eprintln!("table2: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let mut cfg = Table2Config {
        base_trials: args.get_u64("trials", 2000),
        seed: args.get_u64("seed", 2014),
        ..Table2Config::default()
    };
    // --wmax extends the sweep beyond the paper's 256 ("the value of w
    // may be increased in future GPUs", paper §V).
    let wmax = args.get_usize("wmax", 256);
    let mut w = 512;
    while w <= wmax {
        cfg.widths.push(w);
        w *= 2;
    }

    println!("Table II — congestion of memory access to a w×w matrix");
    println!(
        "(Monte-Carlo, {} trials at w=32 scaled by 32/w, seed {})\n",
        cfg.base_trials, cfg.seed
    );

    let rargs = ResilienceArgs::from_cli(&args, "t2.ledger");
    let ledger = rargs
        .open_ledger(cfg.fingerprint())
        .map_err(|e| format!("opening checkpoint ledger: {e}"))?;
    if ledger.resumed_entries() > 0 {
        println!(
            "resuming: {} completed block(s) recovered from the checkpoint ledger\n",
            ledger.resumed_entries()
        );
    }
    let rcfg = ResilientConfig {
        ledger: &ledger,
        budget: rargs.budget,
        retry: rargs.retry,
    };
    let (cells, report) = table2::run_resilient(&cfg, &rcfg);

    for scheme in Scheme::all() {
        println!("{scheme} implementation (paper value in parentheses):");
        let mut header = vec!["w".to_string()];
        header.extend(cfg.widths.iter().map(ToString::to_string));
        let mut t = TextTable::new(header);
        for pattern in rap_access::MatrixPattern::table2() {
            let mut line = vec![pattern.name().to_string()];
            for &w in &cfg.widths {
                let c = cells
                    .iter()
                    .find(|c| c.pattern == pattern && c.scheme == scheme && c.w == w)
                    .expect("cell exists");
                let paper = c.paper.map_or_else(|| "-".into(), fmt2);
                line.push(format!("{} ({paper})", fmt2(c.stats.mean())));
            }
            t.row(line);
        }
        println!("{}", t.render());
    }

    let mut record = table2::to_record(&cfg, &cells);
    rap_bench::annotate_record(&mut record, &report);
    if let Some(worst) = record.worst_relative_error() {
        println!(
            "worst relative deviation from the paper: {:.2}%",
            worst * 100.0
        );
    }
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if report.degraded() {
        eprintln!(
            "table2: run degraded ({} failed, {} budget-skipped blocks); \
             keeping the checkpoint ledger so a rerun can finish the sweep",
            report.failed,
            report.skipped_wall + report.skipped_cap
        );
    } else {
        ledger
            .remove_file()
            .map_err(|e| format!("removing completed checkpoint ledger: {e}"))?;
    }
    Ok(())
}
