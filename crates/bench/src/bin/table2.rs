//! Reproduce Table II: expected congestion of matrix access patterns.
//!
//! Usage: `cargo run -p rap-bench --bin table2 --release [--trials 2000]
//! [--seed 2014]`

use rap_bench::experiments::table2::{self, Table2Config};
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_core::Scheme;

fn main() {
    let args = CliArgs::from_env();
    let mut cfg = Table2Config {
        base_trials: args.get_u64("trials", 2000),
        seed: args.get_u64("seed", 2014),
        ..Table2Config::default()
    };
    // --wmax extends the sweep beyond the paper's 256 ("the value of w
    // may be increased in future GPUs", paper §V).
    let wmax = args.get_usize("wmax", 256);
    let mut w = 512;
    while w <= wmax {
        cfg.widths.push(w);
        w *= 2;
    }

    println!("Table II — congestion of memory access to a w×w matrix");
    println!(
        "(Monte-Carlo, {} trials at w=32 scaled by 32/w, seed {})\n",
        cfg.base_trials, cfg.seed
    );

    let cells = table2::run(&cfg);

    for scheme in Scheme::all() {
        println!("{scheme} implementation (paper value in parentheses):");
        let mut header = vec!["w".to_string()];
        header.extend(cfg.widths.iter().map(ToString::to_string));
        let mut t = TextTable::new(header);
        for pattern in rap_access::MatrixPattern::table2() {
            let mut line = vec![pattern.name().to_string()];
            for &w in &cfg.widths {
                let c = cells
                    .iter()
                    .find(|c| c.pattern == pattern && c.scheme == scheme && c.w == w)
                    .expect("cell exists");
                let paper = c.paper.map_or_else(|| "-".into(), fmt2);
                line.push(format!("{} ({paper})", fmt2(c.stats.mean())));
            }
            t.row(line);
        }
        println!("{}", t.render());
    }

    let record = table2::to_record(&cfg, &cells);
    if let Some(worst) = record.worst_relative_error() {
        println!(
            "worst relative deviation from the paper: {:.2}%",
            worst * 100.0
        );
    }
    match output::write_record(&output::default_root(), &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
