//! Reproduce Table III: transpose congestion (DMM) and time (simulated
//! GTX TITAN).
//!
//! Usage: `cargo run -p rap-bench --bin table3 --release [--instances 25]
//! [--seed 2014]`

use rap_bench::experiments::table3::{self, Table3Config};
use rap_bench::paper::table3_reference;
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_core::Scheme;
use rap_transpose::TransposeKind;

fn main() {
    if let Err(err) = run() {
        eprintln!("table3: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let cfg = Table3Config {
        instances: args.get_u64("instances", 25),
        seed: args.get_u64("seed", 2014),
        ..Table3Config::default()
    };

    println!("Table III — transpose of a 32×32 double matrix");
    println!(
        "(DMM congestion exact; time from the SM model: clock {} GHz, \
         mem latency {} cy, overhead {} cy; RAS/RAP over {} instances)\n",
        cfg.sm.clock_ghz, cfg.sm.mem_latency, cfg.sm.launch_overhead, cfg.instances
    );

    let rows = table3::run(&cfg);

    let mut t = TextTable::new([
        "Algorithm",
        "Scheme",
        "read cong (paper)",
        "write cong (paper)",
        "time ns (paper)",
        "verified",
    ]);
    for kind in TransposeKind::all() {
        for scheme in Scheme::all() {
            let r = rows
                .iter()
                .find(|r| r.kind == kind && r.scheme == scheme)
                .expect("row exists");
            let p = table3_reference(kind, scheme);
            t.row([
                kind.name().to_string(),
                scheme.name().to_string(),
                format!(
                    "{} ({})",
                    fmt2(r.read_congestion.mean()),
                    fmt2(p.read_congestion)
                ),
                format!(
                    "{} ({})",
                    fmt2(r.write_congestion.mean()),
                    fmt2(p.write_congestion)
                ),
                format!("{:.1} ({:.1})", r.time_ns.mean(), p.time_ns),
                if r.all_verified { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    let speedup = |k: TransposeKind, a: Scheme, b: Scheme| {
        let t_of = |s| {
            rows.iter()
                .find(|r| r.kind == k && r.scheme == s)
                .unwrap()
                .time_ns
                .mean()
        };
        t_of(a) / t_of(b)
    };
    println!(
        "CRSW speedup RAW→RAP: {:.1}x (paper 10.3x);  RAW→RAS: {:.1}x (paper 5.3x)",
        speedup(TransposeKind::Crsw, Scheme::Raw, Scheme::Rap),
        speedup(TransposeKind::Crsw, Scheme::Raw, Scheme::Ras),
    );
    println!(
        "DRDW penalty RAP/RAW: {:.2}x (paper 2.74x)\n",
        speedup(TransposeKind::Drdw, Scheme::Rap, Scheme::Raw)
    );

    let record = table3::to_record(&cfg, &rows);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
