//! Experiment SYNTH: layout synthesis vs the static schemes.
//!
//! For every width on the synthesis ladder, builds the mixed reference
//! workload (rows, columns, a diagonal, a strided flat sweep), runs the
//! layout search in both modes (`sigma`: permutation shift tables, the
//! RAP constraint; `table`: free shift tables, the RAS family), gates
//! every certificate through the independent checker, and compares the
//! certified objective against the prover's certified worst-case bound
//! for each static scheme (RAW / RAS / RAP / Padded, XOR where the
//! width is a power of two).
//!
//! The gate: on every workload the synthesized layout's certified
//! worst-case congestion must be ≤ the best static scheme's certified
//! bound, and every certificate must be accepted by the checker. Exits
//! non-zero otherwise and writes `results/synthesize.json` either way.
//!
//! Usage: `cargo run -p rap-bench --bin synthesize --release`

use rap_bench::output;
use rap_core::Scheme;
use rap_synthesize::{check_certificate, synthesize, Mode, Workload};
use serde::Serialize;
use std::time::Instant;

/// Widths the synthesis sweep runs at: the exhaustive window (≤ 5 for σ,
/// ≤ 4 for tables), the branch-and-bound range, and two annealing widths
/// past it. Chosen to keep the release-mode sweep under a minute.
const SYNTH_WIDTHS: &[usize] = &[2, 3, 4, 5, 8, 12, 16, 24, 32, 48, 64];

/// One (width, mode) synthesis run compared against the static schemes.
#[derive(Debug, Serialize)]
struct SynthRow {
    width: usize,
    mode: String,
    method: String,
    optimal: bool,
    explored: u64,
    /// Certified objective of the synthesized layout.
    synthesized: u32,
    /// `(scheme, certified worst-case congestion)` per static baseline.
    baselines: Vec<(String, u32)>,
    /// Min over the baselines — the bound synthesis must not exceed.
    best_static: u32,
    checker_accepted: bool,
    gate_ok: bool,
}

/// What lands in `results/synthesize.json`.
#[derive(Debug, Serialize)]
struct SynthArtifact {
    widths: Vec<usize>,
    workload: String,
    rows: Vec<SynthRow>,
    gates_passed: usize,
    gates_total: usize,
    wall_seconds: f64,
    ok: bool,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("synthesize: {err}");
        std::process::exit(1);
    }
}

/// The prover's certified worst-case bound for the workload under one
/// static scheme: the max over plans of the certified `hi`.
fn baseline_bound(workload: &Workload, scheme: Scheme) -> Result<u32, String> {
    let prover = rap_analyze::Prover::new(workload.width).map_err(|e| e.to_string())?;
    let mut hi = 0u32;
    for plan in &workload.plans {
        let analysis = prover
            .analyze(&plan.warp, scheme)
            .map_err(|e| format!("plan `{}` under {scheme}: {e}", plan.name))?;
        hi = hi.max(analysis.hi);
    }
    Ok(hi)
}

fn run() -> Result<(), String> {
    println!("SYNTH — layout synthesis vs the static schemes");
    let _failpoints = rap_bench::failpoints_from_env()?;
    let start = Instant::now();

    let mut rows = Vec::new();
    for &w in SYNTH_WIDTHS {
        let workload = Workload::mixed(w);

        let mut baselines = Vec::new();
        for scheme in [Scheme::Raw, Scheme::Ras, Scheme::Rap, Scheme::Padded] {
            baselines.push((scheme.to_string(), baseline_bound(&workload, scheme)?));
        }
        if w.is_power_of_two() {
            baselines.push((
                Scheme::Xor.to_string(),
                baseline_bound(&workload, Scheme::Xor)?,
            ));
        }
        let best_static = baselines
            .iter()
            .map(|&(_, hi)| hi)
            .min()
            .ok_or("no baselines")?;

        for mode in [Mode::Sigma, Mode::Table] {
            let synthesis = synthesize(&workload, mode, 2014)?;
            let cert = &synthesis.certificate;
            let checker_accepted = match check_certificate(cert) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("  w = {w} {mode}: checker REJECTED the certificate: {e}");
                    false
                }
            };
            let gate_ok = checker_accepted && cert.objective <= best_static;
            println!(
                "  w = {:>3} {:5}: synthesized {} via {} ({}){}  best static {}  [{}]",
                w,
                mode.as_str(),
                cert.objective,
                cert.method,
                synthesis.explored,
                if cert.optimal { " optimal" } else { "" },
                best_static,
                if gate_ok { "ok" } else { "GATE FAILED" },
            );
            rows.push(SynthRow {
                width: w,
                mode: mode.as_str().into(),
                method: cert.method.clone(),
                optimal: cert.optimal,
                explored: synthesis.explored,
                synthesized: cert.objective,
                baselines: baselines.clone(),
                best_static,
                checker_accepted,
                gate_ok,
            });
        }
    }

    let gates_total = rows.len();
    let gates_passed = rows.iter().filter(|r| r.gate_ok).count();
    let ok = gates_passed == gates_total;
    let wall_seconds = start.elapsed().as_secs_f64();
    println!("\n{gates_passed}/{gates_total} gates passed, {wall_seconds:.2}s");

    let artifact = SynthArtifact {
        widths: SYNTH_WIDTHS.to_vec(),
        workload: "mixed (rows, columns, diagonal, strided flat)".into(),
        rows,
        gates_passed,
        gates_total,
        wall_seconds,
        ok,
    };
    let path = output::results_dir().join("synthesize.json");
    rap_resilience::write_json_atomic(&path, &artifact)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !ok {
        return Err("synthesis gate FAILED: a synthesized layout exceeded \
                    the best static scheme's certified bound"
            .into());
    }
    Ok(())
}
