//! Experiment CLUSTER_CHAOS: soak the `rap-cluster` coordinator — a
//! distributed Table II sweep plus a router request storm — while one
//! worker is killed mid-flight and `ledger.append` faults storm the
//! coordinator, and write `results/cluster_chaos.json`. Exits non-zero
//! if any merged result diverges from the single-process bits, a request
//! is lost, or a kill+resume changes a byte — so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin cluster_chaos --release \
//!     [--seed 2014] [--workers 8] [--requests 100000] [--clients 8] \
//!     [--trials 200] [--worker-bin target/release/rap]`
//!
//! With `--worker-bin` the pool spawns real `rap serve` processes on
//! real sockets and the mid-sweep kill is a genuine SIGKILL; without it
//! the same protocol path runs against in-process servers.

use rap_bench::experiments::cluster_chaos::{self, ChaosConfig};
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("cluster_chaos: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let cfg = ChaosConfig {
        seed: args.get_u64("seed", 2014),
        workers: args.get_usize("workers", 8),
        requests: args.get_u64("requests", 100_000),
        clients: args.get_u64("clients", 8),
        base_trials: args.get_u64("trials", 200),
        worker_bin: args.get("worker-bin").map(std::path::PathBuf::from),
    };

    println!(
        "CLUSTER_CHAOS — {} requests over {} {} workers, one killed mid-sweep, \
         coordinator fault storms (seed {})\n",
        cfg.requests,
        cfg.workers,
        if cfg.worker_bin.is_some() {
            "process"
        } else {
            "in-process"
        },
        cfg.seed
    );

    // Worker-side panics are isolated by the server; the coordinator's
    // own failpoint storms are expected — keep the report readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = cluster_chaos::run_caught(&cfg);
    std::panic::set_hook(prev_hook);

    for check in &report.checks {
        println!(
            "  {} {:40} {}",
            if check.passed { "PASS" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    println!(
        "\n{}/{} checks passed ({:.0} req/s through the router)",
        report.checks.iter().filter(|c| c.passed).count(),
        report.checks.len(),
        report.query_throughput,
    );

    let path = output::results_dir().join("cluster_chaos.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !report.passed {
        return Err("cluster chaos soak FAILED".into());
    }

    // Distributed-vs-single record pair for the CI job's external `cmp`
    // — the byte-identity claim should not rest on this process's own
    // comparison alone.
    let (distributed, single) = cluster_chaos::write_identity_pair(&cfg, &output::results_dir())?;
    println!(
        "wrote identity pair: {} vs {}",
        distributed.display(),
        single.display()
    );
    Ok(())
}
