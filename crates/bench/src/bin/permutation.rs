//! Experiment A4: offline permutation — direct vs graph-coloring vs RAP.
//!
//! Usage: `cargo run -p rap-bench --bin permutation --release
//! [--width 32] [--latency 8] [--instances 15] [--seed 2014]`

use rap_bench::experiments::permutation::{self, PermFamily};
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_permute::Strategy;

fn main() {
    if let Err(err) = run() {
        eprintln!("permutation: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("width", 32);
    let latency = args.get_u64("latency", 8);
    let instances = args.get_u64("instances", 15);
    let seed = args.get_u64("seed", 2014);

    println!(
        "A4 — offline permutation of w² = {} words on the DMM (w={w}, l={latency})",
        w * w
    );
    println!("Direct = one thread per word; ConflictFree = Kasagi-Nakano-Ito edge coloring;");
    println!("RAP = direct over permute-shifted arrays (no offline analysis)\n");

    let cells = permutation::run(w, latency, instances, seed);
    let mut t = TextTable::new([
        "Permutation",
        "Direct cycles",
        "Colored cycles",
        "RAP cycles",
        "Direct maxC",
        "RAP maxC",
    ]);
    for family in PermFamily::all() {
        let get = |s: Strategy| {
            cells
                .iter()
                .find(|c| c.family == family && c.strategy == s)
                .expect("cell exists")
        };
        t.row([
            family.name().to_string(),
            fmt2(get(Strategy::Direct).cycles.mean()),
            fmt2(get(Strategy::ConflictFree).cycles.mean()),
            fmt2(get(Strategy::Rap).cycles.mean()),
            fmt2(get(Strategy::Direct).max_congestion.mean()),
            fmt2(get(Strategy::Rap).max_congestion.mean()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The coloring is optimal everywhere but needs an offline O(E log k) schedule;\n\
         RAP stays within a small factor of it with zero analysis — the paper's point.\n"
    );

    let record = permutation::to_record(w, latency, seed, &cells);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
