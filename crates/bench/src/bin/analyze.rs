//! Experiment ANALYZE: the static prover sweep.
//!
//! Certifies Theorem 1 and Theorem 2 statically at every width of the
//! conformance ladder — no simulation, the RAS shifts and the RAP
//! permutation stay symbolic — then lints the declared access plans of
//! the transpose algorithms and application kernels at representative
//! widths, and writes `results/analyze.json`. Exits non-zero if any
//! theorem is unproven or any plan carries an `Error`-severity
//! diagnostic (the RAW warnings are the expected, documented conflicts).
//!
//! Usage: `cargo run -p rap-bench --bin analyze --release`

use rap_analyze::{
    certify_theorem1, certify_theorem2, lint_plans, LintReport, Severity, TheoremReport,
};
use rap_bench::output;
use rap_conformance::WIDTH_LADDER;
use rap_core::Scheme;
use serde::Serialize;
use std::time::Instant;

/// Widths the (quadratic) plan lint runs at — small enough to stay
/// instant, wide enough to be representative.
const LINT_WIDTHS: &[usize] = &[8, 32];

/// What lands in `results/analyze.json`.
#[derive(Debug, Serialize)]
struct AnalyzeArtifact {
    widths: Vec<usize>,
    theorems: Vec<TheoremReport>,
    lint: Vec<LintReport>,
    claims_proven: usize,
    claims_total: usize,
    diagnostics_total: usize,
    wall_seconds: f64,
    proven: bool,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("analyze: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!("ANALYZE — static prover sweep (no simulation)");
    let _failpoints = rap_bench::failpoints_from_env()?;
    let start = Instant::now();

    let mut theorems = Vec::new();
    for &w in WIDTH_LADDER {
        for certify in [certify_theorem1, certify_theorem2] {
            match certify(w) {
                Ok(report) => {
                    println!(
                        "  {:9} w = {:>3}: {} ({} claim(s))",
                        report.theorem,
                        w,
                        if report.proven { "proven" } else { "UNPROVEN" },
                        report.claims.len()
                    );
                    theorems.push(report);
                }
                Err(e) => return Err(format!("certification failed at w = {w}: {e}")),
            }
        }
    }

    let mut lint = Vec::new();
    for &w in LINT_WIDTHS {
        for scheme in Scheme::extended() {
            if scheme == Scheme::Xor && !w.is_power_of_two() {
                continue;
            }
            match lint_plans(w, scheme) {
                Ok(report) => {
                    println!(
                        "  lint {scheme:>6} w = {:>3}: {} finding(s), worst {:?}",
                        w,
                        report.diagnostics.len(),
                        report.worst_severity()
                    );
                    lint.push(report);
                }
                Err(e) => return Err(format!("lint failed at w = {w} under {scheme}: {e}")),
            }
        }
    }

    let claims_total: usize = theorems.iter().map(|t| t.claims.len()).sum();
    let claims_proven: usize = theorems
        .iter()
        .flat_map(|t| &t.claims)
        .filter(|c| c.proven)
        .count();
    let diagnostics_total: usize = lint.iter().map(|r| r.diagnostics.len()).sum();
    let lint_clean = lint
        .iter()
        .all(|r| r.worst_severity().is_none_or(|s| s > Severity::Error));
    let proven = theorems.iter().all(|t| t.proven) && lint_clean;
    let wall_seconds = start.elapsed().as_secs_f64();

    println!(
        "\n{claims_proven}/{claims_total} claims proven across {} widths, \
         {diagnostics_total} lint finding(s), {:.2}s",
        WIDTH_LADDER.len(),
        wall_seconds
    );

    let artifact = AnalyzeArtifact {
        widths: WIDTH_LADDER.to_vec(),
        theorems,
        lint,
        claims_proven,
        claims_total,
        diagnostics_total,
        wall_seconds,
        proven,
    };
    let path = output::results_dir().join("analyze.json");
    rap_resilience::write_json_atomic(&path, &artifact)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !proven {
        return Err("static analysis FAILED".into());
    }
    Ok(())
}
