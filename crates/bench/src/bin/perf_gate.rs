//! CI performance gate for the Monte-Carlo engine.
//!
//! Measures single-thread trials/sec of the fixed perf sweep (same
//! workload as `perf_smoke`) and compares it against the committed
//! baseline in `results/perf_baseline.json`. The run **fails** (exit 1)
//! when throughput drops below `min_ratio × baseline` — the tolerance
//! band absorbs machine-to-machine variance between comparable x86-64
//! runners while still catching real regressions (losing the bit-parallel
//! kernel or the fused mapping costs 3-5x, far outside any band).
//!
//! Single-thread on purpose: per-core throughput is the quantity the
//! optimization work targets and the only one comparable across runners
//! with different core counts. The best of `--reps` repetitions is
//! scored, which strips scheduler-preemption outliers without hiding a
//! sustained regression.
//!
//! Usage: `cargo run -p rap-bench --bin perf_gate --release
//! [--baseline results/perf_baseline.json] [--reps 3] [--update]`
//!
//! `--update` rewrites the baseline file from this run's measurement
//! (use on the machine class that CI runs on, then commit the file).

use rap_bench::{output, perf, CliArgs};
use serde::{Deserialize, Serialize};

/// The committed reference point (`results/perf_baseline.json`).
#[derive(Debug, Serialize, Deserialize)]
struct PerfBaseline {
    /// Matrix width of the sweep.
    w: usize,
    /// Trials per cell.
    trials_per_cell: u64,
    /// Root seed.
    seed: u64,
    /// Single-thread trials/sec the baseline machine sustained.
    trials_per_second: f64,
    /// Failure threshold: measured/baseline below this ratio fails.
    min_ratio: f64,
    /// Where the baseline was recorded (human readable).
    recorded_on: String,
}

/// The verdict written to `results/perf_gate.json`.
#[derive(Debug, Serialize)]
struct PerfGateReport {
    /// Experiment id (fixed: "perf_gate").
    id: String,
    /// Sweep parameters, human readable.
    params: String,
    /// Best single-thread trials/sec over the repetitions.
    measured_trials_per_second: f64,
    /// Every repetition's trials/sec, in run order.
    rep_trials_per_second: Vec<f64>,
    /// The committed baseline value.
    baseline_trials_per_second: f64,
    /// measured / baseline.
    ratio: f64,
    /// The failure threshold from the baseline file.
    min_ratio: f64,
    /// Logical CPUs of this host.
    logical_cpus: usize,
    /// Physical cores of this host.
    physical_cpus: usize,
    /// True when the gate passed.
    pass: bool,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("perf_gate: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let baseline_path =
        std::path::PathBuf::from(args.get("baseline").unwrap_or("results/perf_baseline.json"));
    let reps = args.get_u64("reps", 3).max(1);
    let update = args.get("update").is_some() || std::env::args().any(|a| a == "--update");

    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let mut baseline: PerfBaseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    if !(baseline.min_ratio > 0.0 && baseline.min_ratio <= 1.0) {
        return Err(format!(
            "baseline min_ratio {} must be in (0, 1]",
            baseline.min_ratio
        ));
    }

    let (w, trials, seed) = (baseline.w, baseline.trials_per_cell, baseline.seed);
    println!(
        "perf_gate — single-thread sweep w={w}, {trials} trials/cell, best of {reps} rep(s), \
         baseline {:.0} trials/s (recorded on: {})",
        baseline.trials_per_second, baseline.recorded_on
    );

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| format!("building 1-thread pool: {e}"))?;
    // Warm up (page in code, grow allocator arenas) before timing.
    let _ = pool.install(|| perf::run_sweep(w, trials.min(100), seed));

    let mut rep_rates = Vec::new();
    let mut checksum = None;
    for rep in 0..reps {
        let timing = pool.install(|| perf::run_sweep(w, trials, seed));
        match checksum {
            None => checksum = Some(timing.mean_checksum),
            Some(c) => assert!(
                c == timing.mean_checksum,
                "run-to-run determinism violated: {c} vs {}",
                timing.mean_checksum
            ),
        }
        println!(
            "  rep {} of {reps}: {:.0} trials/s ({:.3}s)",
            rep + 1,
            timing.trials_per_second(),
            timing.wall_seconds
        );
        rep_rates.push(timing.trials_per_second());
    }
    let measured = rep_rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let ratio = measured / baseline.trials_per_second;
    let pass = ratio >= baseline.min_ratio;

    let report = PerfGateReport {
        id: "perf_gate".into(),
        params: format!("w={w} trials={trials} seed={seed} reps={reps}"),
        measured_trials_per_second: measured,
        rep_trials_per_second: rep_rates,
        baseline_trials_per_second: baseline.trials_per_second,
        ratio,
        min_ratio: baseline.min_ratio,
        logical_cpus: perf::logical_cpus(),
        physical_cpus: perf::physical_cpus(),
        pass,
    };
    let path = output::results_dir().join("perf_gate.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing report: {e}"))?;
    println!(
        "measured {measured:.0} trials/s = {ratio:.2}x baseline (threshold {:.2}x) → {}",
        baseline.min_ratio,
        if pass { "PASS" } else { "FAIL" }
    );
    println!("wrote {}", path.display());

    if update {
        baseline.trials_per_second = measured;
        rap_resilience::write_json_atomic(&baseline_path, &baseline)
            .map_err(|e| format!("updating baseline: {e}"))?;
        println!("updated baseline {}", baseline_path.display());
        return Ok(());
    }
    if !pass {
        return Err(format!(
            "throughput regressed: {measured:.0} trials/s is {ratio:.2}x the baseline \
             {:.0} trials/s, below the {:.2}x floor",
            baseline.trials_per_second, baseline.min_ratio
        ));
    }
    Ok(())
}
