//! Experiment A3: robustness of Table III's shape to the SM model's free
//! parameters.
//!
//! Usage: `cargo run -p rap-bench --bin ablation --release [--seed 2014]`

use rap_bench::experiments::ablation;
use rap_bench::table::TextTable;
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("ablation: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let seed = args.get_u64("seed", 2014);

    println!("A3 — SM-model ablation (paper: CRSW speedup 10.3x, DRDW penalty 2.74x)\n");
    let rows = ablation::run(seed);

    let mut t = TextTable::new(["setting", "CRSW RAW/RAP", "DRDW RAP/RAW"]);
    for r in &rows {
        t.row([
            r.setting.clone(),
            format!("{:.1}x", r.crsw_speedup),
            format!("{:.2}x", r.drdw_penalty),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The RAP advantage on naive transposes and its DRDW penalty persist \
         across a wide range of latency / ALU / overhead assumptions: the \
         shape of Table III is not an artifact of the calibration.\n"
    );

    let record = ablation::to_record(seed, &rows);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
