//! Performance smoke test of the Monte-Carlo engine.
//!
//! Times a fixed Table-II-style sweep (every pattern × scheme at one
//! width) at several thread counts and writes `results/perf_smoke.json`
//! with trials/sec, wall time, and the speedup over one thread. Unlike the
//! criterion benches this runs in seconds and produces machine-readable
//! output, so it can gate regressions in CI or quick local checks.
//!
//! The scaling numbers are honest about the hardware: the report carries
//! both **logical** and **physical** CPU counts, every sample that ran
//! more worker threads than physical cores is flagged `unreliable` (SMT
//! or timesharing, not parallel scaling), and the built-in scaling check
//! — best reliable multi-thread speedup ≥ 1.2 — only arms on hosts with
//! at least two physical cores. On a 1-core box the run still doubles as
//! a cross-thread-count determinism check (see the checksum assert).
//!
//! Timings are not checkpointed: wall-clock samples are inherently
//! non-reproducible, so a resumed run could never be byte-identical to an
//! uninterrupted one. Instead `--budget-ms` bounds the run — thread
//! counts that would start after the deadline are skipped and the report
//! is marked `degraded` with a note per skipped count.
//!
//! Usage: `cargo run -p rap-bench --bin perf_smoke --release
//! [--trials 2000] [--w 32] [--seed 2014] [--budget-ms N]
//! [--cluster-workers 2] [--worker-bin target/release/rap]`
//!
//! The report also carries a cluster section — worker-process count,
//! per-shard `pattern_block` throughput, and the aggregate blocks/sec of
//! a small distributed sweep — so shard regressions are visible next to
//! the single-process engine numbers. `--cluster-workers 0` disables it.

use rap_bench::{output, perf, CliArgs};
use serde::Serialize;
use std::time::{Duration, Instant};

/// One timed sweep at a fixed thread count.
#[derive(Debug, Serialize)]
struct ThreadSample {
    /// Worker threads used by the engine.
    threads: usize,
    /// Wall time of the whole sweep in seconds.
    wall_seconds: f64,
    /// Monte-Carlo trials completed per second (all cells combined).
    trials_per_second: f64,
    /// Speedup over the 1-thread sweep.
    speedup: f64,
    /// True when `threads` exceeds the physical core count: the speedup
    /// then measures SMT/timesharing effects, not parallel scaling.
    unreliable: bool,
}

/// Throughput of one cluster shard, measured over its own socket.
#[derive(Debug, Serialize)]
struct ShardSample {
    /// Worker index in the pool.
    worker: usize,
    /// The shard's listen address.
    addr: String,
    /// `pattern_block` requests timed against this shard.
    requests: u64,
    /// Requests per second this shard sustained.
    requests_per_second: f64,
}

/// Cluster section of the report: how many workers, how fast each shard
/// is, and the distributed sweep's aggregate block throughput.
#[derive(Debug, Serialize)]
struct ClusterPerf {
    /// Worker processes (or in-process servers) in the pool.
    worker_processes: u64,
    /// True when the workers were real spawned `rap serve` processes.
    process_workers: bool,
    /// Per-shard `pattern_block` throughput.
    shards: Vec<ShardSample>,
    /// Blocks in the timed distributed sweep.
    sweep_blocks: u64,
    /// Aggregate blocks per second of the distributed sweep.
    sweep_blocks_per_second: f64,
}

/// The full smoke report written to `results/perf_smoke.json`.
#[derive(Debug, Serialize)]
struct PerfSmokeReport {
    /// Experiment id (fixed: "perf_smoke").
    id: String,
    /// Sweep parameters, human readable.
    params: String,
    /// Matrix width of the sweep.
    w: usize,
    /// Trials per cell.
    trials_per_cell: u64,
    /// Number of (pattern, scheme) cells.
    cells: usize,
    /// Total trials across the sweep.
    total_trials: u64,
    /// Logical CPUs (SMT threads count separately).
    logical_cpus: usize,
    /// Physical cores (sysfs/cpuinfo topology; see `rap_bench::perf`).
    physical_cpus: usize,
    /// One entry per tested thread count.
    samples: Vec<ThreadSample>,
    /// Checksum: sum of all cell means, to pin that every thread count
    /// computed the identical estimate (the engine's determinism
    /// contract).
    mean_checksum: f64,
    /// Outcome of the scaling check: "passed", or the reason it was
    /// skipped.
    scaling_check: String,
    /// Sharded-coordinator throughput (`--cluster-workers 0` disables).
    cluster: Option<ClusterPerf>,
    /// True when the wall budget cut the thread-count sweep short.
    degraded: bool,
    /// Human-readable notes about skipped thread counts.
    notes: Vec<String>,
}

/// Time each shard individually, then a small distributed sweep.
fn cluster_perf(
    workers: usize,
    worker_bin: Option<&str>,
    seed: u64,
) -> Result<ClusterPerf, String> {
    use rap_bench::experiments::table2::{self, Table2Config};
    use rap_cluster::{Cluster, ClusterConfig, WorkerPool};

    let pool = match worker_bin {
        Some(bin) => WorkerPool::spawn_processes(std::path::Path::new(bin), workers)
            .map_err(|e| format!("spawning workers from {bin}: {e}"))?,
        None => WorkerPool::in_process(workers).map_err(|e| format!("spawning workers: {e}"))?,
    };

    // Per-shard: a burst of real block requests over the shard's socket.
    const PROBE_REQUESTS: u64 = 64;
    let mut shards = Vec::with_capacity(workers);
    for (w, addr) in pool.addrs().into_iter().enumerate() {
        let mut client =
            rap_serve::Client::connect(addr).map_err(|e| format!("shard {w} connect: {e}"))?;
        let start = Instant::now();
        for i in 0..PROBE_REQUESTS {
            let line = format!(
                r#"{{"cmd":"pattern_block","id":{i},"pattern":"random","scheme":"rap","width":16,"trials":32,"block":0,"seed":{seed}}}"#
            );
            let resp = client
                .roundtrip(&line)
                .map_err(|e| format!("shard {w} request {i}: {e}"))?;
            if !resp.ok {
                return Err(format!("shard {w} refused a block request: {resp:?}"));
            }
        }
        shards.push(ShardSample {
            worker: w,
            addr: addr.to_string(),
            requests: PROBE_REQUESTS,
            requests_per_second: PROBE_REQUESTS as f64 / start.elapsed().as_secs_f64().max(1e-9),
        });
    }

    // Aggregate: a small distributed Table II sweep, timed end to end.
    let t2 = Table2Config {
        widths: vec![16, 32],
        base_trials: 200,
        seed,
    };
    let cluster = Cluster::new(pool, ClusterConfig::default());
    let ledger = rap_resilience::Ledger::in_memory();
    let start = Instant::now();
    let (_, report) = cluster.run_sweep(&table2::sweep_cells(&t2), &ledger);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    cluster.pool().shutdown();
    if report.degraded {
        return Err(format!("the timed sweep degraded: {report:?}"));
    }
    Ok(ClusterPerf {
        worker_processes: workers as u64,
        process_workers: worker_bin.is_some(),
        shards,
        sweep_blocks: report.blocks_total,
        sweep_blocks_per_second: report.blocks_total as f64 / wall,
    })
}

fn main() {
    if let Err(err) = run() {
        eprintln!("perf_smoke: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("w", 32);
    let trials = args.get_u64("trials", 2000);
    let seed = args.get_u64("seed", 2014);
    if w == 0 || trials == 0 {
        eprintln!("error: --w and --trials must be at least 1 (got w={w}, trials={trials})");
        std::process::exit(2);
    }
    let budget_ms = args.get_u64("budget-ms", 0);
    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));

    let cells = perf::sweep_cells();
    let total_trials = trials * cells as u64;
    let logical = perf::logical_cpus();
    let physical = perf::physical_cpus();

    println!(
        "perf_smoke — Table-II-style sweep, w={w}, {trials} trials/cell, {cells} cells, \
         {logical} logical / {physical} physical CPUs"
    );

    // Warm up (page in code, grow allocator arenas) before timing.
    let _ = perf::run_sweep(w, trials.min(100), seed);

    // Always time 2 threads even on a 1-core host: the run doubles as a
    // cross-thread-count determinism check (see the checksum assert).
    let mut thread_counts = vec![1usize, 2];
    if logical > 3 {
        thread_counts.push(logical / 2);
    }
    if logical > 2 {
        thread_counts.push(logical);
    }
    thread_counts.dedup();

    let mut samples = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = None;
    let mut checksum = None;
    for &threads in &thread_counts {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            notes.push(format!(
                "skipped threads={threads}: wall budget of {budget_ms} ms exhausted"
            ));
            continue;
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| format!("building {threads}-thread pool: {e}"))?;
        let timing = pool.install(|| perf::run_sweep(w, trials, seed));
        match checksum {
            None => checksum = Some(timing.mean_checksum),
            // Engine contract: the estimate is bit-identical per thread
            // count, so the checksum must be too.
            Some(c) => assert!(
                c == timing.mean_checksum,
                "thread-count determinism violated: {c} vs {}",
                timing.mean_checksum
            ),
        }
        let base = *baseline.get_or_insert(timing.wall_seconds);
        let sample = ThreadSample {
            threads,
            wall_seconds: timing.wall_seconds,
            trials_per_second: timing.trials_per_second(),
            speedup: base / timing.wall_seconds,
            unreliable: threads > physical,
        };
        println!(
            "  threads={:<3} wall={:.3}s  {:.0} trials/s  speedup {:.2}x{}",
            sample.threads,
            sample.wall_seconds,
            sample.trials_per_second,
            sample.speedup,
            if sample.unreliable {
                "  (unreliable: oversubscribes physical cores)"
            } else {
                ""
            }
        );
        samples.push(sample);
    }
    for note in &notes {
        eprintln!("perf_smoke: {note}");
    }

    // Scaling check: only meaningful where real parallel hardware exists
    // and the budget let a reliable multi-thread sample run.
    let best_reliable = samples
        .iter()
        .filter(|s| s.threads > 1 && !s.unreliable)
        .map(|s| s.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    let scaling_check = if physical < 2 {
        format!("skipped: {physical} physical core(s), speedups are timesharing noise")
    } else if best_reliable == f64::NEG_INFINITY {
        "skipped: no reliable multi-thread sample ran".to_string()
    } else if best_reliable >= 1.2 {
        "passed".to_string()
    } else {
        return Err(format!(
            "scaling check failed: best reliable multi-thread speedup {best_reliable:.2}x < 1.2x \
             on {physical} physical cores"
        ));
    };
    println!("scaling check: {scaling_check}");

    // Cluster throughput: worker count and per-shard request rates.
    let cluster_workers = args.get_usize("cluster-workers", 2);
    let cluster = if cluster_workers == 0 {
        None
    } else {
        let perf = cluster_perf(cluster_workers.min(16), args.get("worker-bin"), seed)?;
        println!(
            "cluster: {} {} worker(s), sweep {:.0} blocks/s",
            perf.worker_processes,
            if perf.process_workers {
                "process"
            } else {
                "in-process"
            },
            perf.sweep_blocks_per_second
        );
        for s in &perf.shards {
            println!(
                "  shard {} ({}): {:.0} block requests/s",
                s.worker, s.addr, s.requests_per_second
            );
        }
        Some(perf)
    };

    let report = PerfSmokeReport {
        id: "perf_smoke".into(),
        params: format!("w={w} trials={trials} seed={seed}"),
        w,
        trials_per_cell: trials,
        cells,
        total_trials,
        logical_cpus: logical,
        physical_cpus: physical,
        samples,
        mean_checksum: checksum.unwrap_or(0.0),
        scaling_check,
        cluster,
        degraded: !notes.is_empty(),
        notes,
    };

    let path = output::results_dir().join("perf_smoke.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing report: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
