//! Performance smoke test of the Monte-Carlo engine.
//!
//! Times a fixed Table-II-style sweep (every pattern × scheme at one
//! width) at several thread counts and writes `results/perf_smoke.json`
//! with trials/sec, wall time, and the speedup over one thread. Unlike the
//! criterion benches this runs in seconds and produces machine-readable
//! output, so it can gate regressions in CI or quick local checks.
//!
//! The scaling numbers are honest about the hardware: the report carries
//! both **logical** and **physical** CPU counts, every sample that ran
//! more worker threads than physical cores is flagged `unreliable` (SMT
//! or timesharing, not parallel scaling), and the built-in scaling check
//! — best reliable multi-thread speedup ≥ 1.2 — only arms on hosts with
//! at least two physical cores. On a 1-core box the run still doubles as
//! a cross-thread-count determinism check (see the checksum assert).
//!
//! Timings are not checkpointed: wall-clock samples are inherently
//! non-reproducible, so a resumed run could never be byte-identical to an
//! uninterrupted one. Instead `--budget-ms` bounds the run — thread
//! counts that would start after the deadline are skipped and the report
//! is marked `degraded` with a note per skipped count.
//!
//! Usage: `cargo run -p rap-bench --bin perf_smoke --release
//! [--trials 2000] [--w 32] [--seed 2014] [--budget-ms N]`

use rap_bench::{output, perf, CliArgs};
use serde::Serialize;
use std::time::{Duration, Instant};

/// One timed sweep at a fixed thread count.
#[derive(Debug, Serialize)]
struct ThreadSample {
    /// Worker threads used by the engine.
    threads: usize,
    /// Wall time of the whole sweep in seconds.
    wall_seconds: f64,
    /// Monte-Carlo trials completed per second (all cells combined).
    trials_per_second: f64,
    /// Speedup over the 1-thread sweep.
    speedup: f64,
    /// True when `threads` exceeds the physical core count: the speedup
    /// then measures SMT/timesharing effects, not parallel scaling.
    unreliable: bool,
}

/// The full smoke report written to `results/perf_smoke.json`.
#[derive(Debug, Serialize)]
struct PerfSmokeReport {
    /// Experiment id (fixed: "perf_smoke").
    id: String,
    /// Sweep parameters, human readable.
    params: String,
    /// Matrix width of the sweep.
    w: usize,
    /// Trials per cell.
    trials_per_cell: u64,
    /// Number of (pattern, scheme) cells.
    cells: usize,
    /// Total trials across the sweep.
    total_trials: u64,
    /// Logical CPUs (SMT threads count separately).
    logical_cpus: usize,
    /// Physical cores (sysfs/cpuinfo topology; see `rap_bench::perf`).
    physical_cpus: usize,
    /// One entry per tested thread count.
    samples: Vec<ThreadSample>,
    /// Checksum: sum of all cell means, to pin that every thread count
    /// computed the identical estimate (the engine's determinism
    /// contract).
    mean_checksum: f64,
    /// Outcome of the scaling check: "passed", or the reason it was
    /// skipped.
    scaling_check: String,
    /// True when the wall budget cut the thread-count sweep short.
    degraded: bool,
    /// Human-readable notes about skipped thread counts.
    notes: Vec<String>,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("perf_smoke: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("w", 32);
    let trials = args.get_u64("trials", 2000);
    let seed = args.get_u64("seed", 2014);
    if w == 0 || trials == 0 {
        eprintln!("error: --w and --trials must be at least 1 (got w={w}, trials={trials})");
        std::process::exit(2);
    }
    let budget_ms = args.get_u64("budget-ms", 0);
    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));

    let cells = perf::sweep_cells();
    let total_trials = trials * cells as u64;
    let logical = perf::logical_cpus();
    let physical = perf::physical_cpus();

    println!(
        "perf_smoke — Table-II-style sweep, w={w}, {trials} trials/cell, {cells} cells, \
         {logical} logical / {physical} physical CPUs"
    );

    // Warm up (page in code, grow allocator arenas) before timing.
    let _ = perf::run_sweep(w, trials.min(100), seed);

    // Always time 2 threads even on a 1-core host: the run doubles as a
    // cross-thread-count determinism check (see the checksum assert).
    let mut thread_counts = vec![1usize, 2];
    if logical > 3 {
        thread_counts.push(logical / 2);
    }
    if logical > 2 {
        thread_counts.push(logical);
    }
    thread_counts.dedup();

    let mut samples = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = None;
    let mut checksum = None;
    for &threads in &thread_counts {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            notes.push(format!(
                "skipped threads={threads}: wall budget of {budget_ms} ms exhausted"
            ));
            continue;
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| format!("building {threads}-thread pool: {e}"))?;
        let timing = pool.install(|| perf::run_sweep(w, trials, seed));
        match checksum {
            None => checksum = Some(timing.mean_checksum),
            // Engine contract: the estimate is bit-identical per thread
            // count, so the checksum must be too.
            Some(c) => assert!(
                c == timing.mean_checksum,
                "thread-count determinism violated: {c} vs {}",
                timing.mean_checksum
            ),
        }
        let base = *baseline.get_or_insert(timing.wall_seconds);
        let sample = ThreadSample {
            threads,
            wall_seconds: timing.wall_seconds,
            trials_per_second: timing.trials_per_second(),
            speedup: base / timing.wall_seconds,
            unreliable: threads > physical,
        };
        println!(
            "  threads={:<3} wall={:.3}s  {:.0} trials/s  speedup {:.2}x{}",
            sample.threads,
            sample.wall_seconds,
            sample.trials_per_second,
            sample.speedup,
            if sample.unreliable {
                "  (unreliable: oversubscribes physical cores)"
            } else {
                ""
            }
        );
        samples.push(sample);
    }
    for note in &notes {
        eprintln!("perf_smoke: {note}");
    }

    // Scaling check: only meaningful where real parallel hardware exists
    // and the budget let a reliable multi-thread sample run.
    let best_reliable = samples
        .iter()
        .filter(|s| s.threads > 1 && !s.unreliable)
        .map(|s| s.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    let scaling_check = if physical < 2 {
        format!("skipped: {physical} physical core(s), speedups are timesharing noise")
    } else if best_reliable == f64::NEG_INFINITY {
        "skipped: no reliable multi-thread sample ran".to_string()
    } else if best_reliable >= 1.2 {
        "passed".to_string()
    } else {
        return Err(format!(
            "scaling check failed: best reliable multi-thread speedup {best_reliable:.2}x < 1.2x \
             on {physical} physical cores"
        ));
    };
    println!("scaling check: {scaling_check}");

    let report = PerfSmokeReport {
        id: "perf_smoke".into(),
        params: format!("w={w} trials={trials} seed={seed}"),
        w,
        trials_per_cell: trials,
        cells,
        total_trials,
        logical_cpus: logical,
        physical_cpus: physical,
        samples,
        mean_checksum: checksum.unwrap_or(0.0),
        scaling_check,
        degraded: !notes.is_empty(),
        notes,
    };

    let path = output::results_dir().join("perf_smoke.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing report: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
