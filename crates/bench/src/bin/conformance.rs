//! Experiment CONF: the extended differential-conformance sweep.
//!
//! Runs the full oracle suite at a multiple of the bounded-test budget
//! and writes `results/conformance.json`. Exits non-zero on any
//! divergence or shrink panic, so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin conformance --release -- \
//!     [--multiplier 4] [--seed 2014]`

use rap_bench::{output, CliArgs};
use rap_conformance::{ConformanceReport, Harness};
use serde::Serialize;
use std::time::Instant;

/// What lands in `results/conformance.json`: the deterministic report
/// plus the run parameters and (non-deterministic) wall time, kept
/// outside the report itself so the report stays comparable across runs.
#[derive(Debug, Serialize)]
struct ConformanceArtifact {
    multiplier: u64,
    wall_seconds: f64,
    report: ConformanceReport,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("conformance: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let multiplier = args.get_u64("multiplier", 4);
    let seed = args.get_u64("seed", 2014);

    println!("CONF — differential conformance, extended sweep");
    println!("base seed {seed:#x}, budget multiplier {multiplier}\n");

    let start = Instant::now();
    let report = Harness::extended(multiplier).run(seed);
    let wall_seconds = start.elapsed().as_secs_f64();

    for oracle in &report.oracles {
        println!(
            "  {:36} {:>7} cases  {:>4} divergence(s)",
            oracle.name, oracle.cases, oracle.divergences
        );
    }
    println!("\n{} in {wall_seconds:.1}s", report.summary());
    for divergence in &report.divergences {
        println!("  {divergence}");
    }

    let clean = report.is_clean();
    let artifact = ConformanceArtifact {
        multiplier,
        wall_seconds,
        report,
    };
    let path = output::results_dir().join("conformance.json");
    rap_resilience::write_json_atomic(&path, &artifact)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !clean {
        return Err("conformance sweep FAILED".into());
    }
    Ok(())
}
