//! Experiment CONF: the extended differential-conformance sweep.
//!
//! Runs the full oracle suite at a multiple of the bounded-test budget
//! and writes `results/conformance.json`. Exits non-zero on any
//! divergence or shrink panic, so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin conformance --release -- \
//!     [--multiplier 4] [--seed 2014]`

use rap_bench::{output, CliArgs};
use rap_conformance::{ConformanceReport, Harness};
use serde::Serialize;
use std::time::Instant;

/// What lands in `results/conformance.json`: the deterministic report
/// plus the run parameters and (non-deterministic) wall time, kept
/// outside the report itself so the report stays comparable across runs.
#[derive(Debug, Serialize)]
struct ConformanceArtifact {
    multiplier: u64,
    wall_seconds: f64,
    report: ConformanceReport,
}

fn main() {
    let args = CliArgs::from_env();
    let multiplier = args.get_u64("multiplier", 4);
    let seed = args.get_u64("seed", 2014);

    println!("CONF — differential conformance, extended sweep");
    println!("base seed {seed:#x}, budget multiplier {multiplier}\n");

    let start = Instant::now();
    let report = Harness::extended(multiplier).run(seed);
    let wall_seconds = start.elapsed().as_secs_f64();

    for oracle in &report.oracles {
        println!(
            "  {:36} {:>7} cases  {:>4} divergence(s)",
            oracle.name, oracle.cases, oracle.divergences
        );
    }
    println!("\n{} in {wall_seconds:.1}s", report.summary());
    for divergence in &report.divergences {
        println!("  {divergence}");
    }

    let clean = report.is_clean();
    let artifact = ConformanceArtifact {
        multiplier,
        wall_seconds,
        report,
    };
    let dir = output::default_root().join("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir: {e}");
    }
    let path = dir.join("conformance.json");
    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write results: {e}"),
        },
        Err(e) => eprintln!("could not serialize report: {e}"),
    }

    if !clean {
        eprintln!("conformance sweep FAILED");
        std::process::exit(1);
    }
}
