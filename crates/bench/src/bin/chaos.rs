//! Experiment CHAOS: run the fault-injection self-test suite and write
//! `results/chaos.json`. Exits non-zero if any resilience invariant
//! breaks under injected faults, so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin chaos --release [--seed 2014]`

use rap_bench::experiments::chaos;
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("chaos: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let seed = args.get_u64("seed", 2014);

    println!("CHAOS — fault-injection self-test of the resilience stack (seed {seed})\n");

    let scratch = std::env::temp_dir().join(format!("rap-chaos-{}", std::process::id()));
    // Injected panics are expected and caught; a default panic hook would
    // spray backtraces over the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = chaos::run(&scratch, seed);
    std::panic::set_hook(prev_hook);
    let _ = std::fs::remove_dir_all(&scratch);

    for check in &report.checks {
        println!(
            "  {} {:42} {}",
            if check.passed { "PASS" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    println!(
        "\n{}/{} checks passed",
        report.checks.iter().filter(|c| c.passed).count(),
        report.checks.len()
    );

    let path = output::results_dir().join("chaos.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !report.passed {
        return Err("chaos suite FAILED".into());
    }
    Ok(())
}
