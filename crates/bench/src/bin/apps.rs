//! Experiment A5: application kernels (tiled `A·Bᵀ`, data-dependent
//! gather) under RAW / RAS / RAP.
//!
//! Usage: `cargo run -p rap-bench --bin apps --release [--width 32]
//! [--latency 8] [--instances 15] [--seed 2014]`

use rap_apps::IndexDistribution;
use rap_bench::experiments::apps;
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_core::Scheme;

fn main() {
    if let Err(err) = run() {
        eprintln!("apps: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("width", 32);
    let latency = args.get_u64("latency", 8);
    let instances = args.get_u64("instances", 15);
    let seed = args.get_u64("seed", 2014);

    println!("A5 — application kernels on the DMM (w={w}, l={latency})\n");

    println!("Tiled C = A·Bᵀ (B is read column-wise — the stride access of §III):");
    let matmul = apps::run_matmul(w, latency, instances, seed);
    let mut t = TextTable::new(["Scheme", "cycles", "B-read congestion"]);
    for c in &matmul {
        t.row([
            c.scheme.name().to_string(),
            fmt2(c.cycles.mean()),
            fmt2(c.b_congestion.mean()),
        ]);
    }
    println!("{}", t.render());

    println!("Data-dependent gather b[t] = a[idx[t]] (read congestion per distribution):");
    let gather = apps::run_gather_sweep(w, latency, instances, seed);
    let mut t = TextTable::new(["Distribution", "RAW", "RAS", "RAP"]);
    for dist in IndexDistribution::all() {
        let mut line = vec![dist.name().to_string()];
        for scheme in Scheme::all() {
            let c = gather
                .iter()
                .find(|c| c.distribution == dist && c.scheme == scheme)
                .expect("cell exists");
            line.push(format!(
                "{} ({} cy)",
                fmt2(c.read_congestion.mean()),
                fmt2(c.cycles.mean())
            ));
        }
        t.row(line);
    }
    println!("{}", t.render());
    println!(
        "RAP caps every distribution at balls-into-bins scale — including the\n\
         column gather that serializes RAW {w}x — with no knowledge of idx.\n"
    );

    println!("Large-matrix transpose (tile pipeline: coalesced global I/O + shared transpose,");
    println!("global latency 400 cycles):");
    let sizes = [w, 2 * w, 4 * w];
    let big = apps::run_big_transpose_sweep(w, &sizes, latency, 400, instances.min(8), seed);
    let mut t = TextTable::new([
        "N",
        "RAW cycles",
        "RAS cycles",
        "RAP cycles",
        "speedup RAW/RAP",
    ]);
    for &n in &sizes {
        let get = |s: Scheme| {
            big.iter()
                .find(|c| c.n == n && c.scheme == s)
                .expect("cell exists")
                .total_cycles
                .mean()
        };
        t.row([
            n.to_string(),
            fmt2(get(Scheme::Raw)),
            fmt2(get(Scheme::Ras)),
            fmt2(get(Scheme::Rap)),
            format!("{:.2}x", get(Scheme::Raw) / get(Scheme::Rap)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Even with realistic global-memory latency diluting the shared phase,\n\
         the RAP pipeline keeps a material end-to-end advantage.\n"
    );

    let record = apps::to_record(w, latency, seed, &matmul, &gather);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
