//! Experiment SERVE_CHAOS: soak the `rap-serve` query service with
//! concurrent clients while panic/ENOSPC/delay faults fire inside its
//! handlers, and write `results/serve_chaos.json`. Exits non-zero if the
//! service crashes, loses a request, or the breaker fails to trip and
//! recover — so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin serve_chaos --release \
//!     [--seed 2014] [--requests 1000] [--clients 8]`

use rap_bench::experiments::serve_chaos;
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("serve_chaos: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let seed = args.get_u64("seed", 2014);
    let requests = args.get_u64("requests", 1000);
    let clients = args.get_u64("clients", 8);

    println!(
        "SERVE_CHAOS — {requests}-request soak over {clients} clients with injected \
         handler faults (seed {seed})\n"
    );

    // Injected panics are expected and caught by the worker isolation; a
    // default panic hook would spray backtraces over the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = serve_chaos::run_caught(seed, requests, clients);
    std::panic::set_hook(prev_hook);

    for check in &report.checks {
        println!(
            "  {} {:32} {}",
            if check.passed { "PASS" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    println!(
        "\n{}/{} checks passed ({} fault(s) injected, {} breaker trip(s))",
        report.checks.iter().filter(|c| c.passed).count(),
        report.checks.len(),
        report.injected_faults,
        report.breaker_trips
    );

    let path = output::results_dir().join("serve_chaos.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !report.passed {
        return Err("serve chaos soak FAILED".into());
    }
    Ok(())
}
