//! Experiment A1: adversarial congestion vs Theorem 2's bound.
//!
//! Usage: `cargo run -p rap-bench --bin malicious_bound --release
//! [--trials 400] [--seed 2014]`

use rap_bench::experiments::malicious;
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("malicious_bound: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let trials = args.get_u64("trials", 400);
    let seed = args.get_u64("seed", 2014);
    let widths = [16usize, 32, 64, 128, 256];

    println!("A1 — malicious access vs the RAP guarantee (trials={trials}, seed={seed})");
    println!("anti-RAW = all threads aim at one RAW bank (a column access)\n");

    let rows = malicious::run(&widths, trials, seed);
    let mut t = TextTable::new([
        "w",
        "anti-RAW vs RAW",
        "anti-RAW vs RAS",
        "anti-RAW vs RAP",
        "blind diag vs RAP",
        "σ-aware vs RAP",
        "Theorem 2 bound",
    ]);
    for r in &rows {
        t.row([
            r.w.to_string(),
            fmt2(r.anti_raw_vs_raw),
            fmt2(r.anti_raw_vs_ras.mean()),
            fmt2(r.anti_raw_vs_rap),
            fmt2(r.blind_vs_rap.mean()),
            fmt2(r.aware_vs_rap),
            fmt2(r.theorem2_bound),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: RAP collapses the same-bank attack to 1; the best blind attack \
         stays at balls-into-bins scale, far below Theorem 2's bound; only an \
         adversary who knows σ recovers the full-w worst case.\n"
    );

    let record = malicious::to_record(trials, seed, &rows);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
