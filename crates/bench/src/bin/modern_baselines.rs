//! Experiment A7: RAP vs the modern deterministic layouts (XOR swizzle,
//! +1 padding) — an extension beyond the paper situating RAP against
//! today's standard practice.
//!
//! Usage: `cargo run -p rap-bench --bin modern_baselines --release
//! [--width 32] [--trials 500] [--seed 2014]`

use rap_bench::experiments::modern;
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_core::Scheme;

fn main() {
    if let Err(err) = run() {
        eprintln!("modern_baselines: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("width", 32);
    let trials = args.get_u64("trials", 500);
    let seed = args.get_u64("seed", 2014);

    println!("A7 — RAP vs modern deterministic baselines (w={w}, {trials} trials)\n");

    let cells = modern::run(w, trials, seed);
    let rows = [
        "Contiguous congestion",
        "Stride congestion",
        "Diagonal congestion",
        "Random congestion",
        "blind adversary congestion",
        "CRSW transpose cycles",
        "storage overhead words",
        "stored random values",
    ];
    let mut header = vec!["metric".to_string()];
    header.extend(Scheme::extended().iter().map(|s| s.name().to_string()));
    let mut t = TextTable::new(header);
    for row in rows {
        let mut line = vec![row.to_string()];
        for scheme in Scheme::extended() {
            let c = cells
                .iter()
                .find(|c| c.row == row && c.scheme == scheme)
                .expect("cell exists");
            line.push(fmt2(c.stats.mean()));
        }
        t.row(line);
    }
    println!("{}", t.render());
    println!(
        "Reading: on the paper's fixed patterns, XOR swizzling and padding match\n\
         RAP for free — which is why they are today's default. The 'blind\n\
         adversary' row is RAP's surviving advantage: deterministic layouts are\n\
         public, so a worst-case (or unlucky data-dependent) pattern serializes\n\
         them completely, while RAP's secret σ caps the expectation at\n\
         balls-into-bins scale for every input. Padding also pays w-1 words of\n\
         shared memory per matrix.\n"
    );

    let record = modern::to_record(w, trials, seed, &cells);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
