//! Reproduce Table IV: congestion of 4-D array access under the RAP
//! extensions, plus the stored-random-number accounting.
//!
//! Usage: `cargo run -p rap-bench --bin table4 --release [--width 32]
//! [--trials 300] [--seed 2014] [--checkpoint <path>|off] [--budget-ms N]
//! [--block-cap N] [--retries N]`
//!
//! Completed Monte-Carlo blocks are checkpointed to a ledger (default
//! `results/checkpoints/t4.ledger`), so a killed run resumes where it
//! stopped and still produces byte-identical final JSON.

use rap_access::resilient::ResilientConfig;
use rap_bench::experiments::table4::{self, class_reference, Table4Config};
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs, ResilienceArgs};
use rap_core::multidim::Scheme4d;

fn main() {
    if let Err(err) = run() {
        eprintln!("table4: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let cfg = Table4Config {
        width: args.get_usize("width", 32),
        trials: args.get_u64("trials", 300),
        warps_per_trial: 8,
        seed: args.get_u64("seed", 2014),
    };

    println!(
        "Table IV — congestion for an array of size w⁴ (w={}, {} instances × {} warps)\n",
        cfg.width, cfg.trials, cfg.warps_per_trial
    );

    let rargs = ResilienceArgs::from_cli(&args, "t4.ledger");
    let ledger = rargs
        .open_ledger(cfg.fingerprint())
        .map_err(|e| format!("opening checkpoint ledger: {e}"))?;
    if ledger.resumed_entries() > 0 {
        println!(
            "resuming: {} completed block(s) recovered from the checkpoint ledger\n",
            ledger.resumed_entries()
        );
    }
    let rcfg = ResilientConfig {
        ledger: &ledger,
        budget: rargs.budget,
        retry: rargs.retry,
    };
    let (cells, report) = table4::run_resilient(&cfg, &rcfg);

    let mut header = vec!["Access".to_string()];
    header.extend(Scheme4d::all().iter().map(|s| s.name().to_string()));
    let mut t = TextTable::new(header);
    for pattern in rap_access::Pattern4d::table4() {
        let mut line = vec![pattern.name().to_string()];
        for scheme in Scheme4d::all() {
            let c = cells
                .iter()
                .find(|c| c.pattern == pattern && c.scheme == scheme)
                .expect("cell exists");
            line.push(format!(
                "{} [{}≈{}]",
                fmt2(c.stats.mean()),
                c.class.symbol(),
                fmt2(class_reference(c.class, cfg.width))
            ));
        }
        t.row(line);
    }
    // The paper's final row: stored random numbers.
    let mut line = vec!["Random numbers".to_string()];
    for scheme in Scheme4d::all() {
        line.push(scheme.random_number_count(cfg.width).to_string());
    }
    t.row(line);
    println!("{}", t.render());
    println!("[class ≈ numeric reference]: 1/w exact; Θ cells use the exact balls-into-bins expectation\n");

    let mut record = table4::to_record(&cfg, &cells);
    rap_bench::annotate_record(&mut record, &report);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if report.degraded() {
        eprintln!(
            "table4: run degraded ({} failed, {} budget-skipped blocks); \
             keeping the checkpoint ledger so a rerun can finish the sweep",
            report.failed,
            report.skipped_wall + report.skipped_cap
        );
    } else {
        ledger
            .remove_file()
            .map_err(|e| format!("removing completed checkpoint ledger: {e}"))?;
    }
    Ok(())
}
