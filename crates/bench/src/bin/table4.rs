//! Reproduce Table IV: congestion of 4-D array access under the RAP
//! extensions, plus the stored-random-number accounting.
//!
//! Usage: `cargo run -p rap-bench --bin table4 --release [--width 32]
//! [--trials 300] [--seed 2014]`

use rap_bench::experiments::table4::{self, class_reference, Table4Config};
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};
use rap_core::multidim::Scheme4d;

fn main() {
    let args = CliArgs::from_env();
    let cfg = Table4Config {
        width: args.get_usize("width", 32),
        trials: args.get_u64("trials", 300),
        warps_per_trial: 8,
        seed: args.get_u64("seed", 2014),
    };

    println!(
        "Table IV — congestion for an array of size w⁴ (w={}, {} instances × {} warps)\n",
        cfg.width, cfg.trials, cfg.warps_per_trial
    );

    let cells = table4::run(&cfg);

    let mut header = vec!["Access".to_string()];
    header.extend(Scheme4d::all().iter().map(|s| s.name().to_string()));
    let mut t = TextTable::new(header);
    for pattern in rap_access::Pattern4d::table4() {
        let mut line = vec![pattern.name().to_string()];
        for scheme in Scheme4d::all() {
            let c = cells
                .iter()
                .find(|c| c.pattern == pattern && c.scheme == scheme)
                .expect("cell exists");
            line.push(format!(
                "{} [{}≈{}]",
                fmt2(c.stats.mean()),
                c.class.symbol(),
                fmt2(class_reference(c.class, cfg.width))
            ));
        }
        t.row(line);
    }
    // The paper's final row: stored random numbers.
    let mut line = vec!["Random numbers".to_string()];
    for scheme in Scheme4d::all() {
        line.push(scheme.random_number_count(cfg.width).to_string());
    }
    t.row(line);
    println!("{}", t.render());
    println!("[class ≈ numeric reference]: 1/w exact; Θ cells use the exact balls-into-bins expectation\n");

    let record = table4::to_record(&cfg, &cells);
    match output::write_record(&output::default_root(), &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
