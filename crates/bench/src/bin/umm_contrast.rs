//! Experiment A6: DMM vs UMM — bank conflicts vs coalescing.
//!
//! Usage: `cargo run -p rap-bench --bin umm_contrast --release
//! [--width 32] [--latency 8]`

use rap_bench::experiments::umm;
use rap_bench::table::TextTable;
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("umm_contrast: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("width", 32);
    let latency = args.get_u64("latency", 8);

    println!("A6 — the same RAW kernels on the DMM (shared memory) and the UMM (global memory)");
    println!(
        "DMM cost = bank conflicts; UMM cost = distinct rows (coalescing). w={w}, l={latency}\n"
    );

    let rows = umm::run(w, latency);
    let mut t = TextTable::new(["Workload", "DMM cycles", "UMM cycles"]);
    for r in &rows {
        t.row([r.label.clone(), r.dmm.to_string(), r.umm.to_string()]);
    }
    println!("{}", t.render());
    println!(
        "Diagonal access splits the models: conflict-free on the DMM, fully\n\
         serialized on the UMM — which is why DRDW, the hand-tuned shared-memory\n\
         transpose, must not be used on global memory, and why the paper studies\n\
         the two models separately.\n"
    );

    let record = umm::to_record(w, latency, &rows);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
