//! Reproduce Table I: congestion classes of RAW / RAS / RAP, with an
//! empirical spot-check.
//!
//! Usage: `cargo run -p rap-bench --bin table1 --release [--width 32]
//! [--trials 200] [--seed 2014]`

use rap_bench::experiments::table1;
use rap_bench::table::{fmt2, TextTable};
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("table1: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let _failpoints = rap_bench::failpoints_from_env()?;
    let w = args.get_usize("width", 32);
    let trials = args.get_u64("trials", 200);
    let seed = args.get_u64("seed", 2014);

    println!("Table I — congestion classes of the RAW, RAS and RAP implementations");
    println!("(empirical check at w={w}, {trials} trials, seed {seed})\n");

    let cells = table1::run(w, trials, seed);
    let mut t = TextTable::new(["Access", "RAW", "RAS", "RAP"]);
    for row in ["Any", "Contiguous", "Stride"] {
        let mut line = vec![row.to_string()];
        for scheme in rap_core::Scheme::all() {
            let c = cells
                .iter()
                .find(|c| c.row == row && c.scheme == scheme)
                .expect("cell exists");
            line.push(format!("{} (≈{})", c.class.symbol(), fmt2(c.measured)));
        }
        t.row(line);
    }
    println!("{}", t.render());

    let record = table1::to_record(w, trials, seed, &cells);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
