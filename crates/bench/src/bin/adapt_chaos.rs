//! Experiment ADAPT_CHAOS: soak the self-healing adaptive remapping
//! layer — traffic-shift swaps, epoch fault storms, kills mid-migration
//! — and write `results/adapt_chaos.json`. Exits non-zero if the swap
//! never happens, measured congestion fails to drop below the old
//! certified bound, a request is lost, or a post-kill resume changes a
//! byte — so CI can gate on it.
//!
//! Usage: `cargo run -p rap-bench --bin adapt_chaos --release \
//!     [--seed 2014] [--width 16] [--requests 192] \
//!     [--server-bin target/release/rap]`
//!
//! With `--server-bin` the servers are real `rap serve --adapt`
//! processes on real sockets and the mid-migration kill is a genuine
//! SIGKILL; without it the same wire protocol runs against in-process
//! servers. The epoch fault storm always runs in-process (failpoint
//! registries do not cross process boundaries).

use rap_bench::experiments::adapt_chaos::{self, AdaptChaosConfig};
use rap_bench::{output, CliArgs};

fn main() {
    if let Err(err) = run() {
        eprintln!("adapt_chaos: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::from_env();
    let cfg = AdaptChaosConfig {
        seed: args.get_u64("seed", 2014),
        width: args.get_usize("width", 16),
        requests: args.get_u64("requests", 192),
        server_bin: args.get("server-bin").map(std::path::PathBuf::from),
    };

    println!(
        "ADAPT_CHAOS — adaptive remapping soak at w={} over {} servers \
         (seed {}, {} requests per phase)\n",
        cfg.width,
        if cfg.server_bin.is_some() {
            "process"
        } else {
            "in-process"
        },
        cfg.seed,
        cfg.requests,
    );

    // Injected epoch-site panics are expected and isolated by the
    // server's workers — keep the report readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = adapt_chaos::run_caught(&cfg);
    std::panic::set_hook(prev_hook);

    for check in &report.checks {
        println!(
            "  {} {:44} {}",
            if check.passed { "PASS" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    println!(
        "\n{}/{} checks passed ({} requests driven, {} swap(s) committed, \
         {} fault(s) survived)",
        report.checks.iter().filter(|c| c.passed).count(),
        report.checks.len(),
        report.requests_driven,
        report.swaps_observed,
        report.faults_survived,
    );

    let path = output::results_dir().join("adapt_chaos.json");
    rap_resilience::write_json_atomic(&path, &report)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());

    if !report.passed {
        return Err("adapt chaos soak FAILED".into());
    }
    Ok(())
}
