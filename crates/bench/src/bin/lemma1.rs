//! Experiment A2: Lemma 1 — DMM cycle counts of the transpose algorithms
//! vs the closed forms.
//!
//! Usage: `cargo run -p rap-bench --bin lemma1 --release`

use rap_bench::experiments::lemma1;
use rap_bench::output;
use rap_bench::table::TextTable;

fn main() {
    if let Err(err) = run() {
        eprintln!("lemma1: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!("A2 — Lemma 1: DMM cycles of CRSW/SRCW/DRDW under RAW\n");
    let _failpoints = rap_bench::failpoints_from_env()?;
    let rows = lemma1::run(&[4, 8, 16, 32, 64], &[1, 2, 4, 8, 16, 32, 64]);

    let mut t = TextTable::new([
        "w",
        "l",
        "CRSW",
        "SRCW",
        "DRDW",
        "w²+w+l-1",
        "2w+l-1",
        "match",
    ]);
    for r in &rows {
        let ok = r.crsw == r.crsw_formula && r.srcw == r.crsw_formula && r.drdw == r.drdw_formula;
        t.row([
            r.w.to_string(),
            r.l.to_string(),
            r.crsw.to_string(),
            r.srcw.to_string(),
            r.drdw.to_string(),
            r.crsw_formula.to_string(),
            r.drdw_formula.to_string(),
            if ok { "exact" } else { "MISMATCH" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Lemma 1: CRSW/SRCW are Θ(w²+l), DRDW is Θ(w+l); the simulator \
         matches the closed forms cycle-exactly.\n"
    );

    let record = lemma1::to_record(&rows);
    let path = output::write_record_to(&output::results_dir(), &record)
        .map_err(|e| format!("writing results: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
