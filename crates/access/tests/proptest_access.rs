//! Property tests for the access-pattern generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rap_access::array4d::{self, Pattern4d};
use rap_access::matrix::{self, MatrixPattern};
use rap_core::multidim::{Mapping4d, Scheme4d};
use rap_core::{RowShift, Scheme};

fn scheme4d_strategy() -> impl Strategy<Value = Scheme4d> {
    prop_oneof![
        Just(Scheme4d::Raw),
        Just(Scheme4d::Ras),
        Just(Scheme4d::OneP),
        Just(Scheme4d::R1P),
        Just(Scheme4d::ThreeP),
        Just(Scheme4d::WSquaredP),
        Just(Scheme4d::OnePlusWSquaredR),
    ]
}

proptest! {
    /// The deterministic matrix patterns partition the matrix: every
    /// element exactly once, for any width.
    #[test]
    fn deterministic_patterns_partition(seed in any::<u64>(), w in 1usize..48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for pattern in [MatrixPattern::Contiguous, MatrixPattern::Stride, MatrixPattern::Diagonal] {
            let op = matrix::generate(pattern, w, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for warp in &op {
                prop_assert_eq!(warp.len(), w);
                for &c in warp {
                    prop_assert!(seen.insert(c), "{} duplicated {:?}", pattern, c);
                }
            }
            prop_assert_eq!(seen.len(), w * w);
        }
    }

    /// Under any mapping, contiguous access is conflict-free for every
    /// warp (the row-rotation property).
    #[test]
    fn contiguous_always_one(seed in any::<u64>(), w in 1usize..40, scheme_idx in 0usize..3) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::of_scheme(Scheme::all()[scheme_idx], &mut rng, w);
        for warp in matrix::generate(MatrixPattern::Contiguous, w, &mut rng) {
            prop_assert_eq!(matrix::warp_congestion(&mapping, &warp), 1);
        }
    }

    /// The scheme-aware adversary achieves full congestion against the
    /// exact instance it inspected — for every scheme, width, and bank.
    #[test]
    fn adversary_always_wins_known_instance(
        seed in any::<u64>(), w in 1usize..40, scheme_idx in 0usize..3, bank_sel in any::<u32>()
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::of_scheme(Scheme::all()[scheme_idx], &mut rng, w);
        let bank = bank_sel % w as u32;
        let warp = matrix::adversarial_warp(&mapping, bank);
        prop_assert_eq!(matrix::warp_congestion(&mapping, &warp), w as u32);
        // and indeed every request is in the chosen bank
        for a in matrix::warp_addresses(&mapping, &warp) {
            prop_assert_eq!((a % w as u64) as u32, bank);
        }
    }

    /// 4-D warps always have w in-range coordinates and the malicious
    /// generator produces distinct addresses (no accidental CRCW merge).
    #[test]
    fn warp4d_well_formed(
        seed in any::<u64>(), w in 3usize..20, scheme in scheme4d_strategy(),
        pattern_idx in 0usize..6,
    ) {
        let pattern = Pattern4d::table4()[pattern_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let warp = array4d::generate_warp(pattern, scheme, w, &mut rng);
        prop_assert_eq!(warp.len(), w);
        prop_assert!(warp.iter().all(|c| c.iter().all(|&d| (d as usize) < w)));
        if pattern == Pattern4d::Malicious {
            let mapping = Mapping4d::new(scheme, &mut rng, w).unwrap();
            let addrs = array4d::warp_addresses(&mapping, &warp);
            let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
            prop_assert_eq!(set.len(), addrs.len(), "malicious warps must not merge");
        }
    }

    /// Stride1 is conflict-free under every permutation-based 4-D scheme,
    /// for arbitrary fixed coordinates.
    #[test]
    fn stride1_conflict_free_prop(seed in any::<u64>(), w in 2usize..24) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for scheme in [Scheme4d::OneP, Scheme4d::R1P, Scheme4d::ThreeP,
                       Scheme4d::WSquaredP, Scheme4d::OnePlusWSquaredR] {
            let mapping = Mapping4d::new(scheme, &mut rng, w).unwrap();
            let warp = array4d::generate_warp(Pattern4d::Stride1, scheme, w, &mut rng);
            prop_assert_eq!(array4d::warp_congestion(&mapping, &warp), 1, "{}", scheme);
        }
    }

    /// The R1P grouping attack collides every complete group of 6 for any
    /// width and instance.
    #[test]
    fn r1p_groups_always_collide(seed in any::<u64>(), w in 6usize..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = Mapping4d::new(Scheme4d::R1P, &mut rng, w).unwrap();
        let warp = array4d::permutation_group_warp(w, &mut rng);
        for group in warp.chunks(6).filter(|g| g.len() == 6) {
            let banks: std::collections::HashSet<u32> = group
                .iter()
                .map(|&[d3, d2, d1, d0]| mapping.bank(d3, d2, d1, d0))
                .collect();
            prop_assert_eq!(banks.len(), 1);
        }
    }

    /// The scratch-reusing per-warp generator consumes the RNG stream
    /// exactly like the allocating `generate`, so warp `k` of either path
    /// is identical — for every pattern, width, and seed.
    #[test]
    fn warp_into_matches_generate(seed in any::<u64>(), w in 1usize..40, pattern_idx in 0usize..5) {
        let pattern = [
            MatrixPattern::Contiguous,
            MatrixPattern::Stride,
            MatrixPattern::Diagonal,
            MatrixPattern::Random,
            MatrixPattern::Broadcast,
        ][pattern_idx];
        let op = matrix::generate(pattern, w, &mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut buf = Vec::new();
        for (k, warp) in op.iter().enumerate() {
            matrix::generate_warp_into(pattern, w, k as u32, &mut rng, &mut buf);
            prop_assert_eq!(&buf, warp, "{} w={} warp {}", pattern, w, k);
        }
    }

    /// The scratch congestion path agrees with the allocating path for
    /// arbitrary warps and mappings (matrix and 4-D).
    #[test]
    fn scratch_congestion_matches_alloc(
        seed in any::<u64>(), w in 1usize..40, scheme_idx in 0usize..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::of_scheme(Scheme::all()[scheme_idx], &mut rng, w);
        let mut scratch = rap_access::AccessScratch::new();
        for pattern in [MatrixPattern::Stride, MatrixPattern::Diagonal, MatrixPattern::Random] {
            for warp in matrix::generate(pattern, w, &mut rng) {
                prop_assert_eq!(
                    matrix::warp_congestion_with(&mapping, &warp, &mut scratch),
                    matrix::warp_congestion(&mapping, &warp)
                );
            }
        }
    }

    /// The parallel Monte-Carlo engine is invariant to the worker count:
    /// 1 thread and N threads produce bit-identical statistics for any
    /// seed, width, trial count, and pool size.
    #[test]
    fn engine_thread_count_invariant(
        seed in any::<u64>(), w in 1usize..12, trials in 1u64..80, threads in 2usize..6,
    ) {
        use rap_access::montecarlo::matrix_congestion;
        use rap_stats::SeedDomain;
        let d = SeedDomain::new(seed);
        let run = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
                .install(|| matrix_congestion(Scheme::Ras, MatrixPattern::Random, w, trials, &d))
        };
        let single = run(1);
        prop_assert_eq!(run(threads), single);
    }
}
