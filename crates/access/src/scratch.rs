//! Reusable per-worker buffers for warp-granular congestion evaluation.
//!
//! The Monte-Carlo estimators evaluate millions of warps; allocating a
//! coordinate list, an address list, and the congestion kernel's buffers
//! for each one dominates the profile. One [`AccessScratch`] per worker
//! (or per serial loop) reduces that to a handful of high-water-mark
//! allocations for a whole sweep.

use rap_core::congestion::CongestionScratch;
use rap_core::mapping::ComposedRowShift;
use rap_core::RowShift;

/// Caller-owned buffers threaded through the `*_into` / `*_with` variants
/// in [`crate::matrix`] and [`crate::array4d`], plus the composed
/// permute-shift lookup table of the fused fast path.
#[derive(Debug, Clone, Default)]
pub struct AccessScratch {
    /// Physical address buffer (one entry per thread of the current warp).
    pub(crate) addrs: Vec<u64>,
    /// Congestion kernel heap buffers (used only on the `width > 128`
    /// fallback; the fast paths live on the stack).
    pub(crate) congestion: CongestionScratch,
    /// The composed σ+shift lookup table of the current trial's mapping
    /// (`w ≤ 64`); the allocation persists across trials.
    pub(crate) composed: ComposedRowShift,
}

impl AccessScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compose `mapping`'s permutation + row shifts into the cached
    /// lookup table, making [`crate::matrix::warp_congestion_fused`]
    /// serve this mapping. Returns `false` (table unusable, callers take
    /// the unfused path) when `mapping.width() > 64`.
    pub fn compose(&mut self, mapping: &RowShift) -> bool {
        self.composed.compose(mapping)
    }
}
