//! Reusable per-worker buffers for warp-granular congestion evaluation.
//!
//! The Monte-Carlo estimators evaluate millions of warps; allocating a
//! coordinate list, an address list, and the congestion kernel's buffers
//! for each one dominates the profile. One [`AccessScratch`] per worker
//! (or per serial loop) reduces that to a handful of high-water-mark
//! allocations for a whole sweep.

use rap_core::congestion::CongestionScratch;

/// Caller-owned buffers threaded through the `*_into` / `*_with` variants
/// in [`crate::matrix`] and [`crate::array4d`].
#[derive(Debug, Clone, Default)]
pub struct AccessScratch {
    /// Physical address buffer (one entry per thread of the current warp).
    pub(crate) addrs: Vec<u64>,
    /// Congestion kernel buffers (unused on the `width ≤ 128` fast path).
    pub(crate) congestion: CongestionScratch,
}

impl AccessScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}
