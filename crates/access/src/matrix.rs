//! Warp access patterns for a `w × w` matrix (paper §III and §V).
//!
//! An *access operation* assigns one matrix element to each of `w²`
//! threads; the threads are partitioned into `w` warps of `w`. This module
//! generates the logical coordinates per warp for the patterns the paper
//! simulates in Table II — contiguous, stride, diagonal, random — plus the
//! broadcast and adversarial patterns discussed in §I/§II.

use crate::scratch::AccessScratch;
use rand::Rng;
use rap_core::mapping::MatrixMapping;
use rap_core::{CompactCongestion, RowShift};
use serde::{Deserialize, Serialize};

/// Logical matrix coordinate `(row i, column j)`.
pub type Coord = (u32, u32);

/// The access pattern kinds evaluated in Table II (plus extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixPattern {
    /// Row-major: warp `r` accesses row `r` (`A[r][0..w]`).
    Contiguous,
    /// Column-major: warp `c` accesses column `c` (`A[0..w][c]`).
    Stride,
    /// Diagonal: thread `j` of warp `d` accesses `A[j][(j + d) mod w]`.
    Diagonal,
    /// Uniformly random elements (fresh per call).
    Random,
    /// Every thread of every warp reads `A[0][0]` (tests CRCW merging).
    Broadcast,
}

impl MatrixPattern {
    /// All Table II patterns in row order.
    #[must_use]
    pub fn table2() -> [MatrixPattern; 4] {
        [
            MatrixPattern::Contiguous,
            MatrixPattern::Stride,
            MatrixPattern::Diagonal,
            MatrixPattern::Random,
        ]
    }

    /// Display name matching the paper's row labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MatrixPattern::Contiguous => "Contiguous",
            MatrixPattern::Stride => "Stride",
            MatrixPattern::Diagonal => "Diagonal",
            MatrixPattern::Random => "Random",
            MatrixPattern::Broadcast => "Broadcast",
        }
    }
}

impl std::fmt::Display for MatrixPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate the full access operation for `pattern` on a `w × w` matrix:
/// one coordinate list per warp, `w` warps of `w` threads.
///
/// Deterministic patterns ignore `rng`; [`MatrixPattern::Random`] draws
/// fresh coordinates from it.
///
/// # Panics
/// Panics if `w == 0`.
#[must_use]
pub fn generate<R: Rng + ?Sized>(pattern: MatrixPattern, w: usize, rng: &mut R) -> Vec<Vec<Coord>> {
    assert!(w > 0, "matrix width must be positive");
    let wu = w as u32;
    match pattern {
        MatrixPattern::Contiguous => (0..wu).map(|r| (0..wu).map(|j| (r, j)).collect()).collect(),
        MatrixPattern::Stride => (0..wu).map(|c| (0..wu).map(|i| (i, c)).collect()).collect(),
        MatrixPattern::Diagonal => (0..wu)
            .map(|d| (0..wu).map(|j| (j, (j + d) % wu)).collect())
            .collect(),
        MatrixPattern::Random => (0..wu)
            .map(|_| (0..wu).map(|_| random_pair(rng, wu)).collect())
            .collect(),
        MatrixPattern::Broadcast => (0..wu).map(|_| vec![(0, 0); w]).collect(),
    }
}

/// Fill `out` with warp `warp`'s coordinates — the scratch-reusing
/// counterpart of one row of [`generate`].
///
/// Calling this for `warp = 0..w` in order with the same `rng` consumes
/// the random stream exactly like one [`generate`] call, so per-warp
/// results are identical to indexing `generate(..)[warp]` — only without
/// the `Vec<Vec<Coord>>` per trial.
///
/// # Panics
/// Panics if `w == 0` or `warp ≥ w`.
pub fn generate_warp_into<R: Rng + ?Sized>(
    pattern: MatrixPattern,
    w: usize,
    warp: u32,
    rng: &mut R,
    out: &mut Vec<Coord>,
) {
    assert!(w > 0, "matrix width must be positive");
    let wu = w as u32;
    assert!(warp < wu, "warp {warp} out of range for width {w}");
    out.clear();
    match pattern {
        MatrixPattern::Contiguous => out.extend((0..wu).map(|j| (warp, j))),
        MatrixPattern::Stride => out.extend((0..wu).map(|i| (i, warp))),
        MatrixPattern::Diagonal => out.extend((0..wu).map(|j| (j, (j + warp) % wu))),
        MatrixPattern::Random => {
            out.extend((0..wu).map(|_| random_pair(rng, wu)));
        }
        MatrixPattern::Broadcast => out.extend(std::iter::repeat_n((0, 0), w)),
    }
}

/// Draw a uniform coordinate pair `(i, j)` in `[0, w)²` from (typically)
/// one 64-bit word: each half is an exact 32-bit Lemire sample, and a
/// half redraws from a fresh word only with probability `w / 2³²`.
/// Exactly uniform, at half the generator traffic of two `gen_range`
/// calls — the random pattern's inner loop draws millions of pairs.
#[inline]
fn random_pair<R: Rng + ?Sized>(rng: &mut R, w: u32) -> (u32, u32) {
    let v: u64 = rng.gen();
    (
        lemire_half(rng, (v >> 32) as u32, w),
        lemire_half(rng, v as u32, w),
    )
}

/// Exact Lemire sample of `[0, w)` seeded from the 32-bit word `x`,
/// redrawing from `rng` only when `x` falls in the biased zone
/// (probability `< w / 2³²`, so the division and the loop are
/// effectively never executed).
#[inline]
fn lemire_half<R: Rng + ?Sized>(rng: &mut R, x: u32, w: u32) -> u32 {
    let mut m = u64::from(x) * u64::from(w);
    if (m as u32) < w {
        let t = w.wrapping_neg() % w;
        while (m as u32) < t {
            m = u64::from(rng.gen::<u32>()) * u64::from(w);
        }
    }
    (m >> 32) as u32
}

/// The scheme-aware adversary: given full knowledge of the mapping,
/// construct one warp access in which every thread hits bank `bank`
/// with a distinct address (congestion exactly `w`).
///
/// For RAW this is simply a column access; for RAS/RAP it inverts the
/// row shifts (`j = (bank − shift_i) mod w`). Its existence shows that the
/// RAP guarantee is probabilistic over `σ` — an adversary who *knows* `σ`
/// defeats it, which is why the permutation must be chosen at run time
/// (paper §IV chooses σ uniformly at random).
///
/// # Panics
/// Panics if `bank ≥ w`.
#[must_use]
pub fn adversarial_warp(mapping: &RowShift, bank: u32) -> Vec<Coord> {
    let w = mapping.width() as u32;
    assert!(bank < w, "bank {bank} out of range for width {w}");
    (0..w)
        .map(|i| {
            let j = (bank + w - mapping.shift_of_row(i) % w) % w;
            (i, j)
        })
        .collect()
}

/// Map one warp's logical coordinates to physical flat addresses under
/// `mapping`.
#[must_use]
pub fn warp_addresses(mapping: &dyn MatrixMapping, warp: &[Coord]) -> Vec<u64> {
    warp.iter()
        .map(|&(i, j)| u64::from(mapping.address(i, j)))
        .collect()
}

/// Congestion of one warp's access under `mapping`.
#[must_use]
pub fn warp_congestion(mapping: &dyn MatrixMapping, warp: &[Coord]) -> u32 {
    rap_core::congestion::congestion(mapping.width(), &warp_addresses(mapping, warp))
}

/// Fill `out` with the physical addresses of one warp — the
/// scratch-reusing counterpart of [`warp_addresses`].
pub fn warp_addresses_into(mapping: &dyn MatrixMapping, warp: &[Coord], out: &mut Vec<u64>) {
    out.clear();
    out.extend(warp.iter().map(|&(i, j)| u64::from(mapping.address(i, j))));
}

/// Congestion of one warp's access, reusing `scratch`'s buffers — the
/// allocation-free counterpart of [`warp_congestion`].
#[must_use]
pub fn warp_congestion_with(
    mapping: &dyn MatrixMapping,
    warp: &[Coord],
    scratch: &mut AccessScratch,
) -> u32 {
    let mut addrs = std::mem::take(&mut scratch.addrs);
    warp_addresses_into(mapping, warp, &mut addrs);
    let result = scratch.congestion.congestion(mapping.width(), &addrs);
    scratch.addrs = addrs;
    result
}

/// Congestion of one warp of `pattern`, fused end to end: coordinates are
/// generated inline, the permute-shift mapping is a single byte read from
/// the table composed into `scratch` (see [`AccessScratch::compose`]),
/// and dedup + counting collapse into the bit-parallel
/// [`CompactCongestion`] kernel — lane `(i, j)` lands in bank
/// `rot_i(j)` at address `i·w + rot_i(j)`, so within one bank the row
/// index `i` identifies the address and one `OR` per lane suffices. No
/// coordinate or address buffer is materialized and no per-lane division
/// runs.
///
/// Consumes the random stream **exactly** like
/// [`generate_warp_into`] for `warp = 0..w` in order (only
/// [`MatrixPattern::Random`] draws: one `random_pair` per lane), so
/// results are bit-identical to the unfused
/// `generate_warp_into` + [`warp_congestion_with`] pipeline — the engine
/// tests and the `congestion:fused-vs-unfused` conformance oracle pin
/// this.
///
/// # Panics
/// Panics if `w == 0`, `warp ≥ w`, or the table in `scratch` was not
/// composed for a width-`w` mapping.
#[inline]
#[must_use]
pub fn warp_congestion_fused<R: Rng + ?Sized>(
    pattern: MatrixPattern,
    w: usize,
    warp: u32,
    rng: &mut R,
    scratch: &mut AccessScratch,
) -> u32 {
    assert!(w > 0, "matrix width must be positive");
    let wu = w as u32;
    assert!(warp < wu, "warp {warp} out of range for width {w}");
    let composed = &scratch.composed;
    assert_eq!(
        composed.width(),
        wu,
        "scratch table composed for a different width"
    );
    let mut cc = CompactCongestion::new(w);
    match pattern {
        MatrixPattern::Contiguous => {
            let base = warp * wu;
            for j in 0..wu {
                cc.lane(warp, composed.bank_of_index(base + j));
            }
        }
        MatrixPattern::Stride => {
            for i in 0..wu {
                cc.lane(i, composed.bank_of_index(i * wu + warp));
            }
        }
        MatrixPattern::Diagonal => {
            for j in 0..wu {
                // (j + warp) mod w via conditional subtract: both < w.
                let mut c = j + warp;
                c -= wu * u32::from(c >= wu);
                cc.lane(j, composed.bank_of_index(j * wu + c));
            }
        }
        MatrixPattern::Random => {
            for _ in 0..wu {
                let (i, j) = random_pair(rng, wu);
                cc.lane(i, composed.bank_of_index(i * wu + j));
            }
        }
        MatrixPattern::Broadcast => {
            for _ in 0..wu {
                cc.lane(0, composed.bank_of_index(0));
            }
        }
    }
    cc.finish()
}

/// Evaluate **every** warp of one trial of `pattern` through the fused
/// path, feeding each warp's congestion to `sink` in warp order.
///
/// Semantically identical to calling [`warp_congestion_fused`] for
/// `warp = 0..w` in order (same results, same RNG consumption — the
/// fused-vs-unfused tests cover this entry point too), but the pattern
/// dispatch happens once per trial instead of once per warp, so the
/// compiler specializes the whole warp loop for each pattern. On the
/// Monte-Carlo hot path that specialization is worth more than a third
/// of the total runtime.
///
/// # Panics
/// Panics if `w == 0` or the table in `scratch` was not composed for a
/// width-`w` mapping.
pub fn trial_congestions_fused<R: Rng + ?Sized>(
    pattern: MatrixPattern,
    w: usize,
    rng: &mut R,
    scratch: &mut AccessScratch,
    mut sink: impl FnMut(u32),
) {
    assert!(w > 0, "matrix width must be positive");
    let wu = w as u32;
    // One arm per pattern so each loop inlines `warp_congestion_fused`
    // with the pattern a compile-time constant.
    match pattern {
        MatrixPattern::Contiguous => {
            for warp in 0..wu {
                sink(warp_congestion_fused(
                    MatrixPattern::Contiguous,
                    w,
                    warp,
                    rng,
                    scratch,
                ));
            }
        }
        MatrixPattern::Stride => {
            for warp in 0..wu {
                sink(warp_congestion_fused(
                    MatrixPattern::Stride,
                    w,
                    warp,
                    rng,
                    scratch,
                ));
            }
        }
        MatrixPattern::Diagonal => {
            for warp in 0..wu {
                sink(warp_congestion_fused(
                    MatrixPattern::Diagonal,
                    w,
                    warp,
                    rng,
                    scratch,
                ));
            }
        }
        MatrixPattern::Random => {
            for warp in 0..wu {
                sink(warp_congestion_fused(
                    MatrixPattern::Random,
                    w,
                    warp,
                    rng,
                    scratch,
                ));
            }
        }
        MatrixPattern::Broadcast => {
            for warp in 0..wu {
                sink(warp_congestion_fused(
                    MatrixPattern::Broadcast,
                    w,
                    warp,
                    rng,
                    scratch,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rap_core::Scheme;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn shapes_are_w_by_w() {
        let mut r = rng();
        for p in [
            MatrixPattern::Contiguous,
            MatrixPattern::Stride,
            MatrixPattern::Diagonal,
            MatrixPattern::Random,
            MatrixPattern::Broadcast,
        ] {
            let op = generate(p, 8, &mut r);
            assert_eq!(op.len(), 8, "{p}");
            assert!(op.iter().all(|w| w.len() == 8), "{p}");
        }
    }

    #[test]
    fn deterministic_patterns_cover_matrix_once() {
        let mut r = rng();
        for p in [
            MatrixPattern::Contiguous,
            MatrixPattern::Stride,
            MatrixPattern::Diagonal,
        ] {
            let op = generate(p, 16, &mut r);
            let mut seen = std::collections::HashSet::new();
            for warp in &op {
                for &c in warp {
                    assert!(seen.insert(c), "{p}: coordinate {c:?} repeated");
                }
            }
            assert_eq!(seen.len(), 256, "{p} must touch every element once");
        }
    }

    #[test]
    fn contiguous_warps_are_rows() {
        let op = generate(MatrixPattern::Contiguous, 4, &mut rng());
        assert_eq!(op[2], vec![(2, 0), (2, 1), (2, 2), (2, 3)]);
    }

    #[test]
    fn stride_warps_are_columns() {
        let op = generate(MatrixPattern::Stride, 4, &mut rng());
        assert_eq!(op[1], vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn diagonal_matches_paper_figure4() {
        // Figure 4 (w=4) diagonal: warp d, thread j → A[j][(j+d) mod 4].
        let op = generate(MatrixPattern::Diagonal, 4, &mut rng());
        assert_eq!(op[0], vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(op[1], vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn congestion_classes_under_raw() {
        let raw = RowShift::raw(32);
        let mut r = rng();
        let cont = generate(MatrixPattern::Contiguous, 32, &mut r);
        let stride = generate(MatrixPattern::Stride, 32, &mut r);
        let diag = generate(MatrixPattern::Diagonal, 32, &mut r);
        assert!(cont.iter().all(|wp| warp_congestion(&raw, wp) == 1));
        assert!(stride.iter().all(|wp| warp_congestion(&raw, wp) == 32));
        assert!(diag.iter().all(|wp| warp_congestion(&raw, wp) == 1));
    }

    #[test]
    fn congestion_classes_under_rap() {
        let mut r = rng();
        let rap = RowShift::rap(&mut r, 32);
        let cont = generate(MatrixPattern::Contiguous, 32, &mut r);
        let stride = generate(MatrixPattern::Stride, 32, &mut r);
        assert!(cont.iter().all(|wp| warp_congestion(&rap, wp) == 1));
        assert!(
            stride.iter().all(|wp| warp_congestion(&rap, wp) == 1),
            "RAP stride must be conflict-free (Theorem 2)"
        );
    }

    #[test]
    fn broadcast_is_congestion_one_everywhere() {
        let mut r = rng();
        for scheme in Scheme::all() {
            let m = RowShift::of_scheme(scheme, &mut r, 16);
            let op = generate(MatrixPattern::Broadcast, 16, &mut r);
            assert!(op.iter().all(|wp| warp_congestion(&m, wp) == 1));
        }
    }

    #[test]
    fn adversary_defeats_every_scheme_it_knows() {
        let mut r = rng();
        for scheme in Scheme::all() {
            let m = RowShift::of_scheme(scheme, &mut r, 32);
            for bank in [0u32, 7, 31] {
                let warp = adversarial_warp(&m, bank);
                assert_eq!(
                    warp_congestion(&m, &warp),
                    32,
                    "{scheme}: informed adversary must achieve full congestion"
                );
            }
        }
    }

    #[test]
    fn adversary_against_raw_is_harmless_to_fresh_rap() {
        // The anti-RAW warp (a plain column) does NOT hurt RAP.
        let mut r = rng();
        let raw = RowShift::raw(32);
        let warp = adversarial_warp(&raw, 5); // = column 5
        let rap = RowShift::rap(&mut r, 32);
        assert_eq!(warp_congestion(&rap, &warp), 1);
    }

    #[test]
    fn random_pattern_is_reproducible_per_seed() {
        let a = generate(MatrixPattern::Random, 8, &mut SmallRng::seed_from_u64(5));
        let b = generate(MatrixPattern::Random, 8, &mut SmallRng::seed_from_u64(5));
        let c = generate(MatrixPattern::Random, 8, &mut SmallRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn adversarial_bank_bounds_checked() {
        let m = RowShift::raw(8);
        let _ = adversarial_warp(&m, 8);
    }

    /// The fused evaluator must be bit-identical to the unfused
    /// generate + map + count pipeline for every pattern, scheme, and
    /// SWAR-range width — and must consume the random stream exactly the
    /// same way (checked by comparing warp-by-warp with twin RNGs).
    #[test]
    fn fused_path_matches_unfused_pipeline() {
        let mut scratch = AccessScratch::new();
        for scheme in Scheme::all() {
            for w in [1usize, 2, 5, 16, 31, 32, 33, 63, 64] {
                let mut map_rng = SmallRng::seed_from_u64(1000 + w as u64);
                let mapping = RowShift::of_scheme(scheme, &mut map_rng, w);
                assert!(scratch.compose(&mapping), "w={w} must compose");
                for p in [
                    MatrixPattern::Contiguous,
                    MatrixPattern::Stride,
                    MatrixPattern::Diagonal,
                    MatrixPattern::Random,
                    MatrixPattern::Broadcast,
                ] {
                    let seed = 7 * w as u64 + 13;
                    let mut rng_a = SmallRng::seed_from_u64(seed);
                    let mut rng_b = SmallRng::seed_from_u64(seed);
                    let mut buf = Vec::new();
                    for warp in 0..w as u32 {
                        let fused = warp_congestion_fused(p, w, warp, &mut rng_a, &mut scratch);
                        generate_warp_into(p, w, warp, &mut rng_b, &mut buf);
                        let unfused = warp_congestion_with(&mapping, &buf, &mut scratch);
                        assert_eq!(fused, unfused, "{scheme} {p} w={w} warp={warp}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn fused_path_rejects_stale_table() {
        let mut scratch = AccessScratch::new();
        let mapping = RowShift::raw(8);
        assert!(scratch.compose(&mapping));
        let mut r = rng();
        let _ = warp_congestion_fused(MatrixPattern::Contiguous, 16, 0, &mut r, &mut scratch);
    }
}
