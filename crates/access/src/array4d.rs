//! Warp access patterns for a `w⁴` array (paper §VII, Table IV).
//!
//! Elements are addressed as `A[d3][d2][d1][d0]` (outermost first). A warp
//! of `w` threads performs one of:
//!
//! * **Contiguous** — vary `d0` (unit stride);
//! * **Stride1/2/3** — vary `d1` / `d2` / `d3` (stride `w`, `w²`, `w³`);
//! * **Random** — uniformly random elements;
//! * **Malicious** — the strongest *scheme-aware but instance-blind*
//!   adversary known for each scheme: the adversary knows which RAP
//!   variant is deployed but not the randomly drawn permutations/shifts.
//!
//! The malicious constructions (one per scheme) implement the paper's §VII
//! discussion:
//!
//! | scheme | attack | expected congestion |
//! |---|---|---|
//! | RAW | stride1 (all threads share `d0`) | `w` |
//! | RAS | stride1 (i.i.d. row shifts) | max-load |
//! | 1P | stride2 (`f = σ(d1)` constant) | `w` |
//! | R1P | **index-permutation groups**: the 6 permutations of a distinct triple `(a,b,c)` share `σ(a)+σ(b)+σ(c)` and hence the bank | `6·Θ(log(w/6)/log log(w/6))` |
//! | 3P | the same grouping (fails: `σ,τ,υ` independent) | max-load |
//! | w²P / 1P+w²R | vary `(d3,d2)` at fixed `(d1,d0)` — shifts are i.i.d. across groups | max-load |

use crate::scratch::AccessScratch;
use rand::Rng;
use rap_core::multidim::{Mapping4d, Scheme4d};
use serde::{Deserialize, Serialize};

/// A logical 4-D coordinate `[d3, d2, d1, d0]`.
pub type Coord4 = [u32; 4];

/// Access-pattern kinds of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern4d {
    /// Vary `d0`: unit-stride access.
    Contiguous,
    /// Vary `d1`: stride-`w` access.
    Stride1,
    /// Vary `d2`: stride-`w²` access.
    Stride2,
    /// Vary `d3`: stride-`w³` access.
    Stride3,
    /// Uniformly random elements.
    Random,
    /// Scheme-aware adversarial access (see module docs).
    Malicious,
}

impl Pattern4d {
    /// All Table IV rows in paper order.
    #[must_use]
    pub fn table4() -> [Pattern4d; 6] {
        [
            Pattern4d::Contiguous,
            Pattern4d::Stride1,
            Pattern4d::Stride2,
            Pattern4d::Stride3,
            Pattern4d::Random,
            Pattern4d::Malicious,
        ]
    }

    /// Display name matching the paper's row labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pattern4d::Contiguous => "Contiguous",
            Pattern4d::Stride1 => "Stride1",
            Pattern4d::Stride2 => "Stride2",
            Pattern4d::Stride3 => "Stride3",
            Pattern4d::Random => "Random",
            Pattern4d::Malicious => "Malicious",
        }
    }
}

impl std::fmt::Display for Pattern4d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate one warp (length `w`) of logical coordinates for `pattern`.
///
/// Fixed coordinates of the stride patterns are drawn from `rng`, so
/// repeated calls sample different rows/columns. `target` selects the
/// adversary used for [`Pattern4d::Malicious`] and is ignored otherwise.
///
/// # Panics
/// Panics if `w == 0`.
#[must_use]
pub fn generate_warp<R: Rng + ?Sized>(
    pattern: Pattern4d,
    target: Scheme4d,
    w: usize,
    rng: &mut R,
) -> Vec<Coord4> {
    assert!(w > 0, "width must be positive");
    let wu = w as u32;
    let mut pick = |_axis: &str| rng.gen_range(0..wu);
    match pattern {
        Pattern4d::Contiguous => {
            let (d3, d2, d1) = (pick("d3"), pick("d2"), pick("d1"));
            (0..wu).map(|d0| [d3, d2, d1, d0]).collect()
        }
        Pattern4d::Stride1 => {
            let (d3, d2, d0) = (pick("d3"), pick("d2"), pick("d0"));
            (0..wu).map(|d1| [d3, d2, d1, d0]).collect()
        }
        Pattern4d::Stride2 => {
            let (d3, d1, d0) = (pick("d3"), pick("d1"), pick("d0"));
            (0..wu).map(|d2| [d3, d2, d1, d0]).collect()
        }
        Pattern4d::Stride3 => {
            let (d2, d1, d0) = (pick("d2"), pick("d1"), pick("d0"));
            (0..wu).map(|d3| [d3, d2, d1, d0]).collect()
        }
        Pattern4d::Random => (0..wu)
            .map(|_| [pick("d3"), pick("d2"), pick("d1"), pick("d0")])
            .collect(),
        Pattern4d::Malicious => malicious_warp(target, w, rng),
    }
}

/// Fill `out` with one warp of logical coordinates — the scratch-reusing
/// counterpart of [`generate_warp`]. Consumes the random stream exactly
/// like [`generate_warp`], so results are identical per call.
///
/// The stride/contiguous/random patterns write straight into `out`; the
/// malicious constructions still build intermediate sets internally (they
/// are a negligible fraction of any sweep).
///
/// # Panics
/// Panics if `w == 0` (or `w < 3` for the R1P/3P grouping adversary).
pub fn generate_warp_into<R: Rng + ?Sized>(
    pattern: Pattern4d,
    target: Scheme4d,
    w: usize,
    rng: &mut R,
    out: &mut Vec<Coord4>,
) {
    assert!(w > 0, "width must be positive");
    let wu = w as u32;
    out.clear();
    let mut pick = |_axis: &str| rng.gen_range(0..wu);
    match pattern {
        Pattern4d::Contiguous => {
            let (d3, d2, d1) = (pick("d3"), pick("d2"), pick("d1"));
            out.extend((0..wu).map(|d0| [d3, d2, d1, d0]));
        }
        Pattern4d::Stride1 => {
            let (d3, d2, d0) = (pick("d3"), pick("d2"), pick("d0"));
            out.extend((0..wu).map(|d1| [d3, d2, d1, d0]));
        }
        Pattern4d::Stride2 => {
            let (d3, d1, d0) = (pick("d3"), pick("d1"), pick("d0"));
            out.extend((0..wu).map(|d2| [d3, d2, d1, d0]));
        }
        Pattern4d::Stride3 => {
            let (d2, d1, d0) = (pick("d2"), pick("d1"), pick("d0"));
            out.extend((0..wu).map(|d3| [d3, d2, d1, d0]));
        }
        Pattern4d::Random => {
            for _ in 0..wu {
                let c = [pick("d3"), pick("d2"), pick("d1"), pick("d0")];
                out.push(c);
            }
        }
        Pattern4d::Malicious => out.extend(malicious_warp(target, w, rng)),
    }
}

/// The strongest known instance-blind adversary against `target`
/// (see the module-level table).
///
/// # Panics
/// Panics if `w == 0`, or if `w < 3` for the R1P/3P grouping attack
/// (distinct triples need at least three values).
#[must_use]
pub fn malicious_warp<R: Rng + ?Sized>(target: Scheme4d, w: usize, rng: &mut R) -> Vec<Coord4> {
    let wu = w as u32;
    match target {
        // RAW and RAS: all requests share d0 across distinct rows.
        Scheme4d::Raw | Scheme4d::Ras => generate_warp(Pattern4d::Stride1, target, w, rng),
        // 1P: f depends only on d1 — fix d1 and d0, vary d2.
        Scheme4d::OneP => generate_warp(Pattern4d::Stride2, target, w, rng),
        // R1P and 3P: index-permutation grouping. Against R1P every group
        // of 6 collides in one bank; against 3P it degenerates to a
        // random-like access (which is the point of 3P).
        Scheme4d::R1P | Scheme4d::ThreeP => permutation_group_warp(w, rng),
        // w²P and 1P+w²R: vary the (d3, d2) pair at fixed (d1, d0); each
        // pair picks an independent permutation/shift, so the banks are
        // i.i.d. — no better attack is known without the instance.
        Scheme4d::WSquaredP | Scheme4d::OnePlusWSquaredR => {
            let d1 = rng.gen_range(0..wu);
            let d0 = rng.gen_range(0..wu);
            // w distinct (d3, d2) pairs
            let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(w);
            let mut seen = std::collections::HashSet::new();
            while pairs.len() < w {
                let p = (rng.gen_range(0..wu), rng.gen_range(0..wu));
                if seen.insert(p) {
                    pairs.push(p);
                }
            }
            pairs.into_iter().map(|(d3, d2)| [d3, d2, d1, d0]).collect()
        }
    }
}

/// The §VII grouping attack: partition the warp into groups of 6 threads;
/// group `g` accesses the 6 index-permutations of a distinct triple
/// `(a_g, b_g, c_g)` as `(d3, d2, d1)`, all with `d0 = 0`. Under R1P every
/// group shares `σ(a)+σ(b)+σ(c) mod w` and therefore a single bank.
///
/// # Panics
/// Panics if `w < 3`.
#[must_use]
pub fn permutation_group_warp<R: Rng + ?Sized>(w: usize, rng: &mut R) -> Vec<Coord4> {
    assert!(w >= 3, "grouping attack needs w ≥ 3 distinct index values");
    let wu = w as u32;
    let mut out = Vec::with_capacity(w);
    let mut used_triples = std::collections::HashSet::new();
    while out.len() < w {
        // Draw a fresh unordered triple of distinct values.
        let triple = loop {
            let mut t = [
                rng.gen_range(0..wu),
                rng.gen_range(0..wu),
                rng.gen_range(0..wu),
            ];
            t.sort_unstable();
            if t[0] != t[1] && t[1] != t[2] && used_triples.insert(t) {
                break t;
            }
        };
        let [a, b, c] = triple;
        for (x, y, z) in [
            (a, b, c),
            (a, c, b),
            (b, a, c),
            (b, c, a),
            (c, a, b),
            (c, b, a),
        ] {
            if out.len() == w {
                break;
            }
            out.push([x, y, z, 0]);
        }
    }
    out
}

/// Map one warp's logical coordinates to flat physical addresses.
#[must_use]
pub fn warp_addresses(mapping: &Mapping4d, warp: &[Coord4]) -> Vec<u64> {
    warp.iter()
        .map(|&[d3, d2, d1, d0]| mapping.address(d3, d2, d1, d0))
        .collect()
}

/// Congestion of one warp's access under `mapping`.
#[must_use]
pub fn warp_congestion(mapping: &Mapping4d, warp: &[Coord4]) -> u32 {
    rap_core::congestion::congestion(mapping.width(), &warp_addresses(mapping, warp))
}

/// Fill `out` with the flat physical addresses of one warp — the
/// scratch-reusing counterpart of [`warp_addresses`].
pub fn warp_addresses_into(mapping: &Mapping4d, warp: &[Coord4], out: &mut Vec<u64>) {
    out.clear();
    out.extend(
        warp.iter()
            .map(|&[d3, d2, d1, d0]| mapping.address(d3, d2, d1, d0)),
    );
}

/// Congestion of one warp's access, reusing `scratch`'s buffers — the
/// allocation-free counterpart of [`warp_congestion`].
#[must_use]
pub fn warp_congestion_with(
    mapping: &Mapping4d,
    warp: &[Coord4],
    scratch: &mut AccessScratch,
) -> u32 {
    let mut addrs = std::mem::take(&mut scratch.addrs);
    warp_addresses_into(mapping, warp, &mut addrs);
    let result = scratch.congestion.congestion(mapping.width(), &addrs);
    scratch.addrs = addrs;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(123)
    }

    #[test]
    fn warps_have_w_threads_and_valid_coords() {
        let mut r = rng();
        for p in Pattern4d::table4() {
            for scheme in Scheme4d::all() {
                let warp = generate_warp(p, scheme, 12, &mut r);
                assert_eq!(warp.len(), 12, "{p}/{scheme}");
                assert!(
                    warp.iter().all(|c| c.iter().all(|&d| d < 12)),
                    "{p}/{scheme}: coordinate out of range"
                );
            }
        }
    }

    #[test]
    fn stride_patterns_vary_the_right_axis() {
        let mut r = rng();
        let checks: [(Pattern4d, usize); 4] = [
            (Pattern4d::Contiguous, 3),
            (Pattern4d::Stride1, 2),
            (Pattern4d::Stride2, 1),
            (Pattern4d::Stride3, 0),
        ];
        for (p, axis) in checks {
            let warp = generate_warp(p, Scheme4d::Raw, 8, &mut r);
            let varying: HashSet<u32> = warp.iter().map(|c| c[axis]).collect();
            assert_eq!(varying.len(), 8, "{p} must sweep axis {axis}");
            for other in 0..4 {
                if other != axis {
                    let fixed: HashSet<u32> = warp.iter().map(|c| c[other]).collect();
                    assert_eq!(fixed.len(), 1, "{p} must fix axis {other}");
                }
            }
        }
    }

    #[test]
    fn malicious_vs_raw_hits_one_bank() {
        let mut r = rng();
        let m = Mapping4d::new(Scheme4d::Raw, &mut r, 16).unwrap();
        let warp = malicious_warp(Scheme4d::Raw, 16, &mut r);
        assert_eq!(warp_congestion(&m, &warp), 16);
    }

    #[test]
    fn malicious_vs_1p_hits_one_bank() {
        let mut r = rng();
        let m = Mapping4d::new(Scheme4d::OneP, &mut r, 16).unwrap();
        let warp = malicious_warp(Scheme4d::OneP, 16, &mut r);
        assert_eq!(warp_congestion(&m, &warp), 16);
    }

    #[test]
    fn grouping_attack_collides_groups_under_r1p() {
        let mut r = rng();
        let w = 18; // exactly 3 groups of 6
        let m = Mapping4d::new(Scheme4d::R1P, &mut r, w).unwrap();
        let warp = permutation_group_warp(w, &mut r);
        // Every aligned group of 6 must land in a single bank.
        for group in warp.chunks(6) {
            let banks: HashSet<u32> = group
                .iter()
                .map(|&[d3, d2, d1, d0]| m.bank(d3, d2, d1, d0))
                .collect();
            assert_eq!(banks.len(), 1, "R1P group must collide in one bank");
        }
        assert!(
            warp_congestion(&m, &warp) >= 6,
            "R1P congestion must be at least one full group"
        );
    }

    #[test]
    fn grouping_attack_addresses_are_distinct() {
        let mut r = rng();
        let m = Mapping4d::new(Scheme4d::R1P, &mut r, 18).unwrap();
        let warp = permutation_group_warp(18, &mut r);
        let addrs = warp_addresses(&m, &warp);
        let set: HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(
            set.len(),
            addrs.len(),
            "the attack must not rely on merging"
        );
    }

    #[test]
    fn grouping_attack_mostly_harmless_to_3p() {
        // Against 3P the grouped warp behaves like a random one: across
        // trials the mean congestion stays far below a full group per bank.
        let mut r = rng();
        let w = 24;
        let mut total = 0u32;
        let trials = 200;
        for _ in 0..trials {
            let m = Mapping4d::new(Scheme4d::ThreeP, &mut r, w).unwrap();
            let warp = permutation_group_warp(w, &mut r);
            total += warp_congestion(&m, &warp);
        }
        let mean = f64::from(total) / f64::from(trials);
        assert!(
            mean < 8.0,
            "3P should shrug off the grouping attack, got mean {mean}"
        );
    }

    #[test]
    fn contiguous_is_conflict_free_for_all_schemes() {
        let mut r = rng();
        for scheme in Scheme4d::all() {
            let m = Mapping4d::new(scheme, &mut r, 16).unwrap();
            let warp = generate_warp(Pattern4d::Contiguous, scheme, 16, &mut r);
            assert_eq!(warp_congestion(&m, &warp), 1, "{scheme}");
        }
    }

    #[test]
    fn stride1_conflict_free_for_permutation_schemes() {
        let mut r = rng();
        for scheme in [
            Scheme4d::OneP,
            Scheme4d::R1P,
            Scheme4d::ThreeP,
            Scheme4d::WSquaredP,
            Scheme4d::OnePlusWSquaredR,
        ] {
            let m = Mapping4d::new(scheme, &mut r, 16).unwrap();
            let warp = generate_warp(Pattern4d::Stride1, scheme, 16, &mut r);
            assert_eq!(warp_congestion(&m, &warp), 1, "{scheme}");
        }
    }

    #[test]
    fn random_warp_is_fresh_per_call() {
        let mut r = rng();
        let a = generate_warp(Pattern4d::Random, Scheme4d::Raw, 16, &mut r);
        let b = generate_warp(Pattern4d::Random, Scheme4d::Raw, 16, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "w ≥ 3")]
    fn grouping_attack_needs_three_values() {
        let _ = permutation_group_warp(2, &mut rng());
    }
}
