//! Monte-Carlo congestion estimation — the engine behind Tables II and IV.
//!
//! The paper's simulation (§V) draws fresh randomness (shifts for RAS, a
//! permutation for RAP, fresh random coordinates for the random pattern)
//! and reports the *expected congestion* of each (scheme, pattern) pair.
//! The estimators here do exactly that: per trial, build a fresh mapping,
//! generate the access operation, and record the congestion of every warp.
//!
//! # Parallelism and determinism
//!
//! Trials are independent by construction — trial `t` draws its entire
//! random stream from `domain.child(..).rng(t)` — so the estimators run
//! trials in parallel. To keep the estimate **invariant to the worker
//! count**, trials are grouped into fixed blocks of `TRIALS_PER_BLOCK`:
//! each block is evaluated serially into its own [`OnlineStats`] (with one
//! reused [`AccessScratch`], so the hot loop allocates nothing), the blocks
//! are mapped in parallel, and the per-block accumulators are merged in
//! block-index order. The block boundaries and the merge order depend only
//! on `trials`, never on the scheduler, so 1 worker and N workers produce
//! bit-identical [`OnlineStats`].
//!
//! Relative to a single serial accumulator over the same sample stream,
//! the block merge is exact for `count`/`min`/`max` and agrees on
//! `mean`/`variance` up to floating-point merge rounding (≈ 1e-12
//! relative); the tests pin both properties.
//!
//! Reproducibility: estimators take a [`SeedDomain`]; the same domain
//! always yields the same estimate, regardless of call order elsewhere.

use crate::array4d::{self, Coord4, Pattern4d};
use crate::cancel::{CancelToken, PartialStats};
use crate::matrix::{self, Coord, MatrixPattern};
use crate::scratch::AccessScratch;
use rap_core::multidim::{Mapping4d, Scheme4d};
use rap_core::{RowShift, Scheme};
use rap_stats::{OnlineStats, SeedDomain};
use rayon::prelude::*;

/// Trials per work unit. Fixed (not derived from the worker count) so the
/// block structure — and therefore the merge order and the floating-point
/// result — is identical for every thread count. 32 trials amortise the
/// per-block scratch allocation well below measurement noise while still
/// exposing enough blocks to saturate a pool on Table-sized sweeps.
///
/// Public because the checkpoint layer fingerprints it: a ledger written
/// under one block size must never resume a run under another.
pub const TRIALS_PER_BLOCK: u64 = 32;

/// Number of blocks a `trials`-sized run decomposes into.
#[must_use]
pub fn blocks_for(trials: u64) -> u64 {
    trials.div_ceil(TRIALS_PER_BLOCK)
}

/// The trial range of block `block` in a `trials`-sized run.
#[must_use]
pub fn block_range(block: u64, trials: u64) -> std::ops::Range<u64> {
    let start = block * TRIALS_PER_BLOCK;
    start..trials.min(start + TRIALS_PER_BLOCK)
}

/// Per-worker buffers of the matrix engine: the shared access scratch
/// (congestion kernel + composed lookup table) and the coordinate buffer
/// of the unfused fallback. One instance lives per worker thread for a
/// whole sweep (`map_init`), so steady state allocates nothing.
#[derive(Default)]
pub(crate) struct MatrixScratch {
    access: AccessScratch,
    warp_buf: Vec<Coord>,
}

/// Per-worker buffers of the 4-D engine (see [`MatrixScratch`]).
#[derive(Default)]
pub(crate) struct Array4dScratch {
    access: AccessScratch,
    warp_buf: Vec<Coord4>,
}

/// Evaluate one block of matrix-congestion trials serially into a fresh
/// accumulator. `child` must be the `domain.child("matrix")` stream; both
/// the plain and the resilient engines call exactly this body, which is
/// why a resumed run can be bit-identical to an uninterrupted one.
pub(crate) fn matrix_block(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    child: &SeedDomain,
    block: std::ops::Range<u64>,
) -> OnlineStats {
    matrix_block_in(
        scheme,
        pattern,
        w,
        child,
        block,
        &mut MatrixScratch::default(),
    )
}

/// [`matrix_block`] with caller-owned scratch, so a worker thread reuses
/// one set of buffers across every block it executes.
///
/// Per trial this composes the fresh mapping into the scratch lookup
/// table and evaluates every warp through the fused single-table-read
/// path; widths beyond the table's 64-bank range fall back to the
/// unfused generate + map + count pipeline. Both paths consume the
/// trial's random stream identically and count congestion identically
/// (pinned by the fused-vs-unfused tests and the conformance oracle), so
/// which path ran is unobservable in the result.
pub(crate) fn matrix_block_in(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    child: &SeedDomain,
    block: std::ops::Range<u64>,
    s: &mut MatrixScratch,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for trial in block {
        let mut rng = child.rng(trial);
        let mapping = RowShift::of_scheme(scheme, &mut rng, w);
        if s.access.compose(&mapping) {
            matrix::trial_congestions_fused(pattern, w, &mut rng, &mut s.access, |c| {
                stats.push_u32(c);
            });
        } else {
            for warp in 0..w as u32 {
                matrix::generate_warp_into(pattern, w, warp, &mut rng, &mut s.warp_buf);
                stats.push_u32(matrix::warp_congestion_with(
                    &mapping,
                    &s.warp_buf,
                    &mut s.access,
                ));
            }
        }
    }
    stats
}

/// Evaluate one block of 4-D array congestion trials serially (see
/// [`matrix_block`]; `child` is the `domain.child("array4d")` stream).
pub(crate) fn array4d_block(
    scheme: Scheme4d,
    pattern: Pattern4d,
    w: usize,
    warps_per_trial: u32,
    child: &SeedDomain,
    block: std::ops::Range<u64>,
) -> OnlineStats {
    array4d_block_in(
        scheme,
        pattern,
        w,
        warps_per_trial,
        child,
        block,
        &mut Array4dScratch::default(),
    )
}

/// [`array4d_block`] with caller-owned scratch (see [`matrix_block_in`];
/// the 4-D mapping has no composed table, but the congestion kernel's
/// buffers and the coordinate buffer are still reused across blocks).
pub(crate) fn array4d_block_in(
    scheme: Scheme4d,
    pattern: Pattern4d,
    w: usize,
    warps_per_trial: u32,
    child: &SeedDomain,
    block: std::ops::Range<u64>,
    s: &mut Array4dScratch,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for trial in block {
        let mut rng = child.rng(trial);
        let mapping = Mapping4d::new(scheme, &mut rng, w).expect("valid width");
        for _ in 0..warps_per_trial {
            array4d::generate_warp_into(pattern, scheme, w, &mut rng, &mut s.warp_buf);
            stats.push_u32(array4d::warp_congestion_with(
                &mapping,
                &s.warp_buf,
                &mut s.access,
            ));
        }
    }
    stats
}

/// Run `run_block` over fixed-size trial blocks in parallel and merge the
/// per-block statistics in block-index order.
///
/// This is the determinism kernel of the engine: the result depends only
/// on `trials` and `run_block`, never on how many workers executed the
/// blocks (see the module docs).
/// `init` builds one scratch per worker thread (`map_init`); the scratch
/// carries buffers only, never statistics, so reuse across blocks cannot
/// perturb the result.
fn parallel_trials<S, I, F>(trials: u64, init: I, run_block: F) -> OnlineStats
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<u64>) -> OnlineStats + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let blocks: Vec<std::ops::Range<u64>> = (0..trials)
        .step_by(TRIALS_PER_BLOCK as usize)
        .map(|start| start..trials.min(start + TRIALS_PER_BLOCK))
        .collect();
    let per_block: Vec<OnlineStats> = blocks.into_par_iter().map_init(init, run_block).collect();
    let mut total = OnlineStats::new();
    for block in &per_block {
        total.merge(block);
    }
    total
}

/// Estimate the expected per-warp congestion of `pattern` under `scheme`
/// on a `w × w` matrix.
///
/// Each trial draws a fresh mapping and a fresh instance of the pattern
/// (for the random pattern), then records the congestion of **every** warp
/// of the access operation, matching the paper's per-warp averaging.
///
/// Trials run in parallel on the ambient rayon pool; the result is
/// bit-identical for every thread count (see the module docs).
///
/// # Panics
/// Panics if `w == 0` or `trials == 0`.
#[must_use]
pub fn matrix_congestion(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    assert!(trials > 0, "need at least one trial");
    let child = domain.child("matrix");
    parallel_trials(trials, MatrixScratch::default, |s, block| {
        matrix_block_in(scheme, pattern, w, &child, block, s)
    })
}

/// Evaluate exactly one fixed-size block of [`matrix_congestion`]'s
/// decomposition over `trials` total trials, serially, into a fresh
/// accumulator.
///
/// Merging the accumulators of blocks `0..blocks_for(trials)` in block-
/// index order reproduces the full estimator's result **bit for bit**,
/// on any machine — each trial's random stream depends only on
/// `(domain, trial index)`. This is the distribution unit of
/// `rap-cluster`: workers execute single blocks anywhere, the
/// coordinator merges in index order, and re-executing a block after a
/// worker crash yields the identical accumulator.
///
/// # Panics
/// Panics if `w == 0`, `trials == 0`, or `block >= blocks_for(trials)`.
#[must_use]
pub fn matrix_block_stats(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    block: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    assert!(trials > 0, "need at least one trial");
    assert!(
        block < blocks_for(trials),
        "block {block} out of range for {trials} trials"
    );
    matrix_block(
        scheme,
        pattern,
        w,
        &domain.child("matrix"),
        block_range(block, trials),
    )
}

/// Estimate the expected per-warp congestion of `pattern` under `scheme`
/// on a `w⁴` array (Table IV).
///
/// Each trial draws a fresh mapping and `warps_per_trial` fresh warps.
/// Malicious warps target `scheme` (scheme-aware, instance-blind).
///
/// Trials run in parallel on the ambient rayon pool; the result is
/// bit-identical for every thread count (see the module docs).
///
/// # Panics
/// Panics if `w == 0` or `trials == 0` or `warps_per_trial == 0`.
#[must_use]
pub fn array4d_congestion(
    scheme: Scheme4d,
    pattern: Pattern4d,
    w: usize,
    trials: u64,
    warps_per_trial: u32,
    domain: &SeedDomain,
) -> OnlineStats {
    assert!(
        trials > 0 && warps_per_trial > 0,
        "need at least one sample"
    );
    let child = domain.child("array4d");
    parallel_trials(trials, Array4dScratch::default, |s, block| {
        array4d_block_in(scheme, pattern, w, warps_per_trial, &child, block, s)
    })
}

/// Like [`matrix_block`], but polling `token` before every trial; returns
/// `None` when cancelled mid-block (the partial accumulator is discarded
/// so the surviving blocks stay bit-comparable to the plain engine).
fn matrix_block_cancellable(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    child: &SeedDomain,
    block: std::ops::Range<u64>,
    token: &CancelToken,
    s: &mut MatrixScratch,
) -> Option<OnlineStats> {
    let mut stats = OnlineStats::new();
    for trial in block {
        if token.is_cancelled() {
            return None;
        }
        let mut rng = child.rng(trial);
        let mapping = RowShift::of_scheme(scheme, &mut rng, w);
        if s.access.compose(&mapping) {
            matrix::trial_congestions_fused(pattern, w, &mut rng, &mut s.access, |c| {
                stats.push_u32(c);
            });
        } else {
            for warp in 0..w as u32 {
                matrix::generate_warp_into(pattern, w, warp, &mut rng, &mut s.warp_buf);
                stats.push_u32(matrix::warp_congestion_with(
                    &mapping,
                    &s.warp_buf,
                    &mut s.access,
                ));
            }
        }
    }
    Some(stats)
}

/// Cancellable [`matrix_congestion`]: the same sample streams and block
/// structure, polling `token` between trials inside every block loop.
///
/// A run whose token never fires returns `cancelled == false` and stats
/// **bit-identical** to the plain estimator. A cancelled run merges the
/// blocks that completed (in block-index order) into an explicitly
/// marked [`PartialStats`] — the deadline path of `rap-serve` turns
/// these into structured timeout responses instead of stalled sockets.
///
/// # Panics
/// Panics if `w == 0` or `trials == 0`.
#[must_use]
pub fn matrix_congestion_cancellable(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
    token: &CancelToken,
) -> PartialStats {
    assert!(trials > 0, "need at least one trial");
    let child = domain.child("matrix");
    let blocks: Vec<std::ops::Range<u64>> = (0..trials)
        .step_by(TRIALS_PER_BLOCK as usize)
        .map(|start| start..trials.min(start + TRIALS_PER_BLOCK))
        .collect();
    let total_blocks = blocks.len() as u64;
    let per_block: Vec<Option<OnlineStats>> = blocks
        .into_par_iter()
        .map_init(MatrixScratch::default, |s, block| {
            if token.is_cancelled() {
                return None;
            }
            matrix_block_cancellable(scheme, pattern, w, &child, block, token, s)
        })
        .collect();
    let mut stats = OnlineStats::new();
    let mut completed_blocks = 0;
    for block in per_block.iter().flatten() {
        stats.merge(block);
        completed_blocks += 1;
    }
    PartialStats {
        stats,
        completed_blocks,
        total_blocks,
        cancelled: completed_blocks < total_blocks,
    }
}

/// Estimate the expected congestion of the *worst known blind adversary*
/// against the matrix RAP/RAS mappings: all `w` threads aim at one
/// RAW-bank (a column access). Under RAW this is congestion `w`; under a
/// fresh RAP instance it must collapse to 1; under RAS it behaves like
/// balls-into-bins. This backs the abstract's claim that "malicious
/// memory access requests destined for the same bank take congestion 32"
/// while the RAP keeps the expected congestion small.
#[must_use]
pub fn matrix_malicious_congestion(
    scheme: Scheme,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    // A column access *is* the strongest blind attack: any fixed warp of
    // distinct addresses is rotated row-wise by the (secret) shifts.
    matrix_congestion(scheme, MatrixPattern::Stride, w, trials, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_stats::MaxLoad;

    fn domain() -> SeedDomain {
        SeedDomain::new(2014)
    }

    /// The pre-engine serial estimator, kept verbatim as the reference the
    /// parallel engine is validated against: one accumulator, one
    /// allocation-per-warp `generate` call, trials in order.
    fn matrix_congestion_serial(
        scheme: Scheme,
        pattern: MatrixPattern,
        w: usize,
        trials: u64,
        domain: &SeedDomain,
    ) -> OnlineStats {
        let mut stats = OnlineStats::new();
        for trial in 0..trials {
            let mut rng = domain.child("matrix").rng(trial);
            let mapping = RowShift::of_scheme(scheme, &mut rng, w);
            let op = matrix::generate(pattern, w, &mut rng);
            for warp in &op {
                stats.push_u32(matrix::warp_congestion(&mapping, warp));
            }
        }
        stats
    }

    /// Serial reference for the 4-D estimator (pre-engine code, verbatim).
    fn array4d_congestion_serial(
        scheme: Scheme4d,
        pattern: Pattern4d,
        w: usize,
        trials: u64,
        warps_per_trial: u32,
        domain: &SeedDomain,
    ) -> OnlineStats {
        let mut stats = OnlineStats::new();
        for trial in 0..trials {
            let mut rng = domain.child("array4d").rng(trial);
            let mapping = Mapping4d::new(scheme, &mut rng, w).expect("valid width");
            for _ in 0..warps_per_trial {
                let warp = array4d::generate_warp(pattern, scheme, w, &mut rng);
                stats.push_u32(array4d::warp_congestion(&mapping, &warp));
            }
        }
        stats
    }

    fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool")
            .install(op)
    }

    #[test]
    fn contiguous_is_exactly_one_for_all_schemes() {
        for scheme in Scheme::all() {
            let s = matrix_congestion(scheme, MatrixPattern::Contiguous, 16, 20, &domain());
            assert_eq!(s.mean(), 1.0, "{scheme}");
            assert_eq!(s.max(), Some(1.0), "{scheme}");
        }
    }

    #[test]
    fn stride_classes() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Stride, 16, 10, &domain());
        assert_eq!(raw.mean(), 16.0);
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Stride, 16, 50, &domain());
        assert_eq!(rap.mean(), 1.0, "RAP stride must be deterministically 1");
        let ras = matrix_congestion(Scheme::Ras, MatrixPattern::Stride, 16, 400, &domain());
        let exact = MaxLoad::exact(16, 16).expected();
        assert!(
            (ras.mean() - exact).abs() < 0.15,
            "RAS stride mean {} should approach balls-into-bins {exact}",
            ras.mean()
        );
    }

    #[test]
    fn diagonal_classes() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Diagonal, 16, 10, &domain());
        assert_eq!(raw.mean(), 1.0, "diagonal is optimized for RAW");
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Diagonal, 16, 300, &domain());
        // Paper Table II: 3.20 at w=16 (slightly above the RAS 3.08).
        assert!(
            (rap.mean() - 3.20).abs() < 0.2,
            "RAP diagonal mean {} should be near the paper's 3.20",
            rap.mean()
        );
    }

    #[test]
    fn random_is_scheme_independent() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Random, 16, 300, &domain());
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Random, 16, 300, &domain());
        assert!(
            (raw.mean() - rap.mean()).abs() < 0.2,
            "random congestion must not depend on the scheme ({} vs {})",
            raw.mean(),
            rap.mean()
        );
        // Paper Table II: 2.92 at w=16.
        assert!((raw.mean() - 2.92).abs() < 0.2);
    }

    #[test]
    fn single_block_merge_is_bit_identical_to_full_estimator() {
        // 77 trials → 3 blocks (32 + 32 + 13): exercises the ragged tail.
        let trials = 77;
        for scheme in [Scheme::Raw, Scheme::Ras, Scheme::Rap] {
            let full = matrix_congestion(scheme, MatrixPattern::Random, 16, trials, &domain());
            let mut merged = OnlineStats::new();
            for block in 0..blocks_for(trials) {
                merged.merge(&matrix_block_stats(
                    scheme,
                    MatrixPattern::Random,
                    16,
                    trials,
                    block,
                    &domain(),
                ));
            }
            assert_eq!(
                merged.to_raw(),
                full.to_raw(),
                "{scheme}: block merge must be bit-identical"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        let _ = matrix_block_stats(Scheme::Rap, MatrixPattern::Stride, 8, 32, 1, &domain());
    }

    #[test]
    fn malicious_matrix_summary() {
        let raw = matrix_malicious_congestion(Scheme::Raw, 32, 5, &domain());
        assert_eq!(raw.mean(), 32.0);
        let rap = matrix_malicious_congestion(Scheme::Rap, 32, 20, &domain());
        assert_eq!(rap.mean(), 1.0);
    }

    #[test]
    fn array4d_stride2_separates_1p_from_r1p() {
        let d = domain();
        let onep = array4d_congestion(Scheme4d::OneP, Pattern4d::Stride2, 16, 10, 4, &d);
        assert_eq!(onep.mean(), 16.0, "1P stride2 fully serializes");
        let r1p = array4d_congestion(Scheme4d::R1P, Pattern4d::Stride2, 16, 10, 4, &d);
        assert_eq!(r1p.mean(), 1.0, "R1P stride2 is conflict-free");
    }

    #[test]
    fn array4d_malicious_separates_r1p_from_3p() {
        let d = domain();
        let w = 18;
        let r1p = array4d_congestion(Scheme4d::R1P, Pattern4d::Malicious, w, 60, 2, &d);
        let threep = array4d_congestion(Scheme4d::ThreeP, Pattern4d::Malicious, w, 60, 2, &d);
        assert!(
            r1p.mean() >= 6.0,
            "R1P malicious must collide whole groups, got {}",
            r1p.mean()
        );
        assert!(
            threep.mean() < r1p.mean() / 1.5,
            "3P ({}) must resist the attack that breaks R1P ({})",
            threep.mean(),
            r1p.mean()
        );
    }

    #[test]
    fn estimates_are_reproducible() {
        let a = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 8, 50, &domain());
        let b = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 8, 50, &domain());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = matrix_congestion(Scheme::Raw, MatrixPattern::Random, 8, 0, &domain());
    }

    /// The engine's core contract: the estimate is **bit-identical** for
    /// every worker count, because the block structure and merge order
    /// depend only on `trials`.
    #[test]
    fn thread_count_invariance_is_exact() {
        let d = domain();
        // 100 trials = 4 blocks; enough to exercise uneven chunking at
        // every tested pool size.
        let runs: Vec<(OnlineStats, OnlineStats)> = [1usize, 2, 3, 8]
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    (
                        matrix_congestion(Scheme::Ras, MatrixPattern::Random, 16, 100, &d),
                        array4d_congestion(Scheme4d::R1P, Pattern4d::Random, 16, 100, 4, &d),
                    )
                })
            })
            .collect();
        for pair in &runs[1..] {
            assert_eq!(pair.0, runs[0].0, "matrix estimate varies with threads");
            assert_eq!(pair.1, runs[0].1, "array4d estimate varies with threads");
        }
    }

    /// The engine must reproduce the pre-engine serial estimator: the
    /// sample stream is identical (`generate_warp_into` consumes the RNG
    /// exactly like `generate`), so `count`/`min`/`max` match exactly and
    /// `mean`/`variance` match up to block-merge rounding.
    #[test]
    fn engine_matches_serial_reference() {
        let d = domain();
        let cases = [
            (Scheme::Ras, MatrixPattern::Random, 16, 100),
            (Scheme::Rap, MatrixPattern::Diagonal, 32, 70),
            (Scheme::Raw, MatrixPattern::Stride, 8, 33),
        ];
        for (scheme, pattern, w, trials) in cases {
            let par = matrix_congestion(scheme, pattern, w, trials, &d);
            let ser = matrix_congestion_serial(scheme, pattern, w, trials, &d);
            assert_eq!(par.count(), ser.count(), "{scheme} {pattern}");
            assert_eq!(par.min(), ser.min(), "{scheme} {pattern}");
            assert_eq!(par.max(), ser.max(), "{scheme} {pattern}");
            assert!(
                (par.mean() - ser.mean()).abs() <= 1e-12 * ser.mean().abs(),
                "{scheme} {pattern}: mean {} vs serial {}",
                par.mean(),
                ser.mean()
            );
            assert!(
                (par.variance() - ser.variance()).abs() <= 1e-9 * (1.0 + ser.variance()),
                "{scheme} {pattern}: variance {} vs serial {}",
                par.variance(),
                ser.variance()
            );
        }

        let par = array4d_congestion(Scheme4d::Ras, Pattern4d::Random, 16, 100, 4, &d);
        let ser = array4d_congestion_serial(Scheme4d::Ras, Pattern4d::Random, 16, 100, 4, &d);
        assert_eq!(par.count(), ser.count());
        assert_eq!(par.min(), ser.min());
        assert_eq!(par.max(), ser.max());
        assert!((par.mean() - ser.mean()).abs() <= 1e-12 * ser.mean().abs());
    }

    #[test]
    fn uncancelled_cancellable_run_is_bit_identical_to_plain() {
        let d = domain();
        let token = CancelToken::never();
        for (scheme, pattern, w, trials) in [
            (Scheme::Ras, MatrixPattern::Random, 16, 100u64),
            (Scheme::Rap, MatrixPattern::Diagonal, 8, 33),
        ] {
            let plain = matrix_congestion(scheme, pattern, w, trials, &d);
            let run = matrix_congestion_cancellable(scheme, pattern, w, trials, &d, &token);
            assert!(!run.cancelled, "{scheme} {pattern}");
            assert!(!run.degraded());
            assert_eq!(run.completed_blocks, run.total_blocks);
            assert_eq!(run.stats.to_raw(), plain.to_raw(), "{scheme} {pattern}");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_block() {
        let d = domain();
        let token = CancelToken::never();
        token.cancel();
        let start = std::time::Instant::now();
        let run =
            matrix_congestion_cancellable(Scheme::Ras, MatrixPattern::Random, 32, 3200, &d, &token);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "cancellation must be prompt"
        );
        assert!(run.cancelled);
        assert!(run.degraded());
        assert_eq!(run.completed_blocks, 0);
        assert_eq!(run.stats.count(), 0);
        assert_eq!(run.total_blocks, blocks_for(3200));
    }

    #[test]
    fn expired_deadline_token_yields_a_marked_partial() {
        let d = domain();
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let run =
            matrix_congestion_cancellable(Scheme::Rap, MatrixPattern::Stride, 16, 640, &d, &token);
        assert!(run.cancelled, "an already-expired deadline must cancel");
        assert!(run.completed_blocks < run.total_blocks);
    }

    /// A single block (trials ≤ TRIALS_PER_BLOCK) merges into an empty
    /// accumulator, which copies it verbatim — so small runs are
    /// bit-identical to the serial reference, not merely close.
    #[test]
    fn single_block_is_bit_identical_to_serial() {
        let d = domain();
        let par = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 16, 32, &d);
        let ser = matrix_congestion_serial(Scheme::Ras, MatrixPattern::Random, 16, 32, &d);
        assert_eq!(par, ser);
    }
}
