//! Monte-Carlo congestion estimation — the engine behind Tables II and IV.
//!
//! The paper's simulation (§V) draws fresh randomness (shifts for RAS, a
//! permutation for RAP, fresh random coordinates for the random pattern)
//! and reports the *expected congestion* of each (scheme, pattern) pair.
//! The estimators here do exactly that: per trial, build a fresh mapping,
//! generate the access operation, and record the congestion of every warp.
//!
//! Reproducibility: estimators take a [`SeedDomain`]; the same domain
//! always yields the same estimate, regardless of call order elsewhere.

use crate::array4d::{self, Pattern4d};
use crate::matrix::{self, MatrixPattern};
use rap_core::multidim::{Mapping4d, Scheme4d};
use rap_core::{RowShift, Scheme};
use rap_stats::{OnlineStats, SeedDomain};

/// Estimate the expected per-warp congestion of `pattern` under `scheme`
/// on a `w × w` matrix.
///
/// Each trial draws a fresh mapping and a fresh instance of the pattern
/// (for the random pattern), then records the congestion of **every** warp
/// of the access operation, matching the paper's per-warp averaging.
///
/// # Panics
/// Panics if `w == 0` or `trials == 0`.
#[must_use]
pub fn matrix_congestion(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    assert!(trials > 0, "need at least one trial");
    let mut stats = OnlineStats::new();
    for trial in 0..trials {
        let mut rng = domain.child("matrix").rng(trial);
        let mapping = RowShift::of_scheme(scheme, &mut rng, w);
        let op = matrix::generate(pattern, w, &mut rng);
        for warp in &op {
            stats.push_u32(matrix::warp_congestion(&mapping, warp));
        }
    }
    stats
}

/// Estimate the expected per-warp congestion of `pattern` under `scheme`
/// on a `w⁴` array (Table IV).
///
/// Each trial draws a fresh mapping and `warps_per_trial` fresh warps.
/// Malicious warps target `scheme` (scheme-aware, instance-blind).
///
/// # Panics
/// Panics if `w == 0` or `trials == 0` or `warps_per_trial == 0`.
#[must_use]
pub fn array4d_congestion(
    scheme: Scheme4d,
    pattern: Pattern4d,
    w: usize,
    trials: u64,
    warps_per_trial: u32,
    domain: &SeedDomain,
) -> OnlineStats {
    assert!(trials > 0 && warps_per_trial > 0, "need at least one sample");
    let mut stats = OnlineStats::new();
    for trial in 0..trials {
        let mut rng = domain.child("array4d").rng(trial);
        let mapping = Mapping4d::new(scheme, &mut rng, w).expect("valid width");
        for _ in 0..warps_per_trial {
            let warp = array4d::generate_warp(pattern, scheme, w, &mut rng);
            stats.push_u32(array4d::warp_congestion(&mapping, &warp));
        }
    }
    stats
}

/// Estimate the expected congestion of the *worst known blind adversary*
/// against the matrix RAP/RAS mappings: all `w` threads aim at one
/// RAW-bank (a column access). Under RAW this is congestion `w`; under a
/// fresh RAP instance it must collapse to 1; under RAS it behaves like
/// balls-into-bins. This backs the abstract's claim that "malicious
/// memory access requests destined for the same bank take congestion 32"
/// while the RAP keeps the expected congestion small.
#[must_use]
pub fn matrix_malicious_congestion(
    scheme: Scheme,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
) -> OnlineStats {
    // A column access *is* the strongest blind attack: any fixed warp of
    // distinct addresses is rotated row-wise by the (secret) shifts.
    matrix_congestion(scheme, MatrixPattern::Stride, w, trials, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_stats::MaxLoad;

    fn domain() -> SeedDomain {
        SeedDomain::new(2014)
    }

    #[test]
    fn contiguous_is_exactly_one_for_all_schemes() {
        for scheme in Scheme::all() {
            let s = matrix_congestion(scheme, MatrixPattern::Contiguous, 16, 20, &domain());
            assert_eq!(s.mean(), 1.0, "{scheme}");
            assert_eq!(s.max(), Some(1.0), "{scheme}");
        }
    }

    #[test]
    fn stride_classes() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Stride, 16, 10, &domain());
        assert_eq!(raw.mean(), 16.0);
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Stride, 16, 50, &domain());
        assert_eq!(rap.mean(), 1.0, "RAP stride must be deterministically 1");
        let ras = matrix_congestion(Scheme::Ras, MatrixPattern::Stride, 16, 400, &domain());
        let exact = MaxLoad::exact(16, 16).expected();
        assert!(
            (ras.mean() - exact).abs() < 0.15,
            "RAS stride mean {} should approach balls-into-bins {exact}",
            ras.mean()
        );
    }

    #[test]
    fn diagonal_classes() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Diagonal, 16, 10, &domain());
        assert_eq!(raw.mean(), 1.0, "diagonal is optimized for RAW");
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Diagonal, 16, 300, &domain());
        // Paper Table II: 3.20 at w=16 (slightly above the RAS 3.08).
        assert!(
            (rap.mean() - 3.20).abs() < 0.2,
            "RAP diagonal mean {} should be near the paper's 3.20",
            rap.mean()
        );
    }

    #[test]
    fn random_is_scheme_independent() {
        let raw = matrix_congestion(Scheme::Raw, MatrixPattern::Random, 16, 300, &domain());
        let rap = matrix_congestion(Scheme::Rap, MatrixPattern::Random, 16, 300, &domain());
        assert!(
            (raw.mean() - rap.mean()).abs() < 0.2,
            "random congestion must not depend on the scheme ({} vs {})",
            raw.mean(),
            rap.mean()
        );
        // Paper Table II: 2.92 at w=16.
        assert!((raw.mean() - 2.92).abs() < 0.2);
    }

    #[test]
    fn malicious_matrix_summary() {
        let raw = matrix_malicious_congestion(Scheme::Raw, 32, 5, &domain());
        assert_eq!(raw.mean(), 32.0);
        let rap = matrix_malicious_congestion(Scheme::Rap, 32, 20, &domain());
        assert_eq!(rap.mean(), 1.0);
    }

    #[test]
    fn array4d_stride2_separates_1p_from_r1p() {
        let d = domain();
        let onep = array4d_congestion(Scheme4d::OneP, Pattern4d::Stride2, 16, 10, 4, &d);
        assert_eq!(onep.mean(), 16.0, "1P stride2 fully serializes");
        let r1p = array4d_congestion(Scheme4d::R1P, Pattern4d::Stride2, 16, 10, 4, &d);
        assert_eq!(r1p.mean(), 1.0, "R1P stride2 is conflict-free");
    }

    #[test]
    fn array4d_malicious_separates_r1p_from_3p() {
        let d = domain();
        let w = 18;
        let r1p = array4d_congestion(Scheme4d::R1P, Pattern4d::Malicious, w, 60, 2, &d);
        let threep = array4d_congestion(Scheme4d::ThreeP, Pattern4d::Malicious, w, 60, 2, &d);
        assert!(
            r1p.mean() >= 6.0,
            "R1P malicious must collide whole groups, got {}",
            r1p.mean()
        );
        assert!(
            threep.mean() < r1p.mean() / 1.5,
            "3P ({}) must resist the attack that breaks R1P ({})",
            threep.mean(),
            r1p.mean()
        );
    }

    #[test]
    fn estimates_are_reproducible() {
        let a = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 8, 50, &domain());
        let b = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 8, 50, &domain());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = matrix_congestion(Scheme::Raw, MatrixPattern::Random, 8, 0, &domain());
    }
}
