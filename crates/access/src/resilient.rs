//! Crash-safe, fault-tolerant variants of the Monte-Carlo estimators.
//!
//! [`matrix_congestion_resilient`] and [`array4d_congestion_resilient`]
//! run **exactly the same block bodies** as their plain counterparts in
//! [`crate::montecarlo`], but through `rap-resilience`'s executor:
//!
//! * completed 32-trial blocks are recorded to a checkpoint [`Ledger`] as
//!   they finish, so a killed sweep resumes by re-executing only the gap —
//!   and, because the estimate is a fold of per-block accumulators in
//!   block-index order, the resumed result is **bit-identical** to an
//!   uninterrupted run;
//! * a panicking block (injected or real) is retried with bounded seeded
//!   backoff instead of taking the process down;
//! * a [`RunBudget`] caps wall time and block count, degrading to an
//!   explicitly-marked partial estimate instead of an empty results file.
//!
//! Clean runs (no faults, no budget hits, empty ledger) return the same
//! bits as the plain estimators — the conformance tests pin this.

use crate::array4d::Pattern4d;
use crate::matrix::MatrixPattern;
use crate::montecarlo::{array4d_block, block_range, blocks_for, matrix_block};
use rap_core::multidim::Scheme4d;
use rap_core::Scheme;
use rap_resilience::{run_cell, CellRun, Ledger, RetryPolicy, RunBudget};
use rap_stats::SeedDomain;

/// How a resilient estimator should execute: where to checkpoint, how
/// hard to retry, and when to give up.
#[derive(Debug)]
pub struct ResilientConfig<'a> {
    /// Checkpoint ledger (use [`Ledger::in_memory`] to opt out of disk).
    pub ledger: &'a Ledger,
    /// Wall-clock / block-count limits.
    pub budget: RunBudget,
    /// Panic/error retry policy.
    pub retry: RetryPolicy,
}

impl<'a> ResilientConfig<'a> {
    /// Unlimited budget, default retries, checkpointing to `ledger`.
    #[must_use]
    pub fn new(ledger: &'a Ledger) -> Self {
        Self {
            ledger,
            budget: RunBudget::unlimited(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Resilient [`crate::montecarlo::matrix_congestion`]: same sample
/// streams, same merge order, plus checkpointing, retry, and budgets.
///
/// `cell` names this estimate in the ledger (it must be unique per
/// (scheme, pattern, width) within a run — the bench harness uses
/// `"<pattern>/<scheme>/w=<w>"`).
///
/// # Panics
/// Panics if `w == 0` or `trials == 0`.
#[must_use]
pub fn matrix_congestion_resilient(
    scheme: Scheme,
    pattern: MatrixPattern,
    w: usize,
    trials: u64,
    domain: &SeedDomain,
    cell: &str,
    cfg: &ResilientConfig<'_>,
) -> CellRun {
    assert!(trials > 0, "need at least one trial");
    let child = domain.child("matrix");
    run_cell(
        cell,
        blocks_for(trials),
        cfg.ledger,
        cfg.budget,
        &cfg.retry,
        |block| matrix_block(scheme, pattern, w, &child, block_range(block, trials)),
    )
}

/// Resilient [`crate::montecarlo::array4d_congestion`] (see
/// [`matrix_congestion_resilient`]).
///
/// # Panics
/// Panics if `w == 0`, `trials == 0`, or `warps_per_trial == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors `array4d_congestion`'s surface plus (cell, cfg)
pub fn array4d_congestion_resilient(
    scheme: Scheme4d,
    pattern: Pattern4d,
    w: usize,
    trials: u64,
    warps_per_trial: u32,
    domain: &SeedDomain,
    cell: &str,
    cfg: &ResilientConfig<'_>,
) -> CellRun {
    assert!(
        trials > 0 && warps_per_trial > 0,
        "need at least one sample"
    );
    let child = domain.child("array4d");
    run_cell(
        cell,
        blocks_for(trials),
        cfg.ledger,
        cfg.budget,
        &cfg.retry,
        |block| {
            array4d_block(
                scheme,
                pattern,
                w,
                warps_per_trial,
                &child,
                block_range(block, trials),
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{array4d_congestion, matrix_congestion};
    use rap_resilience::{install, FailPlan, Fault, HitSchedule};
    use std::sync::Mutex;

    // The failpoint registry is process-global; serialize the tests that
    // install plans (mirrors rap-resilience's own test discipline).
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn domain() -> SeedDomain {
        SeedDomain::new(2014)
    }

    #[test]
    fn clean_resilient_matrix_run_is_bit_identical_to_plain() {
        let _l = locked();
        let d = domain();
        let ledger = Ledger::in_memory();
        let cfg = ResilientConfig::new(&ledger);
        for (scheme, pattern, w, trials) in [
            (Scheme::Ras, MatrixPattern::Random, 16, 100u64),
            (Scheme::Rap, MatrixPattern::Diagonal, 8, 33),
            (Scheme::Raw, MatrixPattern::Stride, 8, 32),
        ] {
            let plain = matrix_congestion(scheme, pattern, w, trials, &d);
            let res = matrix_congestion_resilient(scheme, pattern, w, trials, &d, "t", &cfg);
            assert_eq!(res.stats.to_raw(), plain.to_raw(), "{scheme} {pattern}");
            assert!(!res.report.degraded());
        }
    }

    #[test]
    fn clean_resilient_array4d_run_is_bit_identical_to_plain() {
        let _l = locked();
        let d = domain();
        let ledger = Ledger::in_memory();
        let cfg = ResilientConfig::new(&ledger);
        let plain = array4d_congestion(Scheme4d::R1P, Pattern4d::Random, 16, 70, 4, &d);
        let res = array4d_congestion_resilient(
            Scheme4d::R1P,
            Pattern4d::Random,
            16,
            70,
            4,
            &d,
            "t4",
            &cfg,
        );
        assert_eq!(res.stats.to_raw(), plain.to_raw());
        assert!(!res.report.degraded());
    }

    #[test]
    fn injected_block_panics_still_converge_to_the_plain_bits() {
        let _l = locked();
        let d = domain();
        let plain = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 16, 100, &d);
        let _g = install(FailPlan::new(11).rule(
            "mc.block",
            Fault::Panic,
            HitSchedule::Rate { num: 1, den: 4 },
        ));
        let ledger = Ledger::in_memory();
        let mut cfg = ResilientConfig::new(&ledger);
        cfg.retry.max_retries = 10;
        cfg.retry.backoff_base = std::time::Duration::from_micros(10);
        let res =
            matrix_congestion_resilient(Scheme::Ras, MatrixPattern::Random, 16, 100, &d, "t", &cfg);
        assert!(!res.report.degraded(), "{:?}", res.report);
        assert!(res.report.retries > 0, "the fault plan should have fired");
        assert_eq!(res.stats.to_raw(), plain.to_raw());
    }

    #[test]
    fn block_cap_yields_a_marked_partial_estimate() {
        let _l = locked();
        let d = domain();
        let ledger = Ledger::in_memory();
        let cfg = ResilientConfig {
            ledger: &ledger,
            budget: RunBudget::unlimited().with_block_cap(1),
            retry: RetryPolicy::default(),
        };
        let res =
            matrix_congestion_resilient(Scheme::Ras, MatrixPattern::Random, 16, 100, &d, "t", &cfg);
        assert!(res.report.degraded());
        assert_eq!(res.report.skipped_cap, 3, "100 trials = 4 blocks, cap 1");
        // The surviving prefix is exactly the plain 32-trial estimate.
        let prefix = matrix_congestion(Scheme::Ras, MatrixPattern::Random, 16, 32, &d);
        assert_eq!(res.stats.to_raw(), prefix.to_raw());
    }
}
