//! Cooperative cancellation for the Monte-Carlo engine.
//!
//! A long estimate run on behalf of an online client (`rap-serve`) must
//! be abandonable mid-flight: the request's deadline passes, the client
//! disconnects, or the server starts draining. Preemption is off the
//! table (the engine crates are plain safe Rust), so cancellation is
//! **cooperative**: the caller hands the engine a [`CancelToken`], and
//! the block loops poll it between trials — the unit of work between
//! polls is one trial (`w` warps), so a cancelled request stops within
//! microseconds, not blocks.
//!
//! Determinism is preserved on the surviving prefix: a cancelled run
//! merges exactly the blocks that completed, in block-index order, so
//! any non-cancelled run remains bit-identical to the plain engine and
//! a cancelled one is an honestly-labelled partial result
//! ([`PartialStats::cancelled`]), never a silently truncated estimate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cancellation signal: an explicit flag, an optional
/// deadline, or both. Cloning is cheap and all clones observe the same
/// flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (it can still be
    /// [`cancel`](Self::cancel)led explicitly).
    #[must_use]
    pub fn never() -> Self {
        Self::default()
    }

    /// A token that fires once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Fire the token explicitly; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly or by deadline).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The outcome of a cancellable estimate: the merged statistics of every
/// block that completed, plus an honest account of what did not.
#[derive(Debug, Clone)]
pub struct PartialStats {
    /// Completed blocks merged in block-index order. When
    /// `cancelled == false` this is bit-identical to the plain engine's
    /// result for the same inputs.
    pub stats: rap_stats::OnlineStats,
    /// Blocks that ran to completion.
    pub completed_blocks: u64,
    /// Blocks the full run would have executed.
    pub total_blocks: u64,
    /// True when the token fired before every block completed.
    pub cancelled: bool,
}

impl PartialStats {
    /// True when the estimate is built from fewer blocks than requested.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.cancelled || self.completed_blocks < self.total_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_is_quiet_until_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn deadline_token_fires_by_itself() {
        let now = Instant::now();
        let past = now.checked_sub(Duration::from_millis(1)).unwrap_or(now);
        let t = CancelToken::with_deadline(past);
        assert!(t.is_cancelled(), "past deadline fires immediately");
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_hours(1));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn partial_stats_degradation_accounting() {
        let full = PartialStats {
            stats: rap_stats::OnlineStats::new(),
            completed_blocks: 4,
            total_blocks: 4,
            cancelled: false,
        };
        assert!(!full.degraded());
        let cut = PartialStats {
            completed_blocks: 2,
            cancelled: true,
            ..full.clone()
        };
        assert!(cut.degraded());
    }
}
