//! # rap-access — warp access pattern generators
//!
//! Generators for every memory access pattern the paper evaluates:
//!
//! * [`matrix`] — contiguous / stride / diagonal / random / broadcast
//!   accesses to a `w × w` matrix (paper §III, Figure 4), plus the
//!   mapping-aware adversary of §I;
//! * [`array4d`] — the `w⁴`-array patterns of §VII (contiguous,
//!   stride1..3, random) and the per-scheme malicious adversaries of
//!   Table IV, including the index-permutation grouping attack against
//!   R1P;
//! * [`montecarlo`] — reproducible expected-congestion estimators, the
//!   engine behind the Table II and Table IV reproductions;
//! * [`resilient`] — the same estimators run through `rap-resilience`'s
//!   checkpoint/retry/budget executor, for crash-safe sweeps that resume
//!   to bit-identical results;
//! * [`cancel`] — cooperative cancellation ([`CancelToken`]) polled
//!   inside the Monte-Carlo block loops, so an online caller
//!   (`rap-serve`) can enforce per-request deadlines and get explicitly
//!   marked partial estimates instead of runaway work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array4d;
pub mod cancel;
pub mod matrix;
pub mod montecarlo;
pub mod resilient;
pub mod scratch;

pub use array4d::{Coord4, Pattern4d};
pub use cancel::{CancelToken, PartialStats};
pub use matrix::{Coord, MatrixPattern};
pub use scratch::AccessScratch;
