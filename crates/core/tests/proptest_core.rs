//! Property tests for the core mappings and theory.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rap_core::congestion::{congestion, BankLoads};
use rap_core::multidim::{Mapping4d, Scheme4d};
use rap_core::theory;
use rap_core::{MatrixMapping, Permutation, RowShift, Scheme};

fn scheme4d_strategy() -> impl Strategy<Value = Scheme4d> {
    prop_oneof![
        Just(Scheme4d::Raw),
        Just(Scheme4d::Ras),
        Just(Scheme4d::OneP),
        Just(Scheme4d::R1P),
        Just(Scheme4d::ThreeP),
        Just(Scheme4d::WSquaredP),
        Just(Scheme4d::OnePlusWSquaredR),
    ]
}

proptest! {
    /// Composition with the inverse is the identity, both ways, for any
    /// random permutation.
    #[test]
    fn permutation_group_laws(seed in any::<u64>(), len in 1usize..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = Permutation::random(&mut rng, len);
        let q = Permutation::random(&mut rng, len);
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
        // (p ∘ q)⁻¹ = q⁻¹ ∘ p⁻¹
        prop_assert_eq!(
            p.compose(&q).inverse(),
            q.inverse().compose(&p.inverse())
        );
    }

    /// Cycle lengths always partition the domain.
    #[test]
    fn cycles_partition(seed in any::<u64>(), len in 0usize..150) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = Permutation::random(&mut rng, len);
        prop_assert_eq!(p.cycle_lengths().iter().sum::<usize>(), len);
        prop_assert!(p.fixed_points() <= len);
    }

    /// Every row of every scheme is a rotation: the multiset of logical
    /// columns in each physical row is exactly {0..w}.
    #[test]
    fn rows_are_rotations(seed in any::<u64>(), w in 1usize..40, scheme_idx in 0usize..3) {
        let scheme = Scheme::all()[scheme_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = RowShift::of_scheme(scheme, &mut rng, w);
        for i in 0..w as u32 {
            let mut cols: Vec<u32> = (0..w as u32)
                .map(|j| m.address(i, j) % w as u32)
                .collect();
            cols.sort_unstable();
            let expected: Vec<u32> = (0..w as u32).collect();
            prop_assert_eq!(&cols, &expected, "row {} of {}", i, scheme);
        }
    }

    /// The congestion of a warp access equals the max over banks computed
    /// naively with a HashMap.
    #[test]
    fn congestion_matches_naive(addrs in prop::collection::vec(0u64..10_000, 0..80), w in 1usize..70) {
        let fast = congestion(w, &addrs);
        let mut unique: Vec<u64> = addrs.clone();
        unique.sort_unstable();
        unique.dedup();
        let mut counts = std::collections::HashMap::new();
        for a in unique {
            *counts.entry(a % w as u64).or_insert(0u32) += 1;
        }
        let naive = counts.values().copied().max().unwrap_or(0);
        prop_assert_eq!(fast, naive);
    }

    /// BankLoads invariants: loads sum to unique count; busy banks ≤ w.
    #[test]
    fn bank_loads_invariants(addrs in prop::collection::vec(0u64..4096, 1..64), w in 1usize..40) {
        let loads = BankLoads::analyze(w, &addrs);
        let sum: u32 = loads.loads().iter().sum();
        prop_assert_eq!(sum as usize, loads.unique_requests());
        prop_assert!(loads.busy_banks() <= w);
        prop_assert!(loads.congestion() <= loads.unique_requests() as u32);
    }

    /// Every 4-D scheme keeps the rotation inside the row and is
    /// injective on a sampled sub-box.
    #[test]
    fn mapping4d_row_locality(seed in any::<u64>(), w in 2usize..12, scheme in scheme4d_strategy()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = Mapping4d::new(scheme, &mut rng, w).unwrap();
        let wu = w as u32;
        let mut seen = std::collections::HashSet::new();
        for d3 in 0..wu.min(4) {
            for d2 in 0..wu.min(4) {
                for d1 in 0..wu {
                    for d0 in 0..wu {
                        let a = m.address(d3, d2, d1, d0);
                        // row base is preserved
                        let row = (u64::from(d3) * u64::from(wu) + u64::from(d2))
                            * u64::from(wu) + u64::from(d1) ;
                        prop_assert_eq!(a / u64::from(wu), row);
                        prop_assert!(seen.insert(a));
                    }
                }
            }
        }
    }

    /// The Chernoff tail is a probability and decreasing in δ.
    #[test]
    fn chernoff_tail_behaves(mu in 0.01f64..4.0, delta in 0.0f64..50.0) {
        let t = theory::chernoff_tail(mu, delta);
        prop_assert!((0.0..=1.0).contains(&t));
        let t2 = theory::chernoff_tail(mu, delta + 1.0);
        prop_assert!(t2 <= t + 1e-12);
    }

    /// Theorem 2's bound grows with w but sub-linearly. (Only from w = 16
    /// up: for tiny w the `ln ln w` denominator is below 1 and the
    /// asymptotic expression is not yet monotone.)
    #[test]
    fn theorem2_bound_sublinear(w_exp in 4u32..12) {
        let w = 1usize << w_exp;
        let b1 = theory::theorem2_expected_bound(w);
        let b2 = theory::theorem2_expected_bound(w * 2);
        prop_assert!(b2 > b1, "bound must grow");
        prop_assert!(b2 < b1 * 1.5, "but far slower than w");
    }

    /// XOR swizzle and padding are injective with conflict-free rows and
    /// columns for every valid width, and the blind adversary always
    /// achieves full congestion against them.
    #[test]
    fn modern_baseline_invariants(w_exp in 1u32..7, bank_sel in any::<u32>()) {
        use rap_core::modern::{blind_adversary, XorSwizzle, Padded};
        use rap_core::congestion::congestion;
        let w = 1usize << w_exp;
        let bank = bank_sel % w as u32;
        for scheme in [Scheme::Xor, Scheme::Padded] {
            let mapping: Box<dyn MatrixMapping> = match scheme {
                Scheme::Xor => Box::new(XorSwizzle::new(w).unwrap()),
                _ => Box::new(Padded::new(w).unwrap()),
            };
            // bijective into storage
            let mut seen = std::collections::HashSet::new();
            for i in 0..w as u32 {
                for j in 0..w as u32 {
                    let a = mapping.address(i, j);
                    prop_assert!((a as usize) < mapping.storage_words());
                    prop_assert!(seen.insert(a));
                }
            }
            // stride conflict-free
            let col: Vec<u64> = (0..w as u32)
                .map(|i| u64::from(mapping.address(i, bank % w as u32)))
                .collect();
            prop_assert_eq!(congestion(w, &col), 1);
            // blind adversary wins
            let warp = blind_adversary(scheme, w, bank).expect("deterministic");
            let addrs: Vec<u64> = warp
                .iter()
                .map(|&(i, j)| u64::from(mapping.address(i, j)))
                .collect();
            prop_assert_eq!(congestion(w, &addrs), w as u32);
        }
    }

    /// Serde round-trip for RowShift (the type persisted in experiment
    /// records).
    #[test]
    fn rowshift_serde_roundtrip(seed in any::<u64>(), w in 1usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = RowShift::rap(&mut rng, w);
        let json = serde_json::to_string(&m).unwrap();
        let back: RowShift = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(m, back);
    }

    /// Serde rejects corrupted permutations (the validated constructor is
    /// enforced through deserialization too).
    #[test]
    fn permutation_serde_validates(len in 2usize..20) {
        // A table with a duplicate is rejected.
        let mut bad: Vec<u32> = (0..len as u32).collect();
        bad[1] = bad[0];
        let json = serde_json::to_string(&bad).unwrap();
        let parsed: Result<Permutation, _> = serde_json::from_str(&json);
        prop_assert!(parsed.is_err());
        // A valid one round-trips.
        let mut rng = SmallRng::seed_from_u64(len as u64);
        let p = Permutation::random(&mut rng, len);
        let json = serde_json::to_string(&p).unwrap();
        let back: Permutation = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }
}
