//! Boundary-width regression tests for the congestion kernels.
//!
//! The fast-path dispatch has two handoffs — `width ≤ 64 && len ≤ 64`
//! (128-slot stack table), `width ≤ 128 && len ≤ 128` (256-slot table),
//! then the allocating general path — so widths and lane counts 63/64/65
//! and 127/128/129 are exactly where a dispatch or table-sizing bug would
//! live. These tests pin the handoff against the allocating
//! `BankLoads::analyze` reference, with duplicate-heavy warps that stress
//! the open-addressing CRCW dedup at maximum table occupancy.

use rap_core::congestion::{congestion, CongestionScratch};
use rap_core::BankLoads;

/// Deterministic pseudo-random address stream (splitmix-style) so the
/// cases reproduce without a RNG dependency.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A warp of `len` addresses drawn from a pool of `pool` distinct values
/// (small pools force heavy CRCW merging).
fn duplicate_heavy(seed: u64, len: usize, pool: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| mix(seed ^ i) % pool.max(1))
        .collect()
}

const BOUNDARY_WIDTHS: [usize; 8] = [63, 64, 65, 126, 127, 128, 129, 130];
const BOUNDARY_LENS: [usize; 9] = [0, 1, 63, 64, 65, 127, 128, 129, 256];

/// Every (width, len) combination straddling both handoffs must agree
/// with the allocating reference on all three public entry points.
#[test]
fn boundary_handoff_matches_reference() {
    let mut scratch = CongestionScratch::new();
    for &width in &BOUNDARY_WIDTHS {
        for &len in &BOUNDARY_LENS {
            for pool in [1u64, 2, 7, width as u64, 4 * width as u64, u64::MAX] {
                let addrs = duplicate_heavy(width as u64 * 1000 + len as u64, len, pool);
                let reference = BankLoads::analyze(width, &addrs).congestion();
                assert_eq!(
                    congestion(width, &addrs),
                    reference,
                    "free fn at width={width} len={len} pool={pool}"
                );
                assert_eq!(
                    scratch.congestion(width, &addrs),
                    reference,
                    "scratch at width={width} len={len} pool={pool}"
                );
            }
        }
    }
}

/// The 256-slot table at len = 128 is exactly half full — the tightest
/// occupancy the ≤128 fast path ever sees. All-distinct addresses force
/// the longest probe chains; all-equal addresses force the most merges.
#[test]
fn table_half_full_extremes() {
    let mut scratch = CongestionScratch::new();
    for width in [127usize, 128] {
        // 128 pairwise-distinct addresses in one bank: congestion 128.
        let one_bank: Vec<u64> = (0..128u64).map(|i| i * width as u64).collect();
        assert_eq!(scratch.congestion(width, &one_bank), 128);
        assert_eq!(congestion(width, &one_bank), 128);

        // 128 copies of one address: a single merged request.
        let broadcast = vec![42u64; 128];
        assert_eq!(scratch.congestion(width, &broadcast), 1);

        // 64 distinct values each appearing twice: per-bank loads must
        // count each value once.
        let pairs: Vec<u64> = (0..64u64)
            .flat_map(|i| [i * width as u64, i * width as u64])
            .collect();
        assert_eq!(scratch.congestion(width, &pairs), 64);
    }
}

/// One lane past each handoff (len 65 at width ≤ 64, len 129 at width
/// ≤ 128) must route to the next path and still match the reference.
#[test]
fn one_past_the_table_boundary() {
    let mut scratch = CongestionScratch::new();
    for (width, len) in [(64usize, 65usize), (33, 65), (128, 129), (65, 129)] {
        let addrs = duplicate_heavy(9000 + width as u64, len, 3 * width as u64);
        let reference = BankLoads::analyze(width, &addrs).congestion();
        assert_eq!(
            scratch.congestion(width, &addrs),
            reference,
            "width={width} len={len}"
        );
        assert_eq!(congestion(width, &addrs), reference);
    }
}

/// Interleaving widths across calls must not leak state between the
/// stack paths and the reused heap buffers of the general path.
#[test]
fn scratch_reuse_across_width_changes() {
    let mut scratch = CongestionScratch::new();
    let widths = [129usize, 4, 256, 64, 130, 1, 127, 128, 65];
    for round in 0..8u64 {
        for &width in &widths {
            for len in [width / 2, width, 2 * width] {
                let addrs = duplicate_heavy(round * 31 + width as u64, len, 2 * width as u64 + 1);
                assert_eq!(
                    scratch.congestion(width, &addrs),
                    BankLoads::analyze(width, &addrs).congestion(),
                    "round={round} width={width} len={len}"
                );
            }
        }
    }
}
