//! Modern deterministic baselines: XOR swizzling and row padding.
//!
//! The RAP paper predates today's standard practice; production GPU
//! libraries (CUTLASS, cuDNN kernels) avoid bank conflicts with two
//! *deterministic* layouts:
//!
//! * [`XorSwizzle`] — element `(i, j)` stored at physical column
//!   `j ⊕ (i mod w)` (power-of-two `w`). Rows are permuted by an XOR,
//!   which, like RAP's rotation, makes both contiguous and stride access
//!   conflict-free — with zero stored state and two ALU ops;
//! * [`Padded`] — the classic `+1` trick: a `w × (w+1)` physical
//!   allocation so that consecutive rows start in consecutive banks.
//!   Conflict-free for contiguous and stride at the cost of `w` wasted
//!   words per matrix.
//!
//! What they give up relative to RAP is exactly what the paper's
//! randomness buys: **worst-case guarantees against arbitrary access**.
//! Both layouts are fixed and public, so an adversarial (or simply
//! unlucky, data-dependent) access pattern can aim every request at one
//! bank *without any secret to learn* — the `modern_baselines` bench
//! measures this. RAP's `O(log w / log log w)` expectation holds for
//! every pattern because the adversary cannot know `σ`.

use crate::error::CoreError;
use crate::mapping::{MatrixMapping, Scheme};
use serde::{Deserialize, Serialize};

/// The XOR swizzle layout: `(i, j) ↦ i·w + (j ⊕ (i mod w))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorSwizzle {
    width: u32,
}

impl XorSwizzle {
    /// Build for a power-of-two width (XOR must stay inside the row).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidWidth`] if `width` is not a power of
    /// two ≥ 2.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        if width < 2 || !width.is_power_of_two() {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "XOR swizzle requires a power-of-two width ≥ 2",
            });
        }
        Ok(Self {
            width: width as u32,
        })
    }
}

impl MatrixMapping for XorSwizzle {
    fn width(&self) -> usize {
        self.width as usize
    }

    #[inline]
    fn address(&self, i: u32, j: u32) -> u32 {
        debug_assert!(i < self.width && j < self.width);
        i * self.width + (j ^ (i % self.width))
    }

    fn scheme(&self) -> Scheme {
        Scheme::Xor
    }
}

/// The padded layout: `(i, j) ↦ i·(w+1) + j` — physical rows are `w+1`
/// words, so row starts drift one bank per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Padded {
    width: u32,
}

impl Padded {
    /// Build for any positive width.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidWidth`] if `width == 0`.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        if width == 0 {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "width must be positive",
            });
        }
        Ok(Self {
            width: width as u32,
        })
    }

    /// Wasted words relative to the in-place schemes (`w`, one per row,
    /// minus the final row's pad which is never allocated).
    #[must_use]
    pub fn overhead_words(&self) -> usize {
        self.width as usize - 1
    }
}

impl MatrixMapping for Padded {
    fn width(&self) -> usize {
        self.width as usize
    }

    #[inline]
    fn address(&self, i: u32, j: u32) -> u32 {
        debug_assert!(i < self.width && j < self.width);
        i * (self.width + 1) + j
    }

    fn scheme(&self) -> Scheme {
        Scheme::Padded
    }

    fn storage_words(&self) -> usize {
        // Last row needs no trailing pad.
        (self.width as usize) * (self.width as usize + 1) - 1
    }
}

/// Construct any of the five schemes (paper three + modern two) behind a
/// trait object, drawing randomness where the scheme needs it.
///
/// # Panics
/// Panics if `width` is invalid for the scheme (zero; non-power-of-two
/// for XOR).
#[must_use]
pub fn build_mapping<R: rand::Rng + ?Sized>(
    scheme: Scheme,
    rng: &mut R,
    width: usize,
) -> Box<dyn MatrixMapping> {
    match scheme {
        Scheme::Raw | Scheme::Ras | Scheme::Rap => {
            Box::new(crate::mapping::RowShift::of_scheme(scheme, rng, width))
        }
        Scheme::Xor => Box::new(XorSwizzle::new(width).expect("valid width for XOR")),
        Scheme::Padded => Box::new(Padded::new(width).expect("valid width")),
    }
}

/// The instance-blind adversary against a **deterministic** scheme: with
/// the layout public, compute `w` logical cells whose physical addresses
/// share bank `bank` — no secrets required. Returns `None` for
/// randomized schemes (the blind adversary cannot solve them; that is
/// RAP's entire point).
#[must_use]
pub fn blind_adversary(scheme: Scheme, width: usize, bank: u32) -> Option<Vec<(u32, u32)>> {
    let w = width as u32;
    match scheme {
        // RAW: a column.
        Scheme::Raw => Some((0..w).map(|i| (i, bank)).collect()),
        // XOR: in row i, physical column c holds logical j = c ⊕ i; pick
        // the physical column in each row whose address is in `bank`.
        Scheme::Xor => Some(
            (0..w)
                .map(|i| {
                    let phys_col = bank; // i·w + phys_col ≡ phys_col (mod w)
                    (i, phys_col ^ (i % w))
                })
                .collect(),
        ),
        // Padded: address i(w+1)+j ≡ (i + j) mod w when w | (i(w+1)+j −
        // (i+j))… solve (i·(w+1) + j) mod w = bank ⇒ j ≡ bank − i (mod w),
        // valid whenever that j < w.
        Scheme::Padded => Some(
            (0..w)
                .map(|i| {
                    let target = (bank + w - (i * (w + 1)) % w) % w;
                    (i, target)
                })
                .collect(),
        ),
        // Randomized schemes: blind adversaries are reduced to guessing.
        Scheme::Ras | Scheme::Rap => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::congestion;
    use std::collections::HashSet;

    fn all_addresses(m: &dyn MatrixMapping) -> Vec<u32> {
        let w = m.width() as u32;
        (0..w)
            .flat_map(|i| (0..w).map(move |j| (i, j)))
            .map(|(i, j)| m.address(i, j))
            .collect()
    }

    #[test]
    fn xor_is_bijective_and_in_bounds() {
        for w in [2usize, 4, 8, 16, 32, 64] {
            let m = XorSwizzle::new(w).unwrap();
            let addrs = all_addresses(&m);
            let set: HashSet<u32> = addrs.iter().copied().collect();
            assert_eq!(set.len(), w * w);
            assert!(addrs.iter().all(|&a| (a as usize) < m.storage_words()));
            assert_eq!(m.storage_words(), w * w, "XOR is in-place");
        }
    }

    #[test]
    fn xor_rejects_bad_widths() {
        assert!(XorSwizzle::new(0).is_err());
        assert!(XorSwizzle::new(1).is_err());
        assert!(XorSwizzle::new(12).is_err());
    }

    #[test]
    fn xor_contiguous_and_stride_conflict_free() {
        let w = 32;
        let m = XorSwizzle::new(w).unwrap();
        for fixed in 0..w as u32 {
            let row: Vec<u64> = (0..w as u32)
                .map(|j| u64::from(m.address(fixed, j)))
                .collect();
            assert_eq!(congestion(w, &row), 1, "row {fixed}");
            let col: Vec<u64> = (0..w as u32)
                .map(|i| u64::from(m.address(i, fixed)))
                .collect();
            assert_eq!(congestion(w, &col), 1, "column {fixed}");
        }
    }

    #[test]
    fn padded_is_injective_and_sized() {
        for w in [1usize, 2, 5, 32] {
            let m = Padded::new(w).unwrap();
            let addrs = all_addresses(&m);
            let set: HashSet<u32> = addrs.iter().copied().collect();
            assert_eq!(set.len(), w * w);
            assert!(addrs.iter().all(|&a| (a as usize) < m.storage_words()));
            assert_eq!(m.storage_words(), w * (w + 1) - 1);
        }
    }

    #[test]
    fn padded_contiguous_and_stride_conflict_free() {
        let w = 32;
        let m = Padded::new(w).unwrap();
        for fixed in 0..w as u32 {
            let row: Vec<u64> = (0..w as u32)
                .map(|j| u64::from(m.address(fixed, j)))
                .collect();
            assert_eq!(congestion(w, &row), 1);
            let col: Vec<u64> = (0..w as u32)
                .map(|i| u64::from(m.address(i, fixed)))
                .collect();
            assert_eq!(congestion(w, &col), 1);
        }
    }

    #[test]
    fn padded_overhead_accounting() {
        let m = Padded::new(32).unwrap();
        assert_eq!(m.overhead_words(), 31);
        assert_eq!(m.storage_words() - 32 * 32, 31);
    }

    /// The headline: blind adversaries defeat every deterministic scheme
    /// with full congestion, but do not exist for RAS/RAP.
    #[test]
    fn blind_adversary_cracks_deterministic_schemes() {
        let w = 32;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        use rand::SeedableRng;
        for scheme in [Scheme::Raw, Scheme::Xor, Scheme::Padded] {
            let mapping = build_mapping(scheme, &mut rng, w);
            for bank in [0u32, 13, 31] {
                let warp = blind_adversary(scheme, w, bank).expect("deterministic");
                let addrs: Vec<u64> = warp
                    .iter()
                    .map(|&(i, j)| u64::from(mapping.address(i, j)))
                    .collect();
                assert_eq!(
                    congestion(w, &addrs),
                    w as u32,
                    "{scheme}: blind adversary must fully serialize bank {bank}"
                );
            }
        }
        assert!(blind_adversary(Scheme::Rap, w, 0).is_none());
        assert!(blind_adversary(Scheme::Ras, w, 0).is_none());
    }

    #[test]
    fn build_mapping_covers_all_schemes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        for scheme in Scheme::extended() {
            let m = build_mapping(scheme, &mut rng, 16);
            assert_eq!(m.scheme(), scheme);
            assert_eq!(m.width(), 16);
        }
    }
}
