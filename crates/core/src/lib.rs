//! # rap-core — the Random Address Permute-Shift technique
//!
//! Rust implementation of the core contribution of
//!
//! > Koji Nakano, Susumu Matsumae, Yasuaki Ito, *Random Address
//! > Permute-Shift Technique for the Shared Memory on GPUs*, ICPP 2014.
//!
//! The shared memory of a GPU streaming multiprocessor is split into `w`
//! banks; a warp of `w` threads that sends two or more requests to the same
//! bank **serializes**. The paper's RAP technique stores a `w × w` matrix
//! with each row `i` rotated by `σ(i)` for a single uniformly random
//! permutation `σ`, which guarantees:
//!
//! * **contiguous** (row) and **stride** (column) access are *always*
//!   conflict-free, and
//! * *any* access — including adversarial ones — has expected congestion
//!   `O(log w / log log w)` (Theorem 2).
//!
//! ## Module map
//!
//! * [`permutation`] — validated random permutations (Fisher–Yates);
//! * [`mapping`] — the RAW / RAS / RAP matrix mappings behind the
//!   [`MatrixMapping`] trait;
//! * [`congestion`] — the congestion metric with CRCW merge semantics;
//! * [`packed`] — the Figure-7 register packing of the shift table;
//! * [`multidim`] — the §VII extensions (1P, R1P, 3P, w²P, 1P+w²R) for
//!   `w⁴` arrays;
//! * [`nd`] — generic `wⁿ` generalization of 3P;
//! * [`theory`] — Chernoff machinery, Theorem 2's explicit bound, and the
//!   qualitative Tables I and IV.
//!
//! ## Quick example
//!
//! ```
//! use rap_core::{congestion, MatrixMapping, RowShift};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let w = 32;
//! let rap = RowShift::rap(&mut rng, w);
//! let raw = RowShift::raw(w);
//!
//! // Column (stride) access: thread i reads A[i]\[7\].
//! let col = |m: &dyn MatrixMapping| {
//!     (0..w as u32).map(|i| u64::from(m.address(i, 7))).collect::<Vec<_>>()
//! };
//!
//! assert_eq!(congestion::congestion(w, &col(&raw)), 32); // fully serialized
//! assert_eq!(congestion::congestion(w, &col(&rap)), 1);  // conflict-free
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod diagnostics;
pub mod error;
pub mod mapping;
pub mod modern;
pub mod multidim;
pub mod nd;
pub mod packed;
pub mod permutation;
pub mod theory;

pub use congestion::{bank_of, BankLoads, CompactCongestion, CongestionScratch};
pub use error::CoreError;
pub use mapping::{ComposedRowShift, MatrixMapping, RowShift, Scheme};
pub use modern::{build_mapping, Padded, XorSwizzle};
pub use multidim::{Mapping4d, Scheme4d};
pub use nd::{MappingNd, SchemeNd};
pub use packed::PackedShifts;
pub use permutation::Permutation;
