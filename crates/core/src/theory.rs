//! Theoretical congestion bounds (paper §IV) and the qualitative
//! classifications of Tables I and IV.
//!
//! The paper's Theorem 2 states that under RAP the congestion of *any*
//! warp access is `O(log w / log log w)` in expectation. The proof splits
//! the warp into two half-warps and applies a Chernoff bound (Theorem 3)
//! per bank:
//!
//! * Lemma 4: for one bank and one half-warp,
//!   `Pr[X ≥ T] ≤ 1/w²` with threshold `T = 2e·ln w / ln ln w`
//!   (the mean `μ = E[X] ≤ 1`, and `(1+δ) = T` makes the Chernoff exponent
//!   at most `−2 ln w`);
//! * union bound over `w` banks: `Pr[congestion ≥ T] ≤ 1/w`;
//! * therefore `E[half-warp congestion] ≤ T + (w/2)·(1/w) = T + 1/2`, and a
//!   full warp is at most the sum of its halves:
//!   `E[congestion] ≤ 2T + 1`.
//!
//! These bounds are *asymptotic*; for practical `w` the measured congestion
//! (Table II: ~3.5 at `w = 32`) is far below them. The `malicious_bound`
//! bench quantifies the slack.

use serde::{Deserialize, Serialize};
use std::f64::consts::E;

/// `ln w / ln ln w` — the balls-into-bins max-load growth rate.
///
/// # Panics
/// Panics if `w < 3` (for `w ≤ 2`, `ln ln w ≤ 0` and the expression is
/// meaningless).
#[must_use]
pub fn log_ratio(w: usize) -> f64 {
    assert!(w >= 3, "log_ratio requires w ≥ 3, got {w}");
    let lw = (w as f64).ln();
    lw / lw.ln()
}

/// Lemma 4's threshold `T = 2e · ln w / ln ln w`.
///
/// # Panics
/// Panics if `w < 3`.
#[must_use]
pub fn lemma4_threshold(w: usize) -> f64 {
    2.0 * E * log_ratio(w)
}

/// Theorem 2's explicit expected-congestion bound for a full warp:
/// `E[congestion] ≤ 2T + 1` with `T` from [`lemma4_threshold`].
///
/// ```
/// // At w = 32 the bound is ~31.3 — loose (the measured expectation is
/// // ~3.5), but finite and sub-logarithmic in growth.
/// let b = rap_core::theory::theorem2_expected_bound(32);
/// assert!(b > 30.0 && b < 32.0);
/// ```
///
/// # Panics
/// Panics if `w < 3`.
#[must_use]
pub fn theorem2_expected_bound(w: usize) -> f64 {
    2.0 * lemma4_threshold(w) + 1.0
}

/// The Chernoff tail `Pr[X ≥ (1+δ)μ] ≤ (e^δ / (1+δ)^{1+δ})^μ`
/// (paper Theorem 3, from Motwani & Raghavan), evaluated in the log domain
/// for numerical stability.
///
/// # Panics
/// Panics if `mu < 0` or `delta < 0`.
#[must_use]
pub fn chernoff_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && delta >= 0.0, "chernoff_tail needs μ, δ ≥ 0");
    if mu == 0.0 {
        return 1.0; // the bound is vacuous at μ = 0
    }
    let one_plus = 1.0 + delta;
    let ln_bound = mu * (delta - one_plus * one_plus.ln());
    ln_bound.exp().min(1.0)
}

/// The per-bank tail probability promised by Lemma 4:
/// `Pr[X ≥ T] ≤ chernoff_tail(1, T−1)`, which the lemma shows is `≤ w⁻²`.
///
/// # Panics
/// Panics if `w < 3`.
#[must_use]
pub fn lemma4_tail(w: usize) -> f64 {
    chernoff_tail(1.0, lemma4_threshold(w) - 1.0)
}

/// Qualitative congestion class of a (scheme, access pattern) pair, as the
/// paper tabulates in Tables I and IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionClass {
    /// Deterministically conflict-free (congestion exactly 1).
    One,
    /// `Θ(log w / log log w)` expected (balls-into-bins max load).
    MaxLoad,
    /// R1P under a scheme-aware adversary:
    /// `6·Θ(log(w/6) / log log(w/6))` expected.
    GroupedMaxLoad,
    /// Worst case `w`: the whole warp serializes on one bank.
    Full,
}

impl CongestionClass {
    /// A numeric *reference scale* for the class at width `w` — exact for
    /// [`One`](Self::One) and [`Full`](Self::Full), the leading-order
    /// asymptote otherwise. Used by the bench harness to sanity-order
    /// measured values; not a rigorous bound.
    ///
    /// # Panics
    /// Panics if `w < 3` (or `w < 18` for [`GroupedMaxLoad`](Self::GroupedMaxLoad),
    /// which needs `w/6 ≥ 3`).
    #[must_use]
    pub fn reference_scale(self, w: usize) -> f64 {
        match self {
            CongestionClass::One => 1.0,
            CongestionClass::MaxLoad => log_ratio(w),
            CongestionClass::GroupedMaxLoad => 6.0 * log_ratio(w / 6),
            CongestionClass::Full => w as f64,
        }
    }

    /// Symbol used when printing the qualitative tables.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            CongestionClass::One => "1",
            CongestionClass::MaxLoad => "Θ(log w/log log w)",
            CongestionClass::GroupedMaxLoad => "6Θ(log(w/6)/log log(w/6))",
            CongestionClass::Full => "w",
        }
    }
}

/// Row labels of Table I.
pub const TABLE1_ROWS: [&str; 3] = ["Any", "Contiguous", "Stride"];

/// Table I of the paper: congestion classes of RAW / RAS / RAP for
/// arbitrary, contiguous, and stride access. Returned row-major in
/// [`TABLE1_ROWS`] order with columns (RAW, RAS, RAP).
#[must_use]
pub fn table1() -> [[CongestionClass; 3]; 3] {
    use CongestionClass::{Full, MaxLoad, One};
    [
        // Any access: RAW can be fully malicious; RAS and RAP are max-load.
        [Full, MaxLoad, MaxLoad],
        // Contiguous: conflict-free everywhere.
        [One, One, One],
        // Stride: RAW fully serializes; RAS is max-load; RAP is 1.
        [Full, MaxLoad, One],
    ]
}

/// Access-pattern labels of Table IV, in paper order.
pub const TABLE4_ROWS: [&str; 6] = [
    "Contiguous",
    "Stride1",
    "Stride2",
    "Stride3",
    "Random",
    "Malicious",
];

/// Table IV of the paper: congestion classes for a `w⁴` array under
/// RAW, RAS, 1P, R1P, 3P, w²P, 1P+w²R (columns, in that order).
#[must_use]
pub fn table4() -> [[CongestionClass; 7]; 6] {
    use CongestionClass::{Full, GroupedMaxLoad, MaxLoad, One};
    [
        // Contiguous
        [One, One, One, One, One, One, One],
        // Stride1 (d1 varies): every permutation scheme is conflict-free.
        [Full, MaxLoad, One, One, One, One, One],
        // Stride2 (d2 varies)
        [Full, MaxLoad, Full, One, One, MaxLoad, MaxLoad],
        // Stride3 (d3 varies)
        [Full, MaxLoad, Full, One, One, MaxLoad, MaxLoad],
        // Random
        [
            MaxLoad, MaxLoad, MaxLoad, MaxLoad, MaxLoad, MaxLoad, MaxLoad,
        ],
        // Malicious (scheme-aware adversary)
        [
            Full,
            MaxLoad,
            Full,
            GroupedMaxLoad,
            MaxLoad,
            MaxLoad,
            MaxLoad,
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_ratio_values() {
        // ln 32 / ln ln 32 = 3.4657 / 1.2432 ≈ 2.7878
        assert!((log_ratio(32) - 2.7878).abs() < 1e-3);
        assert!(log_ratio(256) > log_ratio(32));
    }

    #[test]
    #[should_panic(expected = "requires w ≥ 3")]
    fn log_ratio_rejects_small_w() {
        let _ = log_ratio(2);
    }

    #[test]
    fn chernoff_tail_monotone_in_delta() {
        let a = chernoff_tail(1.0, 1.0);
        let b = chernoff_tail(1.0, 2.0);
        let c = chernoff_tail(1.0, 10.0);
        assert!(a > b && b > c);
        assert!(a <= 1.0 && c > 0.0);
    }

    #[test]
    fn chernoff_tail_vacuous_at_zero_mu() {
        assert_eq!(chernoff_tail(0.0, 5.0), 1.0);
    }

    #[test]
    fn chernoff_known_value() {
        // μ=1, δ=1: e / 4 ≈ 0.6796
        assert!((chernoff_tail(1.0, 1.0) - E / 4.0).abs() < 1e-12);
    }

    /// The heart of Lemma 4: the tail at the threshold is at most `w⁻²`
    /// for every width used anywhere in the paper or the benches.
    #[test]
    fn lemma4_tail_is_below_inverse_w_squared() {
        for w in [4usize, 8, 16, 32, 64, 128, 256, 1024, 4096] {
            let tail = lemma4_tail(w);
            let target = (w as f64).powi(-2);
            assert!(
                tail <= target,
                "w={w}: Chernoff tail {tail:.3e} exceeds w⁻² = {target:.3e}"
            );
        }
    }

    #[test]
    fn theorem2_bound_is_finite_and_grows_slowly() {
        let b32 = theorem2_expected_bound(32);
        let b256 = theorem2_expected_bound(256);
        let b4096 = theorem2_expected_bound(4096);
        assert!(b32 > 1.0 && b32 < 64.0);
        assert!(b256 > b32);
        // sub-logarithmic growth: quadrupling w² only adds a few units
        assert!(b4096 < 2.0 * b32, "bound must grow much slower than w");
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        use CongestionClass as C;
        // Stride row: RAW = w, RAS = max-load, RAP = 1.
        assert_eq!(t[2], [C::Full, C::MaxLoad, C::One]);
        // Contiguous row all 1.
        assert!(t[1].iter().all(|&c| c == C::One));
        // Any row: RAW can be malicious.
        assert_eq!(t[0][0], C::Full);
        assert_eq!(t[0][2], C::MaxLoad);
    }

    #[test]
    fn table4_key_cells() {
        let t = table4();
        use CongestionClass as C;
        // 1P fails stride2/3 (column index 2).
        assert_eq!(t[2][2], C::Full);
        assert_eq!(t[3][2], C::Full);
        // R1P (col 3) is clean on all strides but weak against malicious.
        assert_eq!(t[1][3], C::One);
        assert_eq!(t[2][3], C::One);
        assert_eq!(t[5][3], C::GroupedMaxLoad);
        // 3P (col 4) is the paper's recommendation: strides 1, malicious
        // max-load.
        assert!(t[1][4] == C::One && t[2][4] == C::One && t[3][4] == C::One);
        assert_eq!(t[5][4], C::MaxLoad);
        // Random row is max-load for every scheme.
        assert!(t[4].iter().all(|&c| c == C::MaxLoad));
    }

    #[test]
    fn reference_scales_order_correctly_at_w32() {
        use CongestionClass as C;
        let one = C::One.reference_scale(32);
        let ml = C::MaxLoad.reference_scale(32);
        let full = C::Full.reference_scale(32);
        assert!(one < ml && ml < full);
        assert_eq!(one, 1.0);
        assert_eq!(full, 32.0);
    }

    #[test]
    fn symbols_are_distinct() {
        use CongestionClass as C;
        let syms = [
            C::One.symbol(),
            C::MaxLoad.symbol(),
            C::GroupedMaxLoad.symbol(),
            C::Full.symbol(),
        ];
        let set: std::collections::HashSet<&str> = syms.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
