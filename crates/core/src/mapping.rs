//! Address mapping schemes for a `w × w` matrix in banked shared memory.
//!
//! The paper compares three ways to place logical element `(i, j)` of a
//! `w × w` matrix into the single address space of a DMM with `w` banks
//! (bank of address `a` is `a mod w`):
//!
//! * **RAW** — `a = i·w + j`: the straightforward layout. Column-major
//!   (stride) access by a warp hits one bank `w` times.
//! * **RAS** — `a = i·w + (j + r_i) mod w` with `r_0..r_{w−1}` i.i.d.
//!   uniform in `0..w` (prior work, ref \[7\] of the paper). Any fixed access
//!   pattern behaves like balls-into-bins, but stride access still
//!   conflicts with high probability.
//! * **RAP** — `a = i·w + (j + σ_i) mod w` with `σ` a uniform random
//!   *permutation*. Row `i` is rotated by `σ_i`; because the `σ_i` are
//!   pairwise distinct, a stride (column) access `A\[0\][j] … A[w−1][j]`
//!   lands in banks `(j+σ_0) … (j+σ_{w−1}) mod w`, all distinct —
//!   congestion 1, deterministically (paper Theorem 2).
//!
//! All three are *row-rotation* mappings differing only in the shift table,
//! so they share the [`RowShift`] representation; [`MatrixMapping`] is the
//! object-safe interface used by the access generators, the transpose
//! kernels, and the GPU simulator.

use crate::error::CoreError;
use crate::permutation::Permutation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's mapping schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Straightforward layout (`RAW access to memory`).
    Raw,
    /// Random address shift — i.i.d. random per-row rotations.
    Ras,
    /// Random address permute-shift — per-row rotations from one random
    /// permutation (this paper's contribution).
    Rap,
    /// Deterministic XOR swizzle (`j ^ i`), the scheme used by modern
    /// GPU libraries (e.g. CUTLASS). Not part of the paper; see
    /// [`crate::modern`].
    Xor,
    /// Row padding (`w + 1` physical columns), the classic `+1` trick.
    /// Not part of the paper; see [`crate::modern`].
    Padded,
}

impl Scheme {
    /// Canonical display name used in tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Raw => "RAW",
            Scheme::Ras => "RAS",
            Scheme::Rap => "RAP",
            Scheme::Xor => "XOR",
            Scheme::Padded => "Padded",
        }
    }

    /// The paper's three schemes, in its column order. The modern
    /// baselines ([`Scheme::Xor`], [`Scheme::Padded`]) are extensions and
    /// are deliberately excluded — use [`Scheme::extended`] for all five.
    #[must_use]
    pub fn all() -> [Scheme; 3] {
        [Scheme::Raw, Scheme::Ras, Scheme::Rap]
    }

    /// All five schemes: the paper's three plus the modern deterministic
    /// baselines.
    #[must_use]
    pub fn extended() -> [Scheme; 5] {
        [
            Scheme::Raw,
            Scheme::Ras,
            Scheme::Rap,
            Scheme::Xor,
            Scheme::Padded,
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Object-safe interface of a `w × w` matrix address mapping.
pub trait MatrixMapping {
    /// Matrix dimension / number of banks / warp width `w`.
    fn width(&self) -> usize;

    /// Physical flat address of logical element `(i, j)`.
    ///
    /// Implementations must be injective on `0 ≤ i, j < w` and must map
    /// into `0..storage_words()`.
    fn address(&self, i: u32, j: u32) -> u32;

    /// Words of physical storage the matrix occupies — `w²` for in-place
    /// schemes; padded layouts need more (the classic space/conflict
    /// trade-off the paper's technique avoids).
    fn storage_words(&self) -> usize {
        self.width() * self.width()
    }

    /// Bank of logical element `(i, j)` — `address(i, j) mod w`.
    fn bank(&self, i: u32, j: u32) -> u32 {
        self.address(i, j) % self.width() as u32
    }

    /// Display name of the scheme.
    fn scheme(&self) -> Scheme;
}

/// A row-rotation mapping: element `(i, j)` is stored at
/// `i·w + (j + shift[i]) mod w`.
///
/// This single representation covers RAW (`shift ≡ 0`), RAS (i.i.d.
/// shifts), and RAP (shifts forming a permutation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowShift {
    width: u32,
    shifts: Vec<u32>,
    scheme: Scheme,
}

impl RowShift {
    /// The RAW mapping: no rotation.
    #[must_use]
    pub fn raw(width: usize) -> Self {
        Self {
            width: width as u32,
            shifts: vec![0; width],
            scheme: Scheme::Raw,
        }
    }

    /// A RAS mapping with fresh i.i.d. uniform shifts.
    #[must_use]
    pub fn ras<R: Rng + ?Sized>(rng: &mut R, width: usize) -> Self {
        let w = width as u32;
        Self {
            width: w,
            shifts: (0..width).map(|_| rng.gen_range(0..w.max(1))).collect(),
            scheme: Scheme::Ras,
        }
    }

    /// A RAS mapping from explicit shifts.
    ///
    /// # Errors
    /// Returns [`CoreError::ShiftOutOfRange`] if any shift is `≥ width`,
    /// or [`CoreError::InvalidWidth`] if `shifts.len() != width`.
    pub fn ras_from(width: usize, shifts: Vec<u32>) -> Result<Self, CoreError> {
        if shifts.len() != width {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "shift table length must equal width",
            });
        }
        let w = width as u32;
        if let Some(&bad) = shifts.iter().find(|&&s| s >= w) {
            return Err(CoreError::ShiftOutOfRange {
                shift: bad,
                max: w.saturating_sub(1),
            });
        }
        Ok(Self {
            width: w,
            shifts,
            scheme: Scheme::Ras,
        })
    }

    /// A RAP mapping with a fresh uniform random permutation.
    #[must_use]
    pub fn rap<R: Rng + ?Sized>(rng: &mut R, width: usize) -> Self {
        Self::rap_from(Permutation::random(rng, width))
    }

    /// A RAP mapping from an explicit permutation `σ` (row `i` is rotated
    /// by `σ(i)`).
    #[must_use]
    pub fn rap_from(sigma: Permutation) -> Self {
        Self {
            width: sigma.len() as u32,
            shifts: sigma.into(),
            scheme: Scheme::Rap,
        }
    }

    /// Construct the row-shift scheme named by `scheme` with fresh
    /// randomness.
    ///
    /// # Panics
    /// Panics for [`Scheme::Xor`] and [`Scheme::Padded`], which are not
    /// row-shift mappings — construct them via [`crate::modern`].
    #[must_use]
    pub fn of_scheme<R: Rng + ?Sized>(scheme: Scheme, rng: &mut R, width: usize) -> Self {
        match scheme {
            Scheme::Raw => Self::raw(width),
            Scheme::Ras => Self::ras(rng, width),
            Scheme::Rap => Self::rap(rng, width),
            Scheme::Xor | Scheme::Padded => {
                panic!("{scheme} is not a row-shift scheme; see rap_core::modern")
            }
        }
    }

    /// The per-row shift table.
    #[must_use]
    pub fn shifts(&self) -> &[u32] {
        &self.shifts
    }

    /// The shift applied to row `i`.
    #[inline]
    #[must_use]
    pub fn shift_of_row(&self, i: u32) -> u32 {
        self.shifts[i as usize]
    }

    /// Logical column stored at physical column `c` of row `i` — the
    /// inverse rotation, `(c − shift[i]) mod w`.
    #[inline]
    #[must_use]
    pub fn logical_column(&self, i: u32, c: u32) -> u32 {
        debug_assert!(c < self.width);
        (c + self.width - self.shifts[i as usize] % self.width) % self.width
    }

    /// Number of random values the scheme draws (Table IV accounting):
    /// 0 for RAW, `w` for RAS and RAP.
    #[must_use]
    pub fn random_number_count(&self) -> usize {
        match self.scheme {
            Scheme::Ras | Scheme::Rap => self.width as usize,
            // RowShift only ever carries Raw/Ras/Rap; the deterministic
            // modern baselines store nothing either way.
            _ => 0,
        }
    }
}

impl MatrixMapping for RowShift {
    fn width(&self) -> usize {
        self.width as usize
    }

    #[inline]
    fn address(&self, i: u32, j: u32) -> u32 {
        debug_assert!(i < self.width && j < self.width, "({i},{j}) out of range");
        let w = self.width;
        i * w + (j + self.shifts[i as usize]) % w
    }

    fn scheme(&self) -> Scheme {
        self.scheme
    }
}

/// A [`RowShift`] mapping with the permutation/shift composition
/// precomputed into one dense `w²`-entry lookup table, for `w ≤ 64`.
///
/// `rot[i·w + j] = (j + shift[i]) mod w` is the rotated physical column of
/// logical element `(i, j)`; since the row base `i·w` is a multiple of
/// `w`, that single byte is simultaneously the **bank** of the element and
/// the low part of its address (`address = i·w + rot`). A Monte-Carlo
/// inner loop therefore does one table read per lane instead of the
/// mul/mod/permute arithmetic of [`RowShift::address`] — the per-lane
/// hardware division is gone, and the table itself is built row-wise from
/// two wrap segments with **no** per-element `mod`.
///
/// The table is rebuilt per trial (mappings are redrawn every trial) but
/// its allocation is cached across trials via [`ComposedRowShift::compose`]
/// on a persistent value — `rap-access`'s `AccessScratch` holds one per
/// worker.
#[derive(Debug, Clone, Default)]
pub struct ComposedRowShift {
    width: u32,
    rot: Vec<u8>,
}

impl ComposedRowShift {
    /// Widest mapping the composed table serves — matched to the SWAR
    /// congestion kernel's 64-bank capacity so a rotated column always
    /// fits a byte and the compact-key dedup stays in range.
    pub const MAX_WIDTH: usize = 64;

    /// An empty table; [`ComposedRowShift::compose`] fills it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Recompute the table for `mapping`, reusing the existing
    /// allocation. Returns `false` (leaving the table unusable) when
    /// `mapping.width() > MAX_WIDTH` — callers fall back to the unfused
    /// per-address arithmetic.
    pub fn compose(&mut self, mapping: &RowShift) -> bool {
        let w = mapping.width();
        if w == 0 || w > Self::MAX_WIDTH {
            self.width = 0;
            return false;
        }
        // The identity row 0, 1, …, 63; every rotated row is two
        // contiguous slices of it, so composition is 2w small memcpys.
        const IOTA: [u8; ComposedRowShift::MAX_WIDTH] = {
            let mut a = [0u8; ComposedRowShift::MAX_WIDTH];
            let mut k = 0;
            while k < a.len() {
                a[k] = k as u8;
                k += 1;
            }
            a
        };
        self.width = w as u32;
        self.rot.resize(w * w, 0);
        for (i, row) in self.rot.chunks_exact_mut(w).enumerate() {
            // Row i's rotated columns are s, s+1, …, w−1, 0, 1, …, s−1:
            // two contiguous wrap segments, no per-element mod.
            let s = mapping.shift_of_row(i as u32) as usize % w;
            row[..w - s].copy_from_slice(&IOTA[s..w]);
            row[w - s..].copy_from_slice(&IOTA[..s]);
        }
        true
    }

    /// Matrix dimension of the composed mapping (0 when unusable).
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether the table currently holds a composed mapping.
    #[inline]
    #[must_use]
    pub fn is_composed(&self) -> bool {
        self.width > 0
    }

    /// Bank of the element with compact logical index `idx = i·w + j` —
    /// one byte read.
    ///
    /// # Panics
    /// Panics if `idx ≥ w²` (via the slice index).
    #[inline]
    #[must_use]
    pub fn bank_of_index(&self, idx: u32) -> u32 {
        u32::from(self.rot[idx as usize])
    }

    /// Physical flat address of the element with compact logical index
    /// `idx = i·w + j`: the row base plus the composed rotation.
    ///
    /// # Panics
    /// Panics if `idx ≥ w²` (via the slice index).
    #[inline]
    #[must_use]
    pub fn address_of_index(&self, idx: u32) -> u32 {
        let w = self.width;
        (idx / w) * w + u32::from(self.rot[idx as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn assert_bijective(m: &dyn MatrixMapping) {
        let w = m.width() as u32;
        let addrs: HashSet<u32> = (0..w)
            .flat_map(|i| (0..w).map(move |j| (i, j)))
            .map(|(i, j)| m.address(i, j))
            .collect();
        assert_eq!(addrs.len(), (w * w) as usize, "mapping must be injective");
        assert!(addrs.iter().all(|&a| a < w * w), "mapping must stay in w²");
    }

    #[test]
    fn raw_is_row_major() {
        let m = RowShift::raw(4);
        assert_eq!(m.address(0, 0), 0);
        assert_eq!(m.address(0, 3), 3);
        assert_eq!(m.address(2, 1), 9);
        assert_eq!(m.bank(2, 1), 1);
        assert_eq!(m.scheme(), Scheme::Raw);
        assert_bijective(&m);
    }

    #[test]
    fn raw_stride_hits_one_bank() {
        let m = RowShift::raw(8);
        let banks: HashSet<u32> = (0..8).map(|i| m.bank(i, 3)).collect();
        assert_eq!(banks.len(), 1, "RAW column access must hit a single bank");
    }

    #[test]
    fn rap_stride_is_conflict_free() {
        let mut rng = SmallRng::seed_from_u64(1);
        for w in [2usize, 4, 16, 32, 64] {
            let m = RowShift::rap(&mut rng, w);
            for j in 0..w as u32 {
                let banks: HashSet<u32> = (0..w as u32).map(|i| m.bank(i, j)).collect();
                assert_eq!(
                    banks.len(),
                    w,
                    "RAP stride column {j} must be conflict-free"
                );
            }
        }
    }

    #[test]
    fn any_scheme_contiguous_is_conflict_free() {
        let mut rng = SmallRng::seed_from_u64(2);
        for scheme in Scheme::all() {
            let m = RowShift::of_scheme(scheme, &mut rng, 32);
            for i in 0..32u32 {
                let banks: HashSet<u32> = (0..32u32).map(|j| m.bank(i, j)).collect();
                assert_eq!(banks.len(), 32, "{scheme} row {i} must be conflict-free");
            }
        }
    }

    #[test]
    fn all_schemes_are_bijective() {
        let mut rng = SmallRng::seed_from_u64(3);
        for scheme in Scheme::all() {
            for w in [1usize, 2, 16, 33] {
                let m = RowShift::of_scheme(scheme, &mut rng, w);
                assert_bijective(&m);
            }
        }
    }

    #[test]
    fn paper_figure6_example() {
        // Figure 6 of the paper: w = 4, σ = (2, 0, 3, 1).
        // Row 0 rotated by 2: logical (0,0) lands at physical column 2.
        let sigma = Permutation::from_table(vec![2, 0, 3, 1]).unwrap();
        let m = RowShift::rap_from(sigma);
        assert_eq!(m.address(0, 0), 2);
        assert_eq!(m.address(0, 1), 3);
        assert_eq!(m.address(0, 2), 0);
        assert_eq!(m.address(0, 3), 1);
        // Row 1 rotated by 0: untouched.
        assert_eq!(m.address(1, 0), 4);
        // Row 2 rotated by 3.
        assert_eq!(m.address(2, 0), 8 + 3);
        assert_eq!(m.address(2, 1), 8);
        // Row 3 rotated by 1.
        assert_eq!(m.address(3, 3), 12);
    }

    #[test]
    fn logical_column_inverts_rotation() {
        let mut rng = SmallRng::seed_from_u64(4);
        for scheme in Scheme::all() {
            let m = RowShift::of_scheme(scheme, &mut rng, 16);
            for i in 0..16u32 {
                for j in 0..16u32 {
                    let a = m.address(i, j);
                    let phys_col = a % 16;
                    assert_eq!(a / 16, i, "row is preserved");
                    assert_eq!(m.logical_column(i, phys_col), j);
                }
            }
        }
    }

    #[test]
    fn ras_from_validates() {
        assert!(RowShift::ras_from(3, vec![0, 1, 2]).is_ok());
        assert!(matches!(
            RowShift::ras_from(3, vec![0, 1]),
            Err(CoreError::InvalidWidth { .. })
        ));
        assert!(matches!(
            RowShift::ras_from(3, vec![0, 1, 3]),
            Err(CoreError::ShiftOutOfRange { shift: 3, max: 2 })
        ));
    }

    #[test]
    fn random_number_counts() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(RowShift::raw(32).random_number_count(), 0);
        assert_eq!(RowShift::ras(&mut rng, 32).random_number_count(), 32);
        assert_eq!(RowShift::rap(&mut rng, 32).random_number_count(), 32);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Raw.to_string(), "RAW");
        assert_eq!(Scheme::Ras.to_string(), "RAS");
        assert_eq!(Scheme::Rap.to_string(), "RAP");
        assert_eq!(Scheme::Xor.to_string(), "XOR");
        assert_eq!(Scheme::Padded.to_string(), "Padded");
    }

    #[test]
    fn extended_contains_all() {
        assert_eq!(Scheme::extended().len(), 5);
        assert_eq!(&Scheme::extended()[..3], &Scheme::all());
    }

    #[test]
    #[should_panic(expected = "not a row-shift scheme")]
    fn of_scheme_rejects_modern_baselines() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = RowShift::of_scheme(Scheme::Xor, &mut rng, 8);
    }

    #[test]
    fn default_storage_is_square() {
        assert_eq!(RowShift::raw(8).storage_words(), 64);
    }

    /// The composed table must reproduce `address`/`bank` exactly for
    /// every scheme and width it serves, including the 63/64 boundary.
    #[test]
    fn composed_table_matches_unfused_arithmetic() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut composed = ComposedRowShift::new();
        for scheme in Scheme::all() {
            for w in [1usize, 2, 7, 16, 32, 33, 63, 64] {
                let m = RowShift::of_scheme(scheme, &mut rng, w);
                assert!(composed.compose(&m), "{scheme} w={w} must compose");
                assert!(composed.is_composed());
                assert_eq!(composed.width(), w as u32);
                for i in 0..w as u32 {
                    for j in 0..w as u32 {
                        let idx = i * w as u32 + j;
                        assert_eq!(
                            composed.address_of_index(idx),
                            m.address(i, j),
                            "{scheme} w={w} ({i},{j}) address"
                        );
                        assert_eq!(
                            composed.bank_of_index(idx),
                            m.bank(i, j),
                            "{scheme} w={w} ({i},{j}) bank"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn composed_table_rejects_wide_mappings_and_recovers() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut composed = ComposedRowShift::new();
        let wide = RowShift::rap(&mut rng, 65);
        assert!(!composed.compose(&wide));
        assert!(!composed.is_composed());
        // The same value composes a servable mapping afterwards (the
        // allocation is reused, stale bytes must not leak).
        let narrow = RowShift::rap(&mut rng, 8);
        assert!(composed.compose(&narrow));
        for idx in 0..64u32 {
            assert_eq!(
                composed.address_of_index(idx),
                narrow.address(idx / 8, idx % 8)
            );
        }
    }

    #[test]
    fn rap_shifts_form_permutation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let m = RowShift::rap(&mut rng, 64);
        let distinct: HashSet<u32> = m.shifts().iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }
}
