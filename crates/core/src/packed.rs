//! Register packing of the shift table (paper Figure 7).
//!
//! On the GPU, the per-row shifts `σ_0 … σ_{w−1}` must be available to every
//! thread without spending shared memory (which would itself incur bank
//! conflicts). The paper packs them into a small array of 32-bit local
//! registers: for `w = 32` each shift needs 5 bits, so **6 shifts fit per
//! register** and the whole table occupies `r[0..6]`. Thread code then
//! recovers shift `i` as
//!
//! ```c
//! (r[i/6] >> (5 * (i % 6))) & 0x1f      // paper §VI CUDA listing
//! ```
//!
//! [`PackedShifts`] reproduces that exact bit layout for any power-of-two
//! width, and the GPU simulator charges the same shift/mask ALU operations
//! that the real kernel executes.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// A shift table packed into 32-bit words, `32 / bits` values per word
/// (least-significant field first), where `bits = log2(width)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedShifts {
    width: u32,
    bits: u32,
    per_word: u32,
    words: Vec<u32>,
    len: u32,
}

impl PackedShifts {
    /// Pack `shifts` (each `< width`) for a machine of power-of-two `width`.
    ///
    /// # Errors
    /// * [`CoreError::InvalidWidth`] if `width` is 0, 1, or not a power of
    ///   two (the bit layout needs a fixed field size `log2 w ≥ 1`);
    /// * [`CoreError::ShiftOutOfRange`] if any shift is `≥ width`.
    pub fn pack(width: usize, shifts: &[u32]) -> Result<Self, CoreError> {
        if width < 2 || !width.is_power_of_two() {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "packed layout requires a power-of-two width ≥ 2",
            });
        }
        let w = width as u32;
        if let Some(&bad) = shifts.iter().find(|&&s| s >= w) {
            return Err(CoreError::ShiftOutOfRange {
                shift: bad,
                max: w - 1,
            });
        }
        let bits = w.trailing_zeros(); // log2(width)
        let per_word = 32 / bits;
        let n_words = (shifts.len() as u32).div_ceil(per_word);
        let mut words = vec![0u32; n_words as usize];
        for (i, &s) in shifts.iter().enumerate() {
            let word = i as u32 / per_word;
            let field = i as u32 % per_word;
            words[word as usize] |= s << (bits * field);
        }
        Ok(Self {
            width: w,
            bits,
            per_word,
            words,
            len: shifts.len() as u32,
        })
    }

    /// Unpack shift `i` — the Rust equivalent of the paper's
    /// `(r[i/6] >> (5*(i%6))) & 0x1f` for `w = 32`.
    ///
    /// # Panics
    /// Panics if `i ≥ len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: u32) -> u32 {
        assert!(i < self.len, "shift index {i} out of range {}", self.len);
        let mask = self.width - 1;
        (self.words[(i / self.per_word) as usize] >> (self.bits * (i % self.per_word))) & mask
    }

    /// Number of packed shift values.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per shift field (`log2(width)`).
    #[must_use]
    pub fn bits_per_shift(&self) -> u32 {
        self.bits
    }

    /// Shift fields per 32-bit register (6 for `w = 32`, matching Figure 7).
    #[must_use]
    pub fn shifts_per_word(&self) -> u32 {
        self.per_word
    }

    /// The raw register words (`r[*]` in the paper).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of 32-bit registers consumed.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.words.len()
    }

    /// Unpack the whole table.
    #[must_use]
    pub fn unpack(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_layout_w32() {
        // w = 32 → 5-bit fields, 6 per word, 32 shifts need 6 registers —
        // exactly the paper's `int r[6]`.
        let shifts: Vec<u32> = (0..32).map(|i| (i * 7 + 3) % 32).collect();
        let p = PackedShifts::pack(32, &shifts).unwrap();
        assert_eq!(p.bits_per_shift(), 5);
        assert_eq!(p.shifts_per_word(), 6);
        assert_eq!(p.register_count(), 6);
        assert_eq!(p.unpack(), shifts);
    }

    #[test]
    fn matches_paper_cuda_expression() {
        // The paper's expression, transcribed literally for w = 32:
        // (r[i/6] >> (5*(i%6))) & 0x1f
        let shifts: Vec<u32> = (0..32).map(|i| (31 - i) % 32).collect();
        let p = PackedShifts::pack(32, &shifts).unwrap();
        let r = p.words();
        for i in 0..32u32 {
            let cuda = (r[(i / 6) as usize] >> (5 * (i % 6))) & 0x1f;
            assert_eq!(cuda, p.get(i), "mismatch at i={i}");
            assert_eq!(cuda, shifts[i as usize]);
        }
    }

    #[test]
    fn various_widths_roundtrip() {
        for width in [2usize, 4, 8, 16, 64, 128, 256] {
            let shifts: Vec<u32> = (0..width as u32).map(|i| i % width as u32).collect();
            let p = PackedShifts::pack(width, &shifts).unwrap();
            assert_eq!(p.unpack(), shifts, "roundtrip failed for w={width}");
            assert_eq!(p.len(), width as u32);
        }
    }

    #[test]
    fn register_counts_by_width() {
        // w=16: 4-bit fields, 8 per word → 2 registers for 16 shifts.
        let p = PackedShifts::pack(16, &[0; 16]).unwrap();
        assert_eq!(p.register_count(), 2);
        // w=64: 6-bit fields, 5 per word → 13 registers for 64 shifts.
        let p = PackedShifts::pack(64, &vec![0; 64]).unwrap();
        assert_eq!(p.shifts_per_word(), 5);
        assert_eq!(p.register_count(), 13);
        // w=256: 8-bit fields, 4 per word → 64 registers.
        let p = PackedShifts::pack(256, &vec![0; 256]).unwrap();
        assert_eq!(p.register_count(), 64);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            PackedShifts::pack(24, &[0]),
            Err(CoreError::InvalidWidth { width: 24, .. })
        ));
        assert!(matches!(
            PackedShifts::pack(0, &[]),
            Err(CoreError::InvalidWidth { .. })
        ));
        assert!(matches!(
            PackedShifts::pack(1, &[0]),
            Err(CoreError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn rejects_oversized_shift() {
        assert!(matches!(
            PackedShifts::pack(8, &[7, 8]),
            Err(CoreError::ShiftOutOfRange { shift: 8, max: 7 })
        ));
    }

    #[test]
    fn empty_table() {
        let p = PackedShifts::pack(32, &[]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.register_count(), 0);
        assert_eq!(p.unpack(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = PackedShifts::pack(32, &[1, 2]).unwrap();
        let _ = p.get(2);
    }

    #[test]
    fn partial_last_word() {
        // 7 shifts at w=32: fits in 2 words (6 + 1).
        let shifts = [1u32, 2, 3, 4, 5, 6, 7];
        let p = PackedShifts::pack(32, &shifts).unwrap();
        assert_eq!(p.register_count(), 2);
        assert_eq!(p.unpack(), shifts);
    }
}
