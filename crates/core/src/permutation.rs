//! Random permutations of `{0, 1, …, w−1}`.
//!
//! The RAP technique is built on a permutation `σ` drawn uniformly from all
//! `w!` permutations (paper §IV). This module provides a validated
//! [`Permutation`] type with uniform sampling (Fisher–Yates), inversion,
//! composition, and cycle queries. The type invariant — every value in
//! `0..w` appears exactly once — is established at every constructor and
//! relied upon by the congestion proofs: it is exactly what makes stride
//! access conflict-free under RAP.

use crate::error::CoreError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A permutation of `{0, …, len−1}`, stored as the image table
/// `perm[i] = σ(i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "Vec<u32>", into = "Vec<u32>")]
pub struct Permutation {
    perm: Vec<u32>,
}

impl Permutation {
    /// The identity permutation of the given length.
    #[must_use]
    pub fn identity(len: usize) -> Self {
        Self {
            perm: (0..len as u32).collect(),
        }
    }

    /// Validate and wrap an explicit image table.
    ///
    /// # Errors
    /// Returns [`CoreError::NotAPermutation`] if `table` is not a bijection
    /// on `{0, …, table.len()−1}`.
    pub fn from_table(table: Vec<u32>) -> Result<Self, CoreError> {
        let n = table.len();
        let mut seen = vec![false; n];
        for &v in &table {
            let idx = v as usize;
            if idx >= n || seen[idx] {
                return Err(CoreError::NotAPermutation { len: n, value: v });
            }
            seen[idx] = true;
        }
        Ok(Self { perm: table })
    }

    /// Sample a permutation uniformly at random from all `len!`
    /// permutations (Fisher–Yates shuffle).
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut perm: Vec<u32> = (0..len as u32).collect();
        // Durstenfeld's in-place Fisher-Yates: uniform over all len!.
        for i in (1..len).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        Self { perm }
    }

    /// A cyclic rotation by `k`: `σ(i) = (i + k) mod len`.
    ///
    /// Useful as a *non*-random permutation baseline: it satisfies the
    /// stride-conflict-freedom of RAP but gives no protection against
    /// adversarial access.
    #[must_use]
    pub fn rotation(len: usize, k: u32) -> Self {
        Self {
            perm: (0..len as u32)
                .map(|i| (i + k) % (len as u32).max(1))
                .collect(),
        }
    }

    /// Length `w` of the permuted domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `σ(i)`.
    ///
    /// # Panics
    /// Panics if `i ≥ len`.
    #[inline]
    #[must_use]
    pub fn apply(&self, i: u32) -> u32 {
        self.perm[i as usize]
    }

    /// The underlying image table.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.perm
    }

    /// The inverse permutation `σ⁻¹`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.perm.len()];
        for (i, &v) in self.perm.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Self { perm: inv }
    }

    /// Composition `(self ∘ other)(i) = self(other(i))`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compose permutations of different lengths"
        );
        Self {
            perm: other.perm.iter().map(|&v| self.perm[v as usize]).collect(),
        }
    }

    /// Whether this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// Number of fixed points (`σ(i) = i`).
    #[must_use]
    pub fn fixed_points(&self) -> usize {
        self.perm
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u32 == v)
            .count()
    }

    /// Cycle type: the sorted multiset of cycle lengths.
    #[must_use]
    pub fn cycle_lengths(&self) -> Vec<usize> {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.perm[cur] as usize;
                len += 1;
            }
            cycles.push(len);
        }
        cycles.sort_unstable();
        cycles
    }
}

impl TryFrom<Vec<u32>> for Permutation {
    type Error = CoreError;
    fn try_from(v: Vec<u32>) -> Result<Self, CoreError> {
        Self::from_table(v)
    }
}

impl From<Permutation> for Vec<u32> {
    fn from(p: Permutation) -> Self {
        p.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(8);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 8);
        assert_eq!(id.inverse(), id);
        assert_eq!(id.cycle_lengths(), vec![1; 8]);
        for i in 0..8 {
            assert_eq!(id.apply(i), i);
        }
    }

    #[test]
    fn from_table_accepts_valid() {
        let p = Permutation::from_table(vec![2, 0, 3, 1]).unwrap();
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(2), 3);
    }

    #[test]
    fn from_table_rejects_duplicate() {
        let err = Permutation::from_table(vec![0, 0, 1]).unwrap_err();
        assert!(matches!(err, CoreError::NotAPermutation { .. }));
    }

    #[test]
    fn from_table_rejects_out_of_range() {
        let err = Permutation::from_table(vec![0, 3]).unwrap_err();
        assert!(matches!(err, CoreError::NotAPermutation { value: 3, .. }));
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let p = Permutation::random(&mut rng, 32);
            assert!(p.compose(&p.inverse()).is_identity());
            assert!(p.inverse().compose(&p).is_identity());
        }
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        assert!(Permutation::rotation(16, 0).is_identity());
        assert!(Permutation::rotation(16, 16).is_identity());
    }

    #[test]
    fn rotation_shifts() {
        let r = Permutation::rotation(4, 1);
        assert_eq!(r.as_slice(), &[1, 2, 3, 0]);
        assert_eq!(r.cycle_lengths(), vec![4]);
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        for len in [1usize, 2, 16, 32, 256] {
            let p = Permutation::random(&mut rng, len);
            assert_eq!(p.len(), len);
            Permutation::from_table(p.as_slice().to_vec()).expect("valid");
        }
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        assert_eq!(p.cycle_lengths(), Vec::<usize>::new());
    }

    /// Fisher-Yates must be uniform: over many draws of a length-4
    /// permutation, each of the 24 permutations appears with frequency
    /// ~1/24.
    #[test]
    fn sampling_is_approximately_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 48_000;
        let mut counts: HashMap<Vec<u32>, u32> = HashMap::new();
        for _ in 0..trials {
            let p = Permutation::random(&mut rng, 4);
            *counts.entry(p.as_slice().to_vec()).or_default() += 1;
        }
        assert_eq!(counts.len(), 24, "all 24 permutations should occur");
        let expected = trials as f64 / 24.0;
        for (perm, count) in counts {
            let dev = (f64::from(count) - expected).abs() / expected;
            assert!(
                dev < 0.1,
                "permutation {perm:?} occurred {count} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn compose_associative_sample() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Permutation::random(&mut rng, 16);
        let b = Permutation::random(&mut rng, 16);
        let c = Permutation::random(&mut rng, 16);
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn compose_length_mismatch_panics() {
        let a = Permutation::identity(3);
        let b = Permutation::identity(4);
        let _ = a.compose(&b);
    }

    #[test]
    fn cycle_lengths_sum_to_len() {
        let mut rng = SmallRng::seed_from_u64(9);
        let p = Permutation::random(&mut rng, 100);
        assert_eq!(p.cycle_lengths().iter().sum::<usize>(), 100);
    }
}
