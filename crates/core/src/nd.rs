//! Generic N-dimensional RAP — the natural generalization of the paper's
//! 3P scheme (§VII) to arrays of shape `wⁿ`.
//!
//! The paper works out the 4-D case in detail and concludes that using one
//! independent random permutation per non-innermost axis ("3P" for `n = 4`)
//! is the best trade-off. This module implements that scheme for arbitrary
//! `n ≥ 2`, which we call **(n−1)P**: element `(d_{n−1}, …, d_1, d_0)` maps
//! to bank `(d_0 + Σ_{k=1}^{n−1} σ_k(d_k)) mod w`. For `n = 2` it
//! degenerates to the matrix RAP of §IV.
//!
//! This is an *extension* beyond the paper's evaluation — the paper states
//! the pattern but only evaluates `n = 4`; we provide it as a library
//! feature and verify the invariants (bijectivity, per-axis stride
//! conflict-freedom) by property tests.

use crate::error::CoreError;
use crate::permutation::Permutation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scheme of an N-dimensional mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeNd {
    /// Straightforward layout.
    Raw,
    /// Independent random shift per innermost row (`w^{n−1}` values).
    Ras,
    /// One independent permutation per non-innermost axis (`(n−1)·w`
    /// values) — the generalized 3P.
    PerAxisPermutations,
}

impl SchemeNd {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchemeNd::Raw => "RAW",
            SchemeNd::Ras => "RAS",
            SchemeNd::PerAxisPermutations => "(n-1)P",
        }
    }
}

/// Shift payload of [`MappingNd`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum NdData {
    None,
    PerRow(Vec<u32>),
    PerAxis(Vec<Permutation>),
}

/// An address mapping for an `n`-dimensional array of shape `w × … × w`.
///
/// Coordinates are given outermost-first: `coords[0]` is the slowest-varying
/// index, `coords[n−1]` the innermost (contiguous) one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingNd {
    width: u32,
    ndim: usize,
    scheme: SchemeNd,
    data: NdData,
}

impl MappingNd {
    /// Build a mapping for an `ndim`-dimensional array of extent `width`
    /// per axis.
    ///
    /// # Errors
    /// * [`CoreError::InvalidWidth`] if `width == 0` or `ndim < 2`, or if
    ///   the total element count `w^n` would overflow `u64`.
    pub fn new<R: Rng + ?Sized>(
        scheme: SchemeNd,
        rng: &mut R,
        width: usize,
        ndim: usize,
    ) -> Result<Self, CoreError> {
        if width == 0 {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "N-D mapping width must be positive",
            });
        }
        if ndim < 2 {
            return Err(CoreError::InvalidWidth {
                width: ndim,
                reason: "N-D mapping needs at least 2 dimensions",
            });
        }
        // Reject shapes whose flat size overflows u64.
        let mut total: u64 = 1;
        for _ in 0..ndim {
            total = total
                .checked_mul(width as u64)
                .ok_or(CoreError::InvalidWidth {
                    width,
                    reason: "w^n overflows u64",
                })?;
        }
        let w = width as u32;
        let data = match scheme {
            SchemeNd::Raw => NdData::None,
            SchemeNd::Ras => {
                let rows = (total / u64::from(w)) as usize;
                NdData::PerRow((0..rows).map(|_| rng.gen_range(0..w)).collect())
            }
            SchemeNd::PerAxisPermutations => NdData::PerAxis(
                (0..ndim - 1)
                    .map(|_| Permutation::random(rng, width))
                    .collect(),
            ),
        };
        Ok(Self {
            width: w,
            ndim,
            scheme,
            data,
        })
    }

    /// Per-axis extent `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Number of dimensions `n`.
    #[must_use]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// The scheme identifier.
    #[must_use]
    pub fn scheme(&self) -> SchemeNd {
        self.scheme
    }

    /// Number of stored random values.
    #[must_use]
    pub fn random_number_count(&self) -> usize {
        match &self.data {
            NdData::None => 0,
            NdData::PerRow(rows) => rows.len(),
            NdData::PerAxis(perms) => perms.len() * self.width as usize,
        }
    }

    /// Index of the innermost row containing `coords` (flat address divided
    /// by `w`).
    fn row_index(&self, coords: &[u32]) -> u64 {
        let w = u64::from(self.width);
        coords[..self.ndim - 1]
            .iter()
            .fold(0u64, |acc, &c| acc * w + u64::from(c))
    }

    /// The shift applied to the innermost index at the given outer
    /// coordinates.
    #[must_use]
    pub fn shift(&self, coords: &[u32]) -> u32 {
        match &self.data {
            NdData::None => 0,
            NdData::PerRow(rows) => rows[self.row_index(coords) as usize],
            NdData::PerAxis(perms) => coords[..self.ndim - 1]
                .iter()
                .zip(perms)
                .map(|(&c, p)| p.apply(c))
                .sum(),
        }
    }

    /// Physical flat address of the element at `coords`
    /// (outermost-first, length `ndim`, every coordinate `< w`).
    ///
    /// # Panics
    /// Panics if `coords.len() != ndim` or any coordinate is out of range.
    #[must_use]
    pub fn address(&self, coords: &[u32]) -> u64 {
        assert_eq!(coords.len(), self.ndim, "coordinate arity mismatch");
        assert!(
            coords.iter().all(|&c| c < self.width),
            "coordinate out of range"
        );
        let w = u64::from(self.width);
        let row = self.row_index(coords);
        let d0 = coords[self.ndim - 1];
        let rotated = (u64::from(d0) + u64::from(self.shift(coords))) % w;
        row * w + rotated
    }

    /// Bank of the element at `coords`.
    #[must_use]
    pub fn bank(&self, coords: &[u32]) -> u32 {
        (self.address(coords) % u64::from(self.width)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn validation() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(MappingNd::new(SchemeNd::Raw, &mut rng, 0, 3).is_err());
        assert!(MappingNd::new(SchemeNd::Raw, &mut rng, 4, 1).is_err());
        assert!(MappingNd::new(SchemeNd::Raw, &mut rng, 4, 3).is_ok());
        // 2^64 elements overflows
        assert!(MappingNd::new(SchemeNd::Raw, &mut rng, 2, 65).is_err());
    }

    #[test]
    fn raw_matches_row_major() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = MappingNd::new(SchemeNd::Raw, &mut rng, 3, 3).unwrap();
        assert_eq!(m.address(&[0, 0, 0]), 0);
        assert_eq!(m.address(&[0, 0, 2]), 2);
        assert_eq!(m.address(&[0, 1, 0]), 3);
        assert_eq!(m.address(&[1, 0, 0]), 9);
        assert_eq!(m.address(&[2, 2, 2]), 26);
    }

    #[test]
    fn degenerates_to_matrix_rap_for_n2() {
        use crate::mapping::{MatrixMapping, RowShift};
        let mut rng = SmallRng::seed_from_u64(2);
        let nd = MappingNd::new(SchemeNd::PerAxisPermutations, &mut rng, 8, 2).unwrap();
        // Reconstruct the matrix RAP with the same permutation.
        let sigma = match &nd.data {
            NdData::PerAxis(p) => p[0].clone(),
            _ => unreachable!(),
        };
        let matrix = RowShift::rap_from(sigma);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(u64::from(matrix.address(i, j)), nd.address(&[i, j]));
            }
        }
    }

    fn assert_bijective(m: &MappingNd, w: u32, n: usize) {
        // enumerate all coordinates via mixed-radix counting
        let total = (w as u64).pow(n as u32);
        let mut seen = HashSet::new();
        let mut coords = vec![0u32; n];
        for _ in 0..total {
            assert!(seen.insert(m.address(&coords)));
            // increment
            for k in (0..n).rev() {
                coords[k] += 1;
                if coords[k] < w {
                    break;
                }
                coords[k] = 0;
            }
        }
        assert_eq!(seen.len() as u64, total);
        assert!(seen.iter().all(|&a| a < total));
    }

    #[test]
    fn all_schemes_bijective_3d() {
        let mut rng = SmallRng::seed_from_u64(3);
        for scheme in [SchemeNd::Raw, SchemeNd::Ras, SchemeNd::PerAxisPermutations] {
            let m = MappingNd::new(scheme, &mut rng, 4, 3).unwrap();
            assert_bijective(&m, 4, 3);
        }
    }

    #[test]
    fn per_axis_strides_conflict_free_5d() {
        let w = 8u32;
        let n = 5usize;
        let mut rng = SmallRng::seed_from_u64(4);
        let m = MappingNd::new(SchemeNd::PerAxisPermutations, &mut rng, w as usize, n).unwrap();
        let base = [3u32, 1, 4, 1, 5];
        // Varying any single axis (including the innermost) sweeps all w
        // banks exactly once.
        for axis in 0..n {
            let banks: HashSet<u32> = (0..w)
                .map(|v| {
                    let mut c = base;
                    c[axis] = v;
                    m.bank(&c)
                })
                .collect();
            assert_eq!(banks.len(), w as usize, "axis {axis} must be conflict-free");
        }
    }

    #[test]
    fn random_number_counts() {
        let mut rng = SmallRng::seed_from_u64(5);
        let raw = MappingNd::new(SchemeNd::Raw, &mut rng, 8, 4).unwrap();
        assert_eq!(raw.random_number_count(), 0);
        let ras = MappingNd::new(SchemeNd::Ras, &mut rng, 8, 4).unwrap();
        assert_eq!(ras.random_number_count(), 512); // 8³ rows
        let kp = MappingNd::new(SchemeNd::PerAxisPermutations, &mut rng, 8, 4).unwrap();
        assert_eq!(kp.random_number_count(), 24); // 3 axes × 8
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let m = MappingNd::new(SchemeNd::Raw, &mut rng, 4, 3).unwrap();
        let _ = m.address(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinate_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = MappingNd::new(SchemeNd::Raw, &mut rng, 4, 3).unwrap();
        let _ = m.address(&[0, 4, 0]);
    }
}
