//! Human-readable layout and congestion diagnostics.
//!
//! The paper explains RAP with pictures (Figure 6: the physical
//! arrangement after the permute-shift; Figure 2: per-bank loads). These
//! renderers produce the same views as text, for docs, examples, and
//! debugging: [`render_layout`] shows which logical element sits in each
//! physical slot, and [`render_bank_loads`] draws a per-bank load bar
//! for one warp access.

use crate::congestion::BankLoads;
use crate::mapping::MatrixMapping;

/// Render the physical arrangement of a `w × w` matrix under `mapping`:
/// one line per physical row, each column being a bank, showing the
/// *logical* element index (`i·w + j`) stored there — the paper's
/// Figure 6 as text. Padded layouts occupy more than `w²` words; slots
/// holding no logical element (the padding) render as `·`.
///
/// # Panics
/// Panics if the mapping is not injective over the matrix (would
/// indicate a broken implementation).
#[must_use]
pub fn render_layout(mapping: &dyn MatrixMapping) -> String {
    let w = mapping.width() as u32;
    // Ceil to whole rendered rows: padded layouts may not fill the last.
    let storage = mapping.storage_words();
    let rows = storage.div_ceil(w as usize) as u32;
    let mut physical: Vec<Option<u32>> = vec![None; (rows * w) as usize];
    for i in 0..w {
        for j in 0..w {
            let a = mapping.address(i, j) as usize;
            assert!(
                physical[a].is_none(),
                "mapping is not injective at address {a}"
            );
            physical[a] = Some(i * w + j);
        }
    }
    let cells = (w * w) as usize;
    let width = ((cells.max(2) - 1) as f64).log10() as usize + 1;
    let mut out = String::new();
    out.push_str(&format!("{} layout, w = {w}:\n", mapping.scheme()));
    out.push_str(&format!("{:>pad$}", "", pad = 6));
    for b in 0..w {
        out.push_str(&format!(" B{b:<width$}"));
    }
    out.push('\n');
    for row in 0..rows {
        out.push_str(&format!("row {row:>2}"));
        for col in 0..w {
            match physical[(row * w + col) as usize] {
                Some(v) => out.push_str(&format!(" {v:>width$} ")),
                None => out.push_str(&format!(" {:>width$} ", "·")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the per-bank unique-request loads of one warp access as a bar
/// chart (the view of the paper's Figure 2).
#[must_use]
pub fn render_bank_loads(loads: &BankLoads) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "congestion {} over {} banks ({} unique requests)\n",
        loads.congestion(),
        loads.width(),
        loads.unique_requests()
    ));
    for (bank, &load) in loads.loads().iter().enumerate() {
        out.push_str(&format!(
            "bank {bank:>3} | {:<width$} {load}\n",
            "#".repeat(load as usize),
            width = loads.congestion() as usize
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RowShift;
    use crate::permutation::Permutation;

    #[test]
    fn raw_layout_is_sequential() {
        let s = render_layout(&RowShift::raw(4));
        // Physical row 0 holds logical 0..3 in order under RAW.
        let row0 = s.lines().nth(2).unwrap();
        assert!(row0.contains("row  0"));
        let nums: Vec<&str> = row0.split_whitespace().skip(2).collect();
        assert_eq!(nums, vec!["0", "1", "2", "3"]);
    }

    #[test]
    fn figure6_layout_renders_rotations() {
        // Paper Figure 6: σ = (2, 0, 3, 1) → physical row 0 holds logical
        // (2 3 0 1) — logical column (c − 2) mod 4 at physical column c.
        let sigma = Permutation::from_table(vec![2, 0, 3, 1]).unwrap();
        let s = render_layout(&RowShift::rap_from(sigma));
        let row0 = s.lines().nth(2).unwrap();
        let nums: Vec<&str> = row0.split_whitespace().skip(2).collect();
        assert_eq!(nums, vec!["2", "3", "0", "1"]);
    }

    #[test]
    fn bank_loads_render() {
        let loads = BankLoads::analyze(4, &[0, 4, 8, 1]);
        let s = render_bank_loads(&loads);
        assert!(s.contains("congestion 3"));
        assert!(s.contains("bank   0 | ###"));
        assert!(s.contains("bank   2 |"));
    }

    #[test]
    fn padded_layout_renders_padding_slots() {
        use crate::modern::build_mapping;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mapping = build_mapping(crate::Scheme::Padded, &mut rng, 4);
        let s = render_layout(mapping.as_ref());
        assert!(s.contains("·"), "padding slots render as dots:\n{s}");
        // Every logical element still appears exactly once.
        for v in 0..16 {
            assert!(
                s.split_whitespace().any(|t| t == v.to_string()),
                "missing element {v}:\n{s}"
            );
        }
    }

    #[test]
    fn layout_works_for_nontrivial_widths() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let s = render_layout(&RowShift::rap(&mut rng, 32));
        assert_eq!(s.lines().count(), 2 + 32);
    }
}
