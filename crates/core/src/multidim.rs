//! Higher-dimension RAP variants for a `w × w × w × w` array (paper §VII).
//!
//! For arrays larger than `w²` the single-permutation RAP must be extended.
//! Element `A[d3][d2][d1][d0]` sits at address
//! `d3·w³ + d2·w² + d1·w + d0`, i.e. in bank `d0` under RAW. Every extension
//! keeps the row structure and rotates the innermost index by a *shift
//! function* `f(d1, d2, d3)`:
//!
//! ```text
//! bank(d3, d2, d1, d0) = (d0 + f(d1, d2, d3)) mod w
//! ```
//!
//! The paper proposes five shift functions (Table IV), trading congestion
//! guarantees against the number of stored random values:
//!
//! | scheme | `f(d1,d2,d3)` | random values |
//! |---|---|---|
//! | 1P | `σ(d1)` | `w` |
//! | R1P | `σ(d1) + σ(d2) + σ(d3)` | `w` |
//! | 3P | `σ(d1) + τ(d2) + υ(d3)` | `3w` |
//! | w²P | `σ_{d3·w+d2}(d1)` | `w³` |
//! | 1P+w²R | `σ(d1) + r_{d3·w+d2}` | `w² + w` |
//!
//! plus the baselines RAW (`f = 0`) and RAS (an independent random shift
//! per row, `w³` values). The paper's conclusion — reproduced by our
//! Table IV bench — is that **3P** is the best extension: every stride
//! access is conflict-free, the congestion of random access matches
//! balls-into-bins, there is no known adversarial pattern beating the
//! `O(log w / log log w)` bound, and it stores only `3w` random values.
//! R1P matches 3P on the fixed patterns but a scheme-aware adversary can
//! exploit the *shared* permutation: all `3! = 6` index-permutations of a
//! triple `(a, b, c)` have equal shift sum `σ(a)+σ(b)+σ(c)`, so malicious
//! warps reach congestion `6·Θ(log(w/6)/log log(w/6))`.

use crate::error::CoreError;
use crate::permutation::Permutation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a 4-D mapping scheme (Table IV column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme4d {
    /// Straightforward layout, `f = 0`.
    Raw,
    /// Random address shift: an independent random shift per `w`-element
    /// row (`w³` random values).
    Ras,
    /// One permutation: `f = σ(d1)`.
    OneP,
    /// Repeated one permutation: `f = σ(d1) + σ(d2) + σ(d3)`.
    R1P,
    /// Three independent permutations: `f = σ(d1) + τ(d2) + υ(d3)`.
    ThreeP,
    /// `w²` independent permutations: `f = σ_{d3·w+d2}(d1)`.
    WSquaredP,
    /// One permutation plus `w²` random shifts:
    /// `f = σ(d1) + r_{d3·w+d2}`.
    OnePlusWSquaredR,
}

impl Scheme4d {
    /// Display name matching the paper's Table IV header.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme4d::Raw => "RAW",
            Scheme4d::Ras => "RAS",
            Scheme4d::OneP => "1P",
            Scheme4d::R1P => "R1P",
            Scheme4d::ThreeP => "3P",
            Scheme4d::WSquaredP => "w^2P",
            Scheme4d::OnePlusWSquaredR => "1P+w^2R",
        }
    }

    /// All schemes in the paper's column order.
    #[must_use]
    pub fn all() -> [Scheme4d; 7] {
        [
            Scheme4d::Raw,
            Scheme4d::Ras,
            Scheme4d::OneP,
            Scheme4d::R1P,
            Scheme4d::ThreeP,
            Scheme4d::WSquaredP,
            Scheme4d::OnePlusWSquaredR,
        ]
    }

    /// Number of stored random values for width `w` (Table IV last row).
    #[must_use]
    pub fn random_number_count(self, w: usize) -> usize {
        match self {
            Scheme4d::Raw => 0,
            Scheme4d::Ras | Scheme4d::WSquaredP => w * w * w,
            Scheme4d::OneP | Scheme4d::R1P => w,
            Scheme4d::ThreeP => 3 * w,
            Scheme4d::OnePlusWSquaredR => w * w + w,
        }
    }
}

impl std::fmt::Display for Scheme4d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shift-table payload of a [`Mapping4d`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum ShiftData {
    /// RAW: no randomness.
    None,
    /// RAS: one shift per row, indexed by `d3·w² + d2·w + d1`.
    PerRow(Vec<u32>),
    /// 1P / R1P: a single permutation.
    OnePerm(Permutation),
    /// 3P: three independent permutations applied to `d1`, `d2`, `d3`.
    ThreePerm(Box<(Permutation, Permutation, Permutation)>),
    /// w²P: `w²` permutations indexed by `d3·w + d2`.
    ManyPerm(Vec<Permutation>),
    /// 1P+w²R: a permutation for `d1` plus `w²` shifts indexed by
    /// `d3·w + d2`.
    PermPlusRand(Permutation, Vec<u32>),
}

/// An address mapping for a 4-D array of shape `w × w × w × w`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping4d {
    width: u32,
    scheme: Scheme4d,
    data: ShiftData,
}

impl Mapping4d {
    /// Build the given scheme with fresh randomness for width `w`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidWidth`] if `w == 0`.
    pub fn new<R: Rng + ?Sized>(
        scheme: Scheme4d,
        rng: &mut R,
        width: usize,
    ) -> Result<Self, CoreError> {
        if width == 0 {
            return Err(CoreError::InvalidWidth {
                width,
                reason: "4-D mapping width must be positive",
            });
        }
        let w = width as u32;
        let data = match scheme {
            Scheme4d::Raw => ShiftData::None,
            Scheme4d::Ras => ShiftData::PerRow(
                (0..width * width * width)
                    .map(|_| rng.gen_range(0..w))
                    .collect(),
            ),
            Scheme4d::OneP | Scheme4d::R1P => ShiftData::OnePerm(Permutation::random(rng, width)),
            Scheme4d::ThreeP => ShiftData::ThreePerm(Box::new((
                Permutation::random(rng, width),
                Permutation::random(rng, width),
                Permutation::random(rng, width),
            ))),
            Scheme4d::WSquaredP => ShiftData::ManyPerm(
                (0..width * width)
                    .map(|_| Permutation::random(rng, width))
                    .collect(),
            ),
            Scheme4d::OnePlusWSquaredR => ShiftData::PermPlusRand(
                Permutation::random(rng, width),
                (0..width * width).map(|_| rng.gen_range(0..w)).collect(),
            ),
        };
        Ok(Self {
            width: w,
            scheme,
            data,
        })
    }

    /// Array width `w` (all four dimensions have this extent).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// The scheme identifier.
    #[must_use]
    pub fn scheme(&self) -> Scheme4d {
        self.scheme
    }

    /// The shift function `f(d1, d2, d3)` (before the `mod w` of the bank
    /// computation).
    ///
    /// # Panics
    /// Panics if any coordinate is `≥ w`.
    #[inline]
    #[must_use]
    pub fn shift(&self, d1: u32, d2: u32, d3: u32) -> u32 {
        let w = self.width;
        debug_assert!(d1 < w && d2 < w && d3 < w);
        match &self.data {
            ShiftData::None => 0,
            ShiftData::PerRow(rows) => rows[((d3 * w + d2) * w + d1) as usize],
            ShiftData::OnePerm(sigma) => match self.scheme {
                Scheme4d::OneP => sigma.apply(d1),
                // R1P: the same permutation applied to all three indexes.
                _ => sigma.apply(d1) + sigma.apply(d2) + sigma.apply(d3),
            },
            ShiftData::ThreePerm(p) => p.0.apply(d1) + p.1.apply(d2) + p.2.apply(d3),
            ShiftData::ManyPerm(perms) => perms[(d3 * w + d2) as usize].apply(d1),
            ShiftData::PermPlusRand(sigma, rand) => sigma.apply(d1) + rand[(d3 * w + d2) as usize],
        }
    }

    /// Physical flat address of element `A[d3][d2][d1][d0]`.
    ///
    /// The rotation stays inside the element's own `w`-element row, so the
    /// mapping is a bijection on `0..w⁴`.
    #[inline]
    #[must_use]
    pub fn address(&self, d3: u32, d2: u32, d1: u32, d0: u32) -> u64 {
        let w = u64::from(self.width);
        let row_base = ((u64::from(d3) * w + u64::from(d2)) * w + u64::from(d1)) * w;
        row_base + u64::from(self.bank(d3, d2, d1, d0))
    }

    /// Bank of element `A[d3][d2][d1][d0]` — `(d0 + f(d1,d2,d3)) mod w`.
    ///
    /// Every shift function is bounded by `3(w−1)` (R1P/3P sum three
    /// values `< w`; the rest stay below `2w`), so `d0 + f < 4w` and the
    /// `mod` reduces to two branchless conditional subtractions instead
    /// of a hardware division — this sits on the per-lane path of the
    /// Table IV Monte-Carlo sweeps.
    #[inline]
    #[must_use]
    pub fn bank(&self, d3: u32, d2: u32, d1: u32, d0: u32) -> u32 {
        let w = u64::from(self.width);
        debug_assert!(d0 < self.width);
        let mut r = u64::from(d0) + u64::from(self.shift(d1, d2, d3));
        debug_assert!(r < 4 * w, "shift function exceeded its 3(w-1) bound");
        r -= 2 * w * u64::from(r >= 2 * w);
        r -= w * u64::from(r >= w);
        r as u32
    }

    /// Number of stored random values (Table IV accounting).
    #[must_use]
    pub fn random_number_count(&self) -> usize {
        self.scheme.random_number_count(self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn all_schemes(w: usize, seed: u64) -> Vec<Mapping4d> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Scheme4d::all()
            .into_iter()
            .map(|s| Mapping4d::new(s, &mut rng, w).unwrap())
            .collect()
    }

    #[test]
    fn zero_width_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            Mapping4d::new(Scheme4d::Raw, &mut rng, 0),
            Err(CoreError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn raw_is_identity_layout() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = Mapping4d::new(Scheme4d::Raw, &mut rng, 4).unwrap();
        assert_eq!(m.address(0, 0, 0, 0), 0);
        assert_eq!(m.address(0, 0, 0, 3), 3);
        assert_eq!(m.address(0, 0, 1, 0), 4);
        assert_eq!(m.address(0, 1, 0, 0), 16);
        assert_eq!(m.address(1, 0, 0, 0), 64);
        assert_eq!(m.bank(2, 3, 1, 2), 2);
    }

    #[test]
    fn every_scheme_is_bijective_small() {
        for m in all_schemes(4, 2) {
            let mut seen = HashSet::new();
            for d3 in 0..4 {
                for d2 in 0..4 {
                    for d1 in 0..4 {
                        for d0 in 0..4 {
                            let a = m.address(d3, d2, d1, d0);
                            assert!(a < 256, "{}: address {a} out of range", m.scheme());
                            assert!(seen.insert(a), "{}: address {a} duplicated", m.scheme());
                        }
                    }
                }
            }
            assert_eq!(seen.len(), 256);
        }
    }

    #[test]
    fn rotation_stays_in_row() {
        for m in all_schemes(8, 3) {
            for d3 in 0..8 {
                for d1 in 0..8 {
                    let base = m.address(d3, 5, d1, 0) / 8;
                    for d0 in 1..8 {
                        assert_eq!(
                            m.address(d3, 5, d1, d0) / 8,
                            base,
                            "{}: rotation escaped its row",
                            m.scheme()
                        );
                    }
                }
            }
        }
    }

    /// Stride-1 access (`d1` varies) is conflict-free for every permutation
    /// scheme — the Table IV "Stride1" row.
    #[test]
    fn stride1_conflict_free_for_permutation_schemes() {
        let w = 16;
        for m in all_schemes(w, 4) {
            let banks: HashSet<u32> = (0..w as u32).map(|d1| m.bank(3, 5, d1, 2)).collect();
            match m.scheme() {
                Scheme4d::OneP
                | Scheme4d::R1P
                | Scheme4d::ThreeP
                | Scheme4d::WSquaredP
                | Scheme4d::OnePlusWSquaredR => {
                    assert_eq!(
                        banks.len(),
                        w,
                        "{} stride1 must be conflict-free",
                        m.scheme()
                    );
                }
                Scheme4d::Raw => assert_eq!(banks.len(), 1),
                Scheme4d::Ras => {} // probabilistic; covered by the bench
            }
        }
    }

    /// Stride-2/3 access is conflict-free only for R1P and 3P; 1P collapses
    /// to one bank exactly like RAW.
    #[test]
    fn stride2_and_stride3_classes() {
        let w = 16;
        for m in all_schemes(w, 5) {
            let banks2: HashSet<u32> = (0..w as u32).map(|d2| m.bank(3, d2, 5, 2)).collect();
            let banks3: HashSet<u32> = (0..w as u32).map(|d3| m.bank(d3, 3, 5, 2)).collect();
            match m.scheme() {
                Scheme4d::R1P | Scheme4d::ThreeP => {
                    assert_eq!(banks2.len(), w, "{} stride2", m.scheme());
                    assert_eq!(banks3.len(), w, "{} stride3", m.scheme());
                }
                Scheme4d::Raw | Scheme4d::OneP => {
                    assert_eq!(banks2.len(), 1, "{} stride2", m.scheme());
                    assert_eq!(banks3.len(), 1, "{} stride3", m.scheme());
                }
                _ => {} // probabilistic schemes
            }
        }
    }

    /// Contiguous access (`d0` varies) is conflict-free under every scheme:
    /// the shift is constant along a row and rotation preserves distinctness.
    #[test]
    fn contiguous_always_conflict_free() {
        let w = 16;
        for m in all_schemes(w, 6) {
            let banks: HashSet<u32> = (0..w as u32).map(|d0| m.bank(7, 2, 9, d0)).collect();
            assert_eq!(banks.len(), w, "{} contiguous", m.scheme());
        }
    }

    /// The R1P weakness (paper §VII): index-permutations of `(a,b,c)` share
    /// the shift sum, hence the bank.
    #[test]
    fn r1p_is_symmetric_under_index_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = Mapping4d::new(Scheme4d::R1P, &mut rng, 16).unwrap();
        let (a, b, c) = (2, 9, 13);
        let d0 = 5;
        let reference = m.bank(a, b, c, d0);
        for (x, y, z) in [(a, c, b), (b, a, c), (b, c, a), (c, a, b), (c, b, a)] {
            assert_eq!(m.bank(x, y, z, d0), reference);
        }
    }

    /// 3P does *not* have the R1P symmetry (with overwhelming probability a
    /// random instance breaks it; we use a fixed seed known to do so).
    #[test]
    fn threep_breaks_index_permutation_symmetry() {
        let mut rng = SmallRng::seed_from_u64(8);
        let m = Mapping4d::new(Scheme4d::ThreeP, &mut rng, 16).unwrap();
        let (a, b, c) = (2, 9, 13);
        let banks: HashSet<u32> = [
            (a, b, c),
            (a, c, b),
            (b, a, c),
            (b, c, a),
            (c, a, b),
            (c, b, a),
        ]
        .into_iter()
        .map(|(x, y, z)| m.bank(x, y, z, 5))
        .collect();
        assert!(
            banks.len() > 1,
            "3P should not map all index-permutations to one bank"
        );
    }

    #[test]
    fn random_number_counts_match_table4() {
        let w = 32;
        assert_eq!(Scheme4d::Raw.random_number_count(w), 0);
        assert_eq!(Scheme4d::Ras.random_number_count(w), 32 * 32 * 32);
        assert_eq!(Scheme4d::OneP.random_number_count(w), 32);
        assert_eq!(Scheme4d::R1P.random_number_count(w), 32);
        assert_eq!(Scheme4d::ThreeP.random_number_count(w), 96);
        assert_eq!(Scheme4d::WSquaredP.random_number_count(w), 32 * 32 * 32);
        assert_eq!(Scheme4d::OnePlusWSquaredR.random_number_count(w), 1056);
    }

    #[test]
    fn scheme_display_names() {
        let names: Vec<&str> = Scheme4d::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["RAW", "RAS", "1P", "R1P", "3P", "w^2P", "1P+w^2R"]
        );
    }
}
