//! Error types for the core crate.

use std::fmt;

/// Errors produced while constructing mappings and permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A table passed to [`crate::Permutation::from_table`] was not a
    /// bijection on `{0..len}`.
    NotAPermutation {
        /// Expected domain size.
        len: usize,
        /// The offending value (duplicate or out of range).
        value: u32,
    },
    /// A width parameter was invalid (zero, or not a power of two where one
    /// is required by the packed-register layout).
    InvalidWidth {
        /// The rejected width.
        width: usize,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A shift value does not fit in the packed bit layout.
    ShiftOutOfRange {
        /// The rejected shift.
        shift: u32,
        /// Maximum representable shift.
        max: u32,
    },
    /// A mapping was asked about coordinates outside its domain.
    IndexOutOfBounds {
        /// The rejected linear or component index.
        index: usize,
        /// The domain bound.
        bound: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotAPermutation { len, value } => write!(
                f,
                "table is not a permutation of 0..{len}: offending value {value}"
            ),
            CoreError::InvalidWidth { width, reason } => {
                write!(f, "invalid width {width}: {reason}")
            }
            CoreError::ShiftOutOfRange { shift, max } => {
                write!(f, "shift {shift} exceeds packed maximum {max}")
            }
            CoreError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for domain of size {bound}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::NotAPermutation { len: 4, value: 9 };
        assert!(e.to_string().contains("0..4"));
        assert!(e.to_string().contains('9'));

        let e = CoreError::InvalidWidth {
            width: 0,
            reason: "width must be positive",
        };
        assert!(e.to_string().contains("width must be positive"));

        let e = CoreError::ShiftOutOfRange { shift: 40, max: 31 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("31"));

        let e = CoreError::IndexOutOfBounds { index: 5, bound: 4 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidWidth {
            width: 3,
            reason: "not a power of two",
        });
    }
}
