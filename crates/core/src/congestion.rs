//! Memory access congestion — the paper's central cost metric.
//!
//! For a warp of `w` threads issuing one memory request each, the
//! **congestion** is the maximum, over the `w` banks, of the number of
//! *unique* addresses requested in that bank (paper §II). Two rules from
//! the DMM's CRCW semantics matter:
//!
//! 1. requests to the **same address are merged** and count once (so a
//!    full-warp broadcast has congestion 1);
//! 2. distinct addresses in the same bank serialize (congestion `c` costs
//!    `c` pipeline slots).
//!
//! Congestion of a non-empty access is therefore in `1..=w`.

use serde::{Deserialize, Serialize};

/// Bank of a flat address on a machine with `width` banks.
///
/// # Panics
/// Panics if `width == 0` — explicitly, with the same message as every
/// other congestion entry point (not as an incidental division-by-zero).
#[inline]
#[must_use]
pub fn bank_of(width: usize, address: u64) -> u32 {
    assert!(width > 0, "machine width must be positive");
    (address % width as u64) as u32
}

/// Per-bank unique-request loads plus the merged request list of one warp
/// access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankLoads {
    width: usize,
    loads: Vec<u32>,
    unique_requests: usize,
}

impl BankLoads {
    /// Analyze one warp access given the flat physical addresses requested
    /// by its threads. Duplicate addresses are merged (CRCW).
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn analyze(width: usize, addresses: &[u64]) -> Self {
        assert!(width > 0, "machine width must be positive");
        let mut sorted: Vec<u64> = addresses.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut loads = vec![0u32; width];
        for &a in &sorted {
            loads[(a % width as u64) as usize] += 1;
        }
        Self {
            width,
            unique_requests: sorted.len(),
            loads,
        }
    }

    /// The congestion: maximum unique-request count over banks (0 for an
    /// empty access).
    #[must_use]
    pub fn congestion(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Unique-request count of a specific bank.
    ///
    /// # Panics
    /// Panics if `bank ≥ width`.
    #[must_use]
    pub fn load(&self, bank: u32) -> u32 {
        self.loads[bank as usize]
    }

    /// All per-bank loads.
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Number of distinct addresses after CRCW merging.
    #[must_use]
    pub fn unique_requests(&self) -> usize {
        self.unique_requests
    }

    /// Number of banks receiving at least one request.
    #[must_use]
    pub fn busy_banks(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }

    /// Whether the access is conflict-free (congestion ≤ 1).
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        self.congestion() <= 1
    }

    /// Machine width used for the analysis.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Reusable scratch for the congestion kernel: a sort/dedup buffer plus
/// per-bank unique-request counts.
///
/// [`BankLoads::analyze`] allocates two fresh `Vec`s per warp; in a
/// Monte-Carlo sweep that is millions of allocations doing no useful work.
/// Holding one `CongestionScratch` per worker amortizes the buffers to a
/// single high-water-mark allocation, and warps with `width ≤ 128` bypass
/// the heap entirely through a fixed stack hash set (128 slots for ≤ 64
/// lanes, 256 up to 128) with a `u128` bank-occupancy bitmask.
///
/// All paths compute the exact same metric as [`BankLoads::analyze`]
/// (sort, CRCW-merge duplicates, max unique-per-bank count) — the unit and
/// property tests assert bit-identical results.
#[derive(Debug, Clone, Default)]
pub struct CongestionScratch {
    sorted: Vec<u64>,
    counts: Vec<u32>,
}

/// Dedup + count in fixed stack buffers, tracking bank occupancy in an
/// integer bitmask.
///
/// CRCW merging is done without sorting: each address is inserted into a
/// `TABLE`-slot open-addressing set on the stack (Fibonacci hash, linear
/// probing) and contributes only if it was not already present. With
/// `TABLE ≥ 2 · len` the expected probe count per insert is ~1, so the
/// whole kernel is `O(n)` with no allocation and the input untouched —
/// unlike the sort-based [`BankLoads::analyze`]. Slot occupancy lives in
/// a packed bitmask (`used`), bank occupancy in `occupied`; the
/// power-of-two test for the bank computation is hoisted so every width
/// the paper evaluates (16..256) replaces the per-address `u64` division
/// with an AND.
#[inline]
fn congestion_fixed<const TABLE: usize>(width: usize, addresses: &[u64]) -> u32 {
    const {
        assert!(TABLE.is_power_of_two() && TABLE <= 256);
    }
    debug_assert!(width <= 128 && 2 * addresses.len() <= TABLE);
    let wd = width as u64;
    let pow2 = wd.is_power_of_two();
    let m = wd - 1; // valid bank mask only when `pow2`
    let slot_shift = 64 - TABLE.trailing_zeros();
    let mut keys = [0u64; TABLE];
    let mut used = [0u64; 4]; // TABLE ≤ 256 slot-occupancy bits
    let mut occupied: u128 = 0;
    let mut counts = [0u8; 128];
    let mut max = 0u8;
    'warp: for &a in addresses {
        let mut slot = (a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> slot_shift) as usize;
        loop {
            let bit = 1u64 << (slot & 63);
            if used[slot >> 6] & bit == 0 {
                used[slot >> 6] |= bit;
                keys[slot] = a;
                break; // first occurrence
            }
            if keys[slot] == a {
                continue 'warp; // CRCW merge: duplicate address counts once
            }
            slot = (slot + 1) & (TABLE - 1);
        }
        let bank = if pow2 {
            (a & m) as usize
        } else {
            (a % wd) as usize
        };
        let bit = 1u128 << bank;
        if occupied & bit == 0 {
            occupied |= bit;
            counts[bank] = 1;
            max = max.max(1);
        } else {
            counts[bank] += 1;
            max = max.max(counts[bank]);
        }
    }
    u32::from(max)
}

#[inline]
fn congestion_fixed64(width: usize, addresses: &[u64]) -> u32 {
    congestion_fixed::<128>(width, addresses)
}

#[inline]
fn congestion_fixed128(width: usize, addresses: &[u64]) -> u32 {
    congestion_fixed::<256>(width, addresses)
}

impl CongestionScratch {
    /// An empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Congestion of one warp access — identical to
    /// `BankLoads::analyze(width, addresses).congestion()` but without
    /// per-call allocation.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn congestion(&mut self, width: usize, addresses: &[u64]) -> u32 {
        assert!(width > 0, "machine width must be positive");
        if width <= 64 && addresses.len() <= 64 {
            congestion_fixed64(width, addresses)
        } else if width <= 128 && addresses.len() <= 128 {
            congestion_fixed128(width, addresses)
        } else {
            self.congestion_general(width, addresses)
        }
    }

    /// Heap-buffer path for wide machines or oversized address lists; the
    /// buffers are reused across calls.
    fn congestion_general(&mut self, width: usize, addresses: &[u64]) -> u32 {
        self.sorted.clear();
        self.sorted.extend_from_slice(addresses);
        self.sorted.sort_unstable();
        self.sorted.dedup();
        self.counts.clear();
        self.counts.resize(width, 0);
        let mut max = 0u32;
        for &a in &self.sorted {
            let bank = (a % width as u64) as usize;
            self.counts[bank] += 1;
            max = max.max(self.counts[bank]);
        }
        max
    }
}

/// Congestion of one warp access (stack/scratch-free convenience; takes
/// the same fast paths as [`CongestionScratch::congestion`]).
///
/// # Panics
/// Panics if `width == 0`. The check is hoisted above the path dispatch
/// so every input size hits the same explicit contract — previously the
/// 65..=128-address fast path would fall into an incidental
/// division-by-zero instead.
#[must_use]
pub fn congestion(width: usize, addresses: &[u64]) -> u32 {
    assert!(width > 0, "machine width must be positive");
    if width <= 64 && addresses.len() <= 64 {
        congestion_fixed64(width, addresses)
    } else if width <= 128 && addresses.len() <= 128 {
        congestion_fixed128(width, addresses)
    } else {
        BankLoads::analyze(width, addresses).congestion()
    }
}

/// Whether a warp access is conflict-free.
///
/// # Panics
/// Panics if `width == 0` (see [`congestion`]).
#[must_use]
pub fn is_conflict_free(width: usize, addresses: &[u64]) -> bool {
    congestion(width, addresses) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_of_wraps() {
        assert_eq!(bank_of(4, 0), 0);
        assert_eq!(bank_of(4, 5), 1);
        assert_eq!(bank_of(4, 15), 3);
        assert_eq!(bank_of(32, 1024), 0);
    }

    #[test]
    fn empty_access_is_zero() {
        let b = BankLoads::analyze(8, &[]);
        assert_eq!(b.congestion(), 0);
        assert_eq!(b.unique_requests(), 0);
        assert_eq!(b.busy_banks(), 0);
        assert!(b.is_conflict_free());
    }

    /// Paper Figure 2 (1): requests to distinct banks → congestion 1.
    #[test]
    fn figure2_case1_distinct_banks() {
        // w = 4; addresses 0, 5, 10, 15 are in banks 0, 1, 2, 3.
        let b = BankLoads::analyze(4, &[0, 5, 10, 15]);
        assert_eq!(b.congestion(), 1);
        assert!(b.is_conflict_free());
        assert_eq!(b.busy_banks(), 4);
    }

    /// Paper Figure 2 (2): all requests to the same bank → congestion w.
    #[test]
    fn figure2_case2_same_bank() {
        let b = BankLoads::analyze(4, &[0, 4, 8, 12]);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.load(0), 4);
        assert_eq!(b.busy_banks(), 1);
    }

    /// Paper Figure 2 (3): all threads access the same address → merged,
    /// congestion 1.
    #[test]
    fn figure2_case3_broadcast_merges() {
        let b = BankLoads::analyze(4, &[7, 7, 7, 7]);
        assert_eq!(b.congestion(), 1);
        assert_eq!(b.unique_requests(), 1);
    }

    #[test]
    fn partial_merge() {
        // Two threads share address 3, two more hit addresses 7 and 11 —
        // banks 3, 3, 3 after merge → loads [0,0,0,3].
        let b = BankLoads::analyze(4, &[3, 3, 7, 11]);
        assert_eq!(b.unique_requests(), 3);
        assert_eq!(b.congestion(), 3);
        assert_eq!(b.loads(), &[0, 0, 0, 3]);
    }

    #[test]
    fn mixed_banks_max_is_taken() {
        // Bank 0: addresses 0, 8 (2 unique); bank 1: address 1 (1).
        let b = BankLoads::analyze(4, &[0, 8, 1]);
        assert_eq!(b.congestion(), 2);
        assert_eq!(b.load(0), 2);
        assert_eq!(b.load(1), 1);
        assert_eq!(b.load(2), 0);
    }

    #[test]
    fn convenience_wrappers_agree() {
        let addrs = [0u64, 4, 8, 1, 2];
        assert_eq!(
            congestion(4, &addrs),
            BankLoads::analyze(4, &addrs).congestion()
        );
        assert!(!is_conflict_free(4, &addrs));
        assert!(is_conflict_free(4, &[0, 1, 2, 3]));
    }

    #[test]
    fn congestion_bounded_by_warp_size_and_width() {
        // 32 requests into width 8: congestion ≤ 32 but also each bank sees
        // ≤ 32 unique addresses; with addresses 0..32 each bank gets 4.
        let addrs: Vec<u64> = (0..32).collect();
        let b = BankLoads::analyze(8, &addrs);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.busy_banks(), 8);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = BankLoads::analyze(0, &[1]);
    }

    #[test]
    fn width_one_serializes_everything() {
        let b = BankLoads::analyze(1, &[10, 20, 30]);
        assert_eq!(b.congestion(), 3);
    }

    /// The scratch kernel and both bitmask fast paths must agree
    /// bit-for-bit with the allocating `BankLoads::analyze` reference.
    #[test]
    fn scratch_matches_analyze_across_path_boundaries() {
        let mut scratch = CongestionScratch::new();
        // Hand-picked widths straddling the u64 (≤64), u128 (≤128), and
        // general (>128) path boundaries.
        for width in [1usize, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200] {
            for n in [0usize, 1, 2, 63, 64, 65, 127, 128, 129, 160] {
                // Deterministic pseudo-random addresses with plenty of
                // duplicates and same-bank collisions.
                let addrs: Vec<u64> = (0..n)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                        x % (3 * width as u64 + 7)
                    })
                    .collect();
                let reference = BankLoads::analyze(width, &addrs).congestion();
                assert_eq!(
                    scratch.congestion(width, &addrs),
                    reference,
                    "scratch vs analyze at width={width}, n={n}"
                );
                assert_eq!(
                    congestion(width, &addrs),
                    reference,
                    "free fn vs analyze at width={width}, n={n}"
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_widths() {
        let mut scratch = CongestionScratch::new();
        assert_eq!(scratch.congestion(4, &[0, 4, 8, 12]), 4);
        // A wide call grows the heap buffers...
        let wide: Vec<u64> = (0..200).map(|i| i * 150).collect();
        assert_eq!(
            scratch.congestion(150, &wide),
            BankLoads::analyze(150, &wide).congestion()
        );
        // ...and a subsequent narrow call still gets the right answer.
        assert_eq!(scratch.congestion(4, &[7, 7, 7, 7]), 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn scratch_zero_width_rejected() {
        let _ = CongestionScratch::new().congestion(0, &[1]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn bank_of_zero_width_rejected() {
        let _ = bank_of(0, 7);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_small_path() {
        let _ = congestion(0, &[1]);
    }

    /// 65..=128 addresses used to dodge the explicit assert and die in
    /// the u128 fast path's modulo instead; the hoisted check owns every
    /// path now.
    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_fixed128_path() {
        let addrs: Vec<u64> = (0..100).collect();
        let _ = congestion(0, &addrs);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_general_path() {
        let addrs: Vec<u64> = (0..200).collect();
        let _ = congestion(0, &addrs);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_even_when_empty() {
        let _ = congestion(0, &[]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn is_conflict_free_zero_width_rejected() {
        let _ = is_conflict_free(0, &[3]);
    }
}
