//! Memory access congestion — the paper's central cost metric.
//!
//! For a warp of `w` threads issuing one memory request each, the
//! **congestion** is the maximum, over the `w` banks, of the number of
//! *unique* addresses requested in that bank (paper §II). Two rules from
//! the DMM's CRCW semantics matter:
//!
//! 1. requests to the **same address are merged** and count once (so a
//!    full-warp broadcast has congestion 1);
//! 2. distinct addresses in the same bank serialize (congestion `c` costs
//!    `c` pipeline slots).
//!
//! Congestion of a non-empty access is therefore in `1..=w`.

use serde::{Deserialize, Serialize};

/// Bank of a flat address on a machine with `width` banks.
///
/// # Panics
/// Panics (in debug builds via the division) if `width == 0`.
#[inline]
#[must_use]
pub fn bank_of(width: usize, address: u64) -> u32 {
    (address % width as u64) as u32
}

/// Per-bank unique-request loads plus the merged request list of one warp
/// access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankLoads {
    width: usize,
    loads: Vec<u32>,
    unique_requests: usize,
}

impl BankLoads {
    /// Analyze one warp access given the flat physical addresses requested
    /// by its threads. Duplicate addresses are merged (CRCW).
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn analyze(width: usize, addresses: &[u64]) -> Self {
        assert!(width > 0, "machine width must be positive");
        let mut sorted: Vec<u64> = addresses.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut loads = vec![0u32; width];
        for &a in &sorted {
            loads[(a % width as u64) as usize] += 1;
        }
        Self {
            width,
            unique_requests: sorted.len(),
            loads,
        }
    }

    /// The congestion: maximum unique-request count over banks (0 for an
    /// empty access).
    #[must_use]
    pub fn congestion(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Unique-request count of a specific bank.
    ///
    /// # Panics
    /// Panics if `bank ≥ width`.
    #[must_use]
    pub fn load(&self, bank: u32) -> u32 {
        self.loads[bank as usize]
    }

    /// All per-bank loads.
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Number of distinct addresses after CRCW merging.
    #[must_use]
    pub fn unique_requests(&self) -> usize {
        self.unique_requests
    }

    /// Number of banks receiving at least one request.
    #[must_use]
    pub fn busy_banks(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }

    /// Whether the access is conflict-free (congestion ≤ 1).
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        self.congestion() <= 1
    }

    /// Machine width used for the analysis.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Congestion of one warp access (convenience wrapper over
/// [`BankLoads::analyze`]).
#[must_use]
pub fn congestion(width: usize, addresses: &[u64]) -> u32 {
    BankLoads::analyze(width, addresses).congestion()
}

/// Whether a warp access is conflict-free.
#[must_use]
pub fn is_conflict_free(width: usize, addresses: &[u64]) -> bool {
    congestion(width, addresses) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_of_wraps() {
        assert_eq!(bank_of(4, 0), 0);
        assert_eq!(bank_of(4, 5), 1);
        assert_eq!(bank_of(4, 15), 3);
        assert_eq!(bank_of(32, 1024), 0);
    }

    #[test]
    fn empty_access_is_zero() {
        let b = BankLoads::analyze(8, &[]);
        assert_eq!(b.congestion(), 0);
        assert_eq!(b.unique_requests(), 0);
        assert_eq!(b.busy_banks(), 0);
        assert!(b.is_conflict_free());
    }

    /// Paper Figure 2 (1): requests to distinct banks → congestion 1.
    #[test]
    fn figure2_case1_distinct_banks() {
        // w = 4; addresses 0, 5, 10, 15 are in banks 0, 1, 2, 3.
        let b = BankLoads::analyze(4, &[0, 5, 10, 15]);
        assert_eq!(b.congestion(), 1);
        assert!(b.is_conflict_free());
        assert_eq!(b.busy_banks(), 4);
    }

    /// Paper Figure 2 (2): all requests to the same bank → congestion w.
    #[test]
    fn figure2_case2_same_bank() {
        let b = BankLoads::analyze(4, &[0, 4, 8, 12]);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.load(0), 4);
        assert_eq!(b.busy_banks(), 1);
    }

    /// Paper Figure 2 (3): all threads access the same address → merged,
    /// congestion 1.
    #[test]
    fn figure2_case3_broadcast_merges() {
        let b = BankLoads::analyze(4, &[7, 7, 7, 7]);
        assert_eq!(b.congestion(), 1);
        assert_eq!(b.unique_requests(), 1);
    }

    #[test]
    fn partial_merge() {
        // Two threads share address 3, two more hit addresses 7 and 11 —
        // banks 3, 3, 3 after merge → loads [0,0,0,3].
        let b = BankLoads::analyze(4, &[3, 3, 7, 11]);
        assert_eq!(b.unique_requests(), 3);
        assert_eq!(b.congestion(), 3);
        assert_eq!(b.loads(), &[0, 0, 0, 3]);
    }

    #[test]
    fn mixed_banks_max_is_taken() {
        // Bank 0: addresses 0, 8 (2 unique); bank 1: address 1 (1).
        let b = BankLoads::analyze(4, &[0, 8, 1]);
        assert_eq!(b.congestion(), 2);
        assert_eq!(b.load(0), 2);
        assert_eq!(b.load(1), 1);
        assert_eq!(b.load(2), 0);
    }

    #[test]
    fn convenience_wrappers_agree() {
        let addrs = [0u64, 4, 8, 1, 2];
        assert_eq!(
            congestion(4, &addrs),
            BankLoads::analyze(4, &addrs).congestion()
        );
        assert!(!is_conflict_free(4, &addrs));
        assert!(is_conflict_free(4, &[0, 1, 2, 3]));
    }

    #[test]
    fn congestion_bounded_by_warp_size_and_width() {
        // 32 requests into width 8: congestion ≤ 32 but also each bank sees
        // ≤ 32 unique addresses; with addresses 0..32 each bank gets 4.
        let addrs: Vec<u64> = (0..32).collect();
        let b = BankLoads::analyze(8, &addrs);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.busy_banks(), 8);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = BankLoads::analyze(0, &[1]);
    }

    #[test]
    fn width_one_serializes_everything() {
        let b = BankLoads::analyze(1, &[10, 20, 30]);
        assert_eq!(b.congestion(), 3);
    }
}
