//! Memory access congestion — the paper's central cost metric.
//!
//! For a warp of `w` threads issuing one memory request each, the
//! **congestion** is the maximum, over the `w` banks, of the number of
//! *unique* addresses requested in that bank (paper §II). Two rules from
//! the DMM's CRCW semantics matter:
//!
//! 1. requests to the **same address are merged** and count once (so a
//!    full-warp broadcast has congestion 1);
//! 2. distinct addresses in the same bank serialize (congestion `c` costs
//!    `c` pipeline slots).
//!
//! Congestion of a non-empty access is therefore in `1..=w`.

use serde::{Deserialize, Serialize};

/// Bank of a flat address on a machine with `width` banks.
///
/// # Panics
/// Panics if `width == 0` — explicitly, with the same message as every
/// other congestion entry point (not as an incidental division-by-zero).
#[inline]
#[must_use]
pub fn bank_of(width: usize, address: u64) -> u32 {
    assert!(width > 0, "machine width must be positive");
    (address % width as u64) as u32
}

/// Per-bank unique-request loads plus the merged request list of one warp
/// access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankLoads {
    width: usize,
    loads: Vec<u32>,
    unique_requests: usize,
}

impl BankLoads {
    /// Analyze one warp access given the flat physical addresses requested
    /// by its threads. Duplicate addresses are merged (CRCW).
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn analyze(width: usize, addresses: &[u64]) -> Self {
        assert!(width > 0, "machine width must be positive");
        let mut sorted: Vec<u64> = addresses.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut loads = vec![0u32; width];
        for &a in &sorted {
            loads[(a % width as u64) as usize] += 1;
        }
        Self {
            width,
            unique_requests: sorted.len(),
            loads,
        }
    }

    /// [`BankLoads::analyze`] through the bit-parallel kernel: for
    /// `width ≤ 64` and at most 64 lanes the per-bank loads are counted in
    /// packed SWAR byte counters and expanded at the end, skipping the
    /// sort entirely; everything else falls back to [`BankLoads::analyze`].
    /// Results are bit-identical to `analyze` on every input — the unit
    /// and conformance tests pin this.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn analyze_fast(width: usize, addresses: &[u64]) -> Self {
        assert!(width > 0, "machine width must be positive");
        if width > SWAR_BANKS || addresses.len() > SWAR_LANES {
            return Self::analyze(width, addresses);
        }
        let mut swar = SwarCounters::new(width);
        let mut uniq = [0u64; SWAR_LANES];
        let mut n = 0usize;
        'warp: for &a in addresses {
            for &k in &uniq[..n] {
                if k == a {
                    continue 'warp;
                }
            }
            uniq[n] = a;
            n += 1;
            swar.count(a);
        }
        Self {
            width,
            unique_requests: n,
            loads: (0..width as u32).map(|b| swar.load(b)).collect(),
        }
    }

    /// The congestion: maximum unique-request count over banks (0 for an
    /// empty access).
    #[must_use]
    pub fn congestion(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Unique-request count of a specific bank.
    ///
    /// # Panics
    /// Panics if `bank ≥ width`.
    #[must_use]
    pub fn load(&self, bank: u32) -> u32 {
        self.loads[bank as usize]
    }

    /// All per-bank loads.
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Number of distinct addresses after CRCW merging.
    #[must_use]
    pub fn unique_requests(&self) -> usize {
        self.unique_requests
    }

    /// Number of banks receiving at least one request.
    #[must_use]
    pub fn busy_banks(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }

    /// Whether the access is conflict-free (congestion ≤ 1).
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        self.congestion() <= 1
    }

    /// Machine width used for the analysis.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Bank capacity of the bit-parallel fast path: 64 packed `u8` counters.
const SWAR_BANKS: usize = 64;

/// Lane capacity of the bit-parallel fast path. At most 64 unique
/// addresses are counted, so every packed counter stays within `u8`.
const SWAR_LANES: usize = 64;

/// Packed per-bank unique-request counters: 8 `u8` counters per `u64`
/// word, `[u64; 8]` covering the 64 banks of the SWAR fast path. An
/// increment is one shifted add into the bank's byte; the running maximum
/// re-extracts the just-incremented byte with the same shift, so the
/// whole update is branch-free.
#[derive(Debug, Clone)]
struct SwarCounters {
    cells: [u64; 8],
    max: u64,
    wd: u64,
    /// Bank mask, valid only when `pow2`.
    mask: u64,
    pow2: bool,
}

impl SwarCounters {
    #[inline]
    fn new(width: usize) -> Self {
        debug_assert!((1..=SWAR_BANKS).contains(&width));
        let wd = width as u64;
        Self {
            cells: [0u64; 8],
            max: 0,
            wd,
            mask: wd - 1,
            pow2: wd.is_power_of_two(),
        }
    }

    /// Bank of `a` — the power-of-two test is hoisted into `new` so every
    /// width the paper evaluates replaces the `u64` division with an AND.
    #[inline]
    fn bank_of(&self, a: u64) -> u32 {
        if self.pow2 {
            (a & self.mask) as u32
        } else {
            (a % self.wd) as u32
        }
    }

    /// Count one unique request to `bank`.
    #[inline]
    fn bump(&mut self, bank: u32) {
        debug_assert!((bank as usize) < SWAR_BANKS);
        let shift = (bank & 7) * 8;
        let cell = &mut self.cells[(bank >> 3) as usize];
        *cell += 1u64 << shift;
        self.max = self.max.max((*cell >> shift) & 0xFF);
    }

    /// Count one unique request at address `a`.
    #[inline]
    fn count(&mut self, a: u64) {
        self.bump(self.bank_of(a));
    }

    /// Unique-request count of `bank`.
    #[inline]
    fn load(&self, bank: u32) -> u32 {
        ((self.cells[(bank >> 3) as usize] >> ((bank & 7) * 8)) & 0xFF) as u32
    }

    /// The running maximum over all banks.
    #[inline]
    fn max(&self) -> u32 {
        self.max as u32
    }
}

/// The bit-parallel congestion kernel for `width ≤ 64` and at most 64
/// lanes.
///
/// CRCW merging is a branch-light linear scan over the unique addresses
/// seen so far (keyed `u64` comparisons over a stack array — for warp
/// sizes the comparison loop vectorizes and beats a hash probe chain's
/// multiply + dependent load + branches), and per-bank counts live in
/// packed SWAR byte counters ([`SwarCounters`]) instead of a 128-entry
/// `u8` array with a `u128` occupancy bitmask. `O(n²)` comparisons in the
/// worst case, but with `n ≤ 64` the constant is far below the branchy
/// alternatives, there is no allocation, and the input is untouched.
#[inline]
fn congestion_swar(width: usize, addresses: &[u64]) -> u32 {
    debug_assert!(width <= SWAR_BANKS && addresses.len() <= SWAR_LANES);
    let mut swar = SwarCounters::new(width);
    let mut uniq = [0u64; SWAR_LANES];
    let mut n = 0usize;
    'warp: for &a in addresses {
        for &k in &uniq[..n] {
            if k == a {
                continue 'warp; // CRCW merge: duplicate address counts once
            }
        }
        uniq[n] = a;
        n += 1;
        swar.count(a);
    }
    swar.max()
}

/// Dedup + count in fixed stack buffers for the 65..=128 band, tracking
/// bank occupancy in an integer bitmask.
///
/// CRCW merging is done without sorting: each address is inserted into a
/// `TABLE`-slot open-addressing set on the stack (Fibonacci hash, linear
/// probing) and contributes only if it was not already present. With
/// `TABLE ≥ 2 · len` the expected probe count per insert is ~1, so the
/// whole kernel is `O(n)` with no allocation and the input untouched —
/// unlike the sort-based [`BankLoads::analyze`]. Slot occupancy lives in
/// a packed bitmask (`used`), bank occupancy in `occupied`.
#[inline]
fn congestion_fixed<const TABLE: usize>(width: usize, addresses: &[u64]) -> u32 {
    const {
        assert!(TABLE.is_power_of_two() && TABLE <= 256);
    }
    debug_assert!(width <= 128 && 2 * addresses.len() <= TABLE);
    let wd = width as u64;
    let pow2 = wd.is_power_of_two();
    let m = wd - 1; // valid bank mask only when `pow2`
    let slot_shift = 64 - TABLE.trailing_zeros();
    let mut keys = [0u64; TABLE];
    let mut used = [0u64; 4]; // TABLE ≤ 256 slot-occupancy bits
    let mut occupied: u128 = 0;
    let mut counts = [0u8; 128];
    let mut max = 0u8;
    'warp: for &a in addresses {
        let mut slot = (a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> slot_shift) as usize;
        loop {
            let bit = 1u64 << (slot & 63);
            if used[slot >> 6] & bit == 0 {
                used[slot >> 6] |= bit;
                keys[slot] = a;
                break; // first occurrence
            }
            if keys[slot] == a {
                continue 'warp; // CRCW merge: duplicate address counts once
            }
            slot = (slot + 1) & (TABLE - 1);
        }
        let bank = if pow2 {
            (a & m) as usize
        } else {
            (a % wd) as usize
        };
        let bit = 1u128 << bank;
        if occupied & bit == 0 {
            occupied |= bit;
            counts[bank] = 1;
            max = max.max(1);
        } else {
            counts[bank] += 1;
            max = max.max(counts[bank]);
        }
    }
    u32::from(max)
}

/// The allocation-free fast paths, wired in exactly once: the SWAR kernel
/// for `width ≤ 64` with ≤ 64 lanes, the stack hash set for the 65..=128
/// band, `None` when only a heap path can serve. Both the free
/// [`congestion`] and [`CongestionScratch::congestion`] dispatch through
/// here (previously each carried its own copy of the if-chain).
#[inline]
fn congestion_small(width: usize, addresses: &[u64]) -> Option<u32> {
    if width <= SWAR_BANKS && addresses.len() <= SWAR_LANES {
        Some(congestion_swar(width, addresses))
    } else if width <= 128 && addresses.len() <= 128 {
        Some(congestion_fixed::<256>(width, addresses))
    } else {
        None
    }
}

/// Reusable scratch for the congestion kernel: a sort/dedup buffer plus
/// per-bank unique-request counts.
///
/// [`BankLoads::analyze`] allocates two fresh `Vec`s per warp; in a
/// Monte-Carlo sweep that is millions of allocations doing no useful work.
/// Holding one `CongestionScratch` per worker amortizes the buffers to a
/// single high-water-mark allocation, and warps with `width ≤ 128` bypass
/// the heap entirely — `width ≤ 64` through the bit-parallel SWAR kernel,
/// 65..=128 through a fixed stack hash set.
///
/// All paths compute the exact same metric as [`BankLoads::analyze`]
/// (sort, CRCW-merge duplicates, max unique-per-bank count) — the unit,
/// property, and conformance tests assert bit-identical results.
#[derive(Debug, Clone, Default)]
pub struct CongestionScratch {
    sorted: Vec<u64>,
    counts: Vec<u32>,
}

impl CongestionScratch {
    /// An empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Congestion of one warp access — identical to
    /// `BankLoads::analyze(width, addresses).congestion()` but without
    /// per-call allocation.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn congestion(&mut self, width: usize, addresses: &[u64]) -> u32 {
        assert!(width > 0, "machine width must be positive");
        congestion_small(width, addresses)
            .unwrap_or_else(|| self.congestion_general(width, addresses))
    }

    /// Heap-buffer path for wide machines or oversized address lists; the
    /// buffers are reused across calls.
    fn congestion_general(&mut self, width: usize, addresses: &[u64]) -> u32 {
        self.sorted.clear();
        self.sorted.extend_from_slice(addresses);
        self.sorted.sort_unstable();
        self.sorted.dedup();
        self.counts.clear();
        self.counts.resize(width, 0);
        let mut max = 0u32;
        for &a in &self.sorted {
            let bank = (a % width as u64) as usize;
            self.counts[bank] += 1;
            max = max.max(self.counts[bank]);
        }
        max
    }
}

/// One warp's congestion accumulated bit-parallel: a `u64` bitmask per
/// bank, one bit per *tag*, where the caller guarantees that two lanes
/// refer to the same address **iff** they share the `(tag, bank)` pair.
/// Congestion is then the maximum `popcount` over the per-bank masks —
/// dedup and counting collapse into a single `OR` per lane.
///
/// The permute-shift matrix mapping fits this exactly: lane `(i, j)`
/// lands in bank `rot_i(j)` at address `i·w + rot_i(j)`, so within one
/// bank the row index `i` (< `w` ≤ 64) identifies the address — pass
/// `tag = i`. Any injective mapping with a ≤ 64-valued per-bank
/// discriminator works the same way.
///
/// Lives entirely on the stack (512 B of masks), so there is nothing to
/// reuse across warps — build one per warp with [`CompactCongestion::new`].
#[derive(Debug, Clone)]
pub struct CompactCongestion {
    masks: [u64; SWAR_BANKS],
    width: u32,
}

impl CompactCongestion {
    /// Start a warp accumulation for a `width`-bank machine.
    ///
    /// # Panics
    /// Panics if `width == 0` or `width > 64` (the compact path exists
    /// only for the bit-parallel bank range).
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "machine width must be positive");
        assert!(
            width <= SWAR_BANKS,
            "compact path requires width ≤ {SWAR_BANKS}, got {width}"
        );
        Self {
            masks: [0; SWAR_BANKS],
            width: width as u32,
        }
    }

    /// Count one lane: `bank` is the bank it lands in and `tag` (< 64)
    /// discriminates addresses within that bank. Branch-free — one `OR`;
    /// a duplicate `(tag, bank)` pair sets an already-set bit.
    ///
    /// Out-of-range inputs are a contract violation (debug-asserted);
    /// in release builds they wrap into the valid range rather than
    /// reading out of bounds.
    #[inline]
    pub fn lane(&mut self, tag: u32, bank: u32) {
        debug_assert!(tag < SWAR_BANKS as u32, "tag {tag} out of range");
        debug_assert!(bank < self.width, "bank {bank} out of range");
        self.masks[(bank & 63) as usize] |= 1u64 << (tag & 63);
    }

    /// The congestion of the lanes seen so far (0 if none).
    #[inline]
    #[must_use]
    pub fn finish(self) -> u32 {
        self.masks[..self.width as usize]
            .iter()
            .map(|m| m.count_ones())
            .max()
            .unwrap_or(0)
    }
}

/// Congestion of one warp access (stack/scratch-free convenience; takes
/// the same fast paths as [`CongestionScratch::congestion`]).
///
/// # Panics
/// Panics if `width == 0`. The check is hoisted above the path dispatch
/// so every input size hits the same explicit contract — previously the
/// 65..=128-address fast path would fall into an incidental
/// division-by-zero instead.
#[must_use]
pub fn congestion(width: usize, addresses: &[u64]) -> u32 {
    assert!(width > 0, "machine width must be positive");
    congestion_small(width, addresses)
        .unwrap_or_else(|| BankLoads::analyze(width, addresses).congestion())
}

/// Whether a warp access is conflict-free.
///
/// # Panics
/// Panics if `width == 0` (see [`congestion`]).
#[must_use]
pub fn is_conflict_free(width: usize, addresses: &[u64]) -> bool {
    congestion(width, addresses) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_of_wraps() {
        assert_eq!(bank_of(4, 0), 0);
        assert_eq!(bank_of(4, 5), 1);
        assert_eq!(bank_of(4, 15), 3);
        assert_eq!(bank_of(32, 1024), 0);
    }

    #[test]
    fn empty_access_is_zero() {
        let b = BankLoads::analyze(8, &[]);
        assert_eq!(b.congestion(), 0);
        assert_eq!(b.unique_requests(), 0);
        assert_eq!(b.busy_banks(), 0);
        assert!(b.is_conflict_free());
    }

    /// Paper Figure 2 (1): requests to distinct banks → congestion 1.
    #[test]
    fn figure2_case1_distinct_banks() {
        // w = 4; addresses 0, 5, 10, 15 are in banks 0, 1, 2, 3.
        let b = BankLoads::analyze(4, &[0, 5, 10, 15]);
        assert_eq!(b.congestion(), 1);
        assert!(b.is_conflict_free());
        assert_eq!(b.busy_banks(), 4);
    }

    /// Paper Figure 2 (2): all requests to the same bank → congestion w.
    #[test]
    fn figure2_case2_same_bank() {
        let b = BankLoads::analyze(4, &[0, 4, 8, 12]);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.load(0), 4);
        assert_eq!(b.busy_banks(), 1);
    }

    /// Paper Figure 2 (3): all threads access the same address → merged,
    /// congestion 1.
    #[test]
    fn figure2_case3_broadcast_merges() {
        let b = BankLoads::analyze(4, &[7, 7, 7, 7]);
        assert_eq!(b.congestion(), 1);
        assert_eq!(b.unique_requests(), 1);
    }

    #[test]
    fn partial_merge() {
        // Two threads share address 3, two more hit addresses 7 and 11 —
        // banks 3, 3, 3 after merge → loads [0,0,0,3].
        let b = BankLoads::analyze(4, &[3, 3, 7, 11]);
        assert_eq!(b.unique_requests(), 3);
        assert_eq!(b.congestion(), 3);
        assert_eq!(b.loads(), &[0, 0, 0, 3]);
    }

    #[test]
    fn mixed_banks_max_is_taken() {
        // Bank 0: addresses 0, 8 (2 unique); bank 1: address 1 (1).
        let b = BankLoads::analyze(4, &[0, 8, 1]);
        assert_eq!(b.congestion(), 2);
        assert_eq!(b.load(0), 2);
        assert_eq!(b.load(1), 1);
        assert_eq!(b.load(2), 0);
    }

    #[test]
    fn convenience_wrappers_agree() {
        let addrs = [0u64, 4, 8, 1, 2];
        assert_eq!(
            congestion(4, &addrs),
            BankLoads::analyze(4, &addrs).congestion()
        );
        assert!(!is_conflict_free(4, &addrs));
        assert!(is_conflict_free(4, &[0, 1, 2, 3]));
    }

    #[test]
    fn congestion_bounded_by_warp_size_and_width() {
        // 32 requests into width 8: congestion ≤ 32 but also each bank sees
        // ≤ 32 unique addresses; with addresses 0..32 each bank gets 4.
        let addrs: Vec<u64> = (0..32).collect();
        let b = BankLoads::analyze(8, &addrs);
        assert_eq!(b.congestion(), 4);
        assert_eq!(b.busy_banks(), 8);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = BankLoads::analyze(0, &[1]);
    }

    #[test]
    fn width_one_serializes_everything() {
        let b = BankLoads::analyze(1, &[10, 20, 30]);
        assert_eq!(b.congestion(), 3);
    }

    /// The scratch kernel and both bitmask fast paths must agree
    /// bit-for-bit with the allocating `BankLoads::analyze` reference.
    #[test]
    fn scratch_matches_analyze_across_path_boundaries() {
        let mut scratch = CongestionScratch::new();
        // Hand-picked widths straddling the u64 (≤64), u128 (≤128), and
        // general (>128) path boundaries.
        for width in [1usize, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200] {
            for n in [0usize, 1, 2, 63, 64, 65, 127, 128, 129, 160] {
                // Deterministic pseudo-random addresses with plenty of
                // duplicates and same-bank collisions.
                let addrs: Vec<u64> = (0..n)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                        x % (3 * width as u64 + 7)
                    })
                    .collect();
                let reference = BankLoads::analyze(width, &addrs).congestion();
                assert_eq!(
                    scratch.congestion(width, &addrs),
                    reference,
                    "scratch vs analyze at width={width}, n={n}"
                );
                assert_eq!(
                    congestion(width, &addrs),
                    reference,
                    "free fn vs analyze at width={width}, n={n}"
                );
            }
        }
    }

    /// SWAR boundary widths: 63 (odd, last SWAR width minus one), 64 (the
    /// last SWAR width, power of two), 65 (first width past the packed
    /// counters). Every lane count around the 64-lane capacity is swept,
    /// adversarial inputs included (all-same-bank, all-duplicates, and a
    /// max-density mix), against the allocating reference.
    #[test]
    fn swar_boundaries_match_analyze() {
        let mut scratch = CongestionScratch::new();
        for width in [63usize, 64, 65] {
            for n in [0usize, 1, 62, 63, 64, 65, 66] {
                let w = width as u64;
                let cases: [Vec<u64>; 4] = [
                    // one bank, all unique: congestion = n
                    (0..n as u64).map(|i| i * w).collect(),
                    // all lanes one address: congestion ≤ 1
                    vec![7 * w + 3; n],
                    // half duplicates, half same-bank uniques
                    (0..n as u64)
                        .map(|i| if i % 2 == 0 { w + 1 } else { i * w })
                        .collect(),
                    // pseudo-random with cross-bank spread
                    (0..n as u64)
                        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) % (5 * w))
                        .collect(),
                ];
                for (ci, addrs) in cases.iter().enumerate() {
                    let reference = BankLoads::analyze(width, addrs).congestion();
                    assert_eq!(
                        congestion(width, addrs),
                        reference,
                        "free fn, width={width} n={n} case={ci}"
                    );
                    assert_eq!(
                        scratch.congestion(width, addrs),
                        reference,
                        "scratch, width={width} n={n} case={ci}"
                    );
                }
            }
        }
    }

    /// A packed byte counter must hold the worst case: 64 unique
    /// addresses all in one bank (count 64 < 256, no carry into the
    /// neighbouring counter byte).
    #[test]
    fn swar_counter_never_carries_into_neighbour_bank() {
        for width in [63usize, 64] {
            let w = width as u64;
            // 64 unique addresses in bank 8 (cell 1, byte 0) and one in
            // bank 9 (cell 1, byte 1): a carry from byte 0 would corrupt
            // bank 9's count.
            let mut addrs: Vec<u64> = (0..63).map(|i| 8 + i * w).collect();
            addrs.push(9);
            let b = BankLoads::analyze_fast(width, &addrs);
            assert_eq!(b.load(8), 63);
            assert_eq!(b.load(9), 1);
            assert_eq!(b.congestion(), 63);
        }
    }

    #[test]
    fn analyze_fast_is_bit_identical_to_analyze() {
        for width in [1usize, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200] {
            for n in [0usize, 1, 2, 63, 64, 65, 100] {
                let addrs: Vec<u64> = (0..n)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                        x % (3 * width as u64 + 7)
                    })
                    .collect();
                assert_eq!(
                    BankLoads::analyze_fast(width, &addrs),
                    BankLoads::analyze(width, &addrs),
                    "width={width}, n={n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn analyze_fast_zero_width_rejected() {
        let _ = BankLoads::analyze_fast(0, &[1]);
    }

    /// The compact bitmask path must agree with the address-space kernels
    /// on every width it serves, for many adversarial warps. Each lane is
    /// a synthetic `(tag, bank)` pair encoding address `tag·w + bank`
    /// (injective, and `bank_of` recovers `bank`), which is exactly the
    /// contract the fused matrix evaluator relies on.
    #[test]
    fn compact_path_matches_analyze_across_many_warps() {
        for width in [1usize, 2, 31, 32, 33, 63, 64] {
            let w = width as u64;
            for warp in 0..200u64 {
                let lanes: Vec<(u32, u32)> = (0..width as u64)
                    .map(|t| {
                        let x = splitmix_like(warp * 131 + t * 7 + width as u64);
                        (((x >> 32) % w) as u32, (x % w) as u32)
                    })
                    .collect();
                let addrs: Vec<u64> = lanes
                    .iter()
                    .map(|&(tag, bank)| u64::from(tag) * w + u64::from(bank))
                    .collect();
                let reference = BankLoads::analyze(width, &addrs).congestion();
                let mut cc = CompactCongestion::new(width);
                for &(tag, bank) in &lanes {
                    cc.lane(tag, bank);
                }
                assert_eq!(cc.finish(), reference, "width={width}, warp={warp}");
            }
        }
    }

    /// Duplicate `(tag, bank)` pairs merge (CRCW semantics), an empty
    /// warp reports 0, and consecutive accumulations are independent.
    #[test]
    fn compact_path_merges_duplicates_and_isolates_warps() {
        assert_eq!(CompactCongestion::new(8).finish(), 0);
        let mut cc = CompactCongestion::new(8);
        for _ in 0..64 {
            cc.lane(5, 3);
        }
        assert_eq!(cc.finish(), 1, "one address hit 64 times is congestion 1");
        // A fully-loaded warp, then a fresh accumulator: no leakage.
        let mut cc = CompactCongestion::new(4);
        for tag in 0..4u32 {
            cc.lane(tag, 2);
        }
        assert_eq!(cc.finish(), 4);
        let mut cc = CompactCongestion::new(4);
        cc.lane(0, 2);
        assert_eq!(cc.finish(), 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn compact_zero_width_rejected() {
        let _ = CompactCongestion::new(0);
    }

    #[test]
    #[should_panic(expected = "width ≤ 64")]
    fn compact_wide_width_rejected() {
        let _ = CompactCongestion::new(65);
    }

    fn splitmix_like(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }

    #[test]
    fn scratch_is_reusable_across_widths() {
        let mut scratch = CongestionScratch::new();
        assert_eq!(scratch.congestion(4, &[0, 4, 8, 12]), 4);
        // A wide call grows the heap buffers...
        let wide: Vec<u64> = (0..200).map(|i| i * 150).collect();
        assert_eq!(
            scratch.congestion(150, &wide),
            BankLoads::analyze(150, &wide).congestion()
        );
        // ...and a subsequent narrow call still gets the right answer.
        assert_eq!(scratch.congestion(4, &[7, 7, 7, 7]), 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn scratch_zero_width_rejected() {
        let _ = CongestionScratch::new().congestion(0, &[1]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn bank_of_zero_width_rejected() {
        let _ = bank_of(0, 7);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_small_path() {
        let _ = congestion(0, &[1]);
    }

    /// 65..=128 addresses used to dodge the explicit assert and die in
    /// the u128 fast path's modulo instead; the hoisted check owns every
    /// path now.
    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_fixed128_path() {
        let addrs: Vec<u64> = (0..100).collect();
        let _ = congestion(0, &addrs);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_on_general_path() {
        let addrs: Vec<u64> = (0..200).collect();
        let _ = congestion(0, &addrs);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn free_fn_zero_width_rejected_even_when_empty() {
        let _ = congestion(0, &[]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn is_conflict_free_zero_width_rejected() {
        let _ = is_conflict_free(0, &[3]);
    }
}
