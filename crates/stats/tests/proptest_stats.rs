//! Property tests for the statistics substrate.

use proptest::prelude::*;
use rap_stats::{balls_bins, IntHistogram, MaxLoad, OnlineStats, SeedDomain};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn online_merge_equals_concat(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        ys in prop::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let mut merged: OnlineStats = xs.iter().copied().collect();
        let other: OnlineStats = ys.iter().copied().collect();
        merged.merge(&other);
        let all: OnlineStats = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!(close(merged.mean(), all.mean(), 1e-9));
        prop_assert!(close(merged.variance(), all.variance(), 1e-6));
        prop_assert_eq!(merged.min(), all.min());
        prop_assert_eq!(merged.max(), all.max());
    }

    /// Splitting one sample stream at ANY point and merging the halves
    /// reproduces the single-pass accumulator — the contract the parallel
    /// Monte-Carlo engine relies on when it reduces per-block stats.
    #[test]
    fn online_merge_any_split_point(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        cut in 0usize..300,
    ) {
        let cut = cut % (xs.len() + 1);
        let mut merged: OnlineStats = xs[..cut].iter().copied().collect();
        let tail: OnlineStats = xs[cut..].iter().copied().collect();
        merged.merge(&tail);
        let single: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(merged.count(), single.count());
        prop_assert!(close(merged.mean(), single.mean(), 1e-9));
        prop_assert!(close(merged.variance(), single.variance(), 1e-6));
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
    }

    /// Chain-merging fixed-size blocks in order (exactly the engine's
    /// block reduction) reproduces the single pass, for any block size.
    #[test]
    fn online_merge_blockwise_chain(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        block in 1usize..50,
    ) {
        let mut merged = OnlineStats::new();
        for chunk in xs.chunks(block) {
            let part: OnlineStats = chunk.iter().copied().collect();
            merged.merge(&part);
        }
        let single: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(merged.count(), single.count());
        prop_assert!(close(merged.mean(), single.mean(), 1e-9));
        prop_assert!(close(merged.variance(), single.variance(), 1e-6));
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
    }

    /// Merging with an empty accumulator is the identity, on both sides.
    #[test]
    fn online_merge_empty_is_identity(xs in prop::collection::vec(-1e6f64..1e6, 0..100)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let mut left = OnlineStats::new();
        left.merge(&s);
        prop_assert_eq!(left, s);
        let mut right = s;
        right.merge(&OnlineStats::new());
        prop_assert_eq!(right, s);
    }

    /// Mean lies between min and max; variance is non-negative.
    #[test]
    fn online_mean_bounded(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let s: OnlineStats = xs.iter().copied().collect();
        prop_assert!(s.mean() >= s.min().unwrap() - 1e-6);
        prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Histogram totals, mean, and quantiles agree with a naive
    /// recomputation.
    #[test]
    fn histogram_agrees_with_naive(values in prop::collection::vec(0u32..64, 1..300)) {
        let h: IntHistogram = values.iter().copied().collect();
        prop_assert_eq!(h.total(), values.len() as u64);
        let naive_mean = values.iter().map(|&v| f64::from(v)).sum::<f64>() / values.len() as f64;
        prop_assert!(close(h.mean(), naive_mean, 1e-12));
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.min(), Some(sorted[0]));
        prop_assert_eq!(h.max(), Some(*sorted.last().unwrap()));
        // Median by the "lower value at ceil(q·n)" rule.
        let rank = ((0.5 * values.len() as f64).ceil() as usize).max(1);
        prop_assert_eq!(h.quantile(0.5), Some(sorted[rank - 1]));
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u32..32, 1..100)) {
        let h: IntHistogram = values.iter().copied().collect();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let quantiles: Vec<u32> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        prop_assert!(quantiles.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Histogram merge is commutative and total-preserving.
    #[test]
    fn histogram_merge_commutes(
        a in prop::collection::vec(0u32..32, 0..100),
        b in prop::collection::vec(0u32..32, 0..100),
    ) {
        let ha: IntHistogram = a.iter().copied().collect();
        let hb: IntHistogram = b.iter().copied().collect();
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.total(), (a.len() + b.len()) as u64);
        for v in 0..32 {
            prop_assert_eq!(ab.count(v), ba.count(v));
        }
    }

    /// MaxLoad pmf sums to 1 and the expectation is inside [m/b ceil, m].
    #[test]
    fn max_load_is_a_distribution(balls in 1usize..24, bins in 1usize..24) {
        let d = MaxLoad::exact(balls, bins);
        let total: f64 = (0..=balls).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let e = d.expected();
        let lower = balls.div_ceil(bins) as f64;
        prop_assert!(e >= lower - 1e-9, "E={e} < pigeonhole {lower}");
        prop_assert!(e <= balls as f64 + 1e-9);
    }

    /// Monte-Carlo max load matches the exact expectation.
    #[test]
    fn sampled_max_load_in_support(seed in any::<u64>(), balls in 1usize..40, bins in 1usize..16) {
        let mut rng = SeedDomain::new(seed).rng(0);
        let mut scratch = vec![0u32; bins];
        let m = balls_bins::sample_max_load(&mut rng, balls, &mut scratch);
        prop_assert!(m >= 1 && m as usize <= balls);
        prop_assert!((m as usize) * bins >= balls, "max load below pigeonhole");
    }

    /// Seed domains: identical paths agree, different indices differ
    /// (with overwhelming probability — treated as certainty here).
    #[test]
    fn seed_domain_paths(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        let d = SeedDomain::new(seed).child("p");
        prop_assert_eq!(d.child_idx(a).seed(), d.child_idx(a).seed());
        if a != b {
            prop_assert_ne!(d.child_idx(a).seed(), d.child_idx(b).seed());
        }
    }
}
