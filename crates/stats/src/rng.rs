//! Deterministic seed derivation.
//!
//! Every randomized experiment in this workspace needs many independent RNG
//! streams: one per trial, per warp, per scheme, per table cell. Handing a
//! single `StdRng` around would couple results to iteration order and make
//! parallel sweeps irreproducible. Instead, a [`SeedDomain`] derives a
//! 64-bit sub-seed for any `(label, index)` pair with SplitMix64-style
//! mixing, and each consumer builds its own RNG from that sub-seed.
//!
//! The same `(root seed, label, index)` triple always yields the same
//! stream, regardless of how many other streams were derived in between and
//! regardless of thread scheduling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
///
/// This is the `splitmix64` step from Steele et al., "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014); it is the standard way to
/// expand one seed into many decorrelated seeds.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte string into a 64-bit value (FNV-1a followed by a
/// SplitMix64 finalizer to break up FNV's weak avalanche).
#[inline]
#[must_use]
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// A reproducible hierarchy of RNG seeds.
///
/// ```
/// use rap_stats::SeedDomain;
///
/// let root = SeedDomain::new(42);
/// let table2 = root.child("table2");
/// // trial 7 of the w=32 sweep, independent of every other trial:
/// let mut rng = table2.child("w=32").rng(7);
/// let _ = rand::Rng::gen::<u64>(&mut rng);
/// // deriving the same path again gives the same stream
/// let mut rng2 = root.child("table2").child("w=32").rng(7);
/// assert_eq!(rand::Rng::gen::<u64>(&mut rng2),
///            rand::Rng::gen::<u64>(&mut SeedDomain::new(42)
///                .child("table2").child("w=32").rng(7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedDomain {
    state: u64,
}

impl SeedDomain {
    /// Create a root domain from a user-chosen seed.
    #[must_use]
    pub fn new(root_seed: u64) -> Self {
        Self {
            state: splitmix64(root_seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Rebuild a domain from a raw state previously captured with
    /// [`Self::seed`] — the lossless transport form.
    ///
    /// [`Self::new`] mixes its argument, so `new(d.seed())` is *not* `d`;
    /// a derived child domain shipped across a process boundary (the
    /// cluster coordinator sends table-cell domains to workers this way)
    /// must travel as `from_state(d.seed())` to reproduce the same
    /// streams bit for bit.
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Derive a child domain identified by a textual label.
    ///
    /// Children with distinct labels are decorrelated; the same label always
    /// produces the same child.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        Self {
            state: splitmix64(self.state ^ hash_label(label)),
        }
    }

    /// Derive a child domain identified by an integer index.
    #[must_use]
    pub fn child_idx(&self, index: u64) -> Self {
        Self {
            state: splitmix64(self.state ^ splitmix64(index ^ 0x2545_F491_4F6C_DD1D)),
        }
    }

    /// The raw 64-bit seed of this domain.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Build a fast non-cryptographic RNG for trial `index` in this domain.
    ///
    /// `SmallRng` (xoshiro-family) is appropriate here: the workloads are
    /// Monte-Carlo simulations, not security-sensitive.
    #[must_use]
    pub fn rng(&self, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.child_idx(index).state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_a_permutation_sample() {
        // Not a full bijection proof, but distinct inputs in a window must
        // not collide.
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain splitmix64.c test vector
        // (seed 1234567 produces 6457827717110365317 on the first call).
        assert_eq!(splitmix64(1234567), 6_457_827_717_110_365_317);
    }

    #[test]
    fn labels_decorrelate() {
        let d = SeedDomain::new(1);
        assert_ne!(d.child("a").seed(), d.child("b").seed());
        assert_ne!(d.child("a").seed(), d.seed());
    }

    #[test]
    fn same_path_same_seed() {
        let a = SeedDomain::new(7).child("x").child_idx(3);
        let b = SeedDomain::new(7).child("x").child_idx(3);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn from_state_round_trips_derived_domains() {
        let d = SeedDomain::new(2014).child("table2").child_idx(32);
        let shipped = SeedDomain::from_state(d.seed());
        assert_eq!(shipped, d);
        assert_eq!(shipped.child("matrix").seed(), d.child("matrix").seed());
        // `new` is a mixer, not the inverse of `seed`.
        assert_ne!(SeedDomain::new(d.seed()), d);
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(SeedDomain::new(1).seed(), SeedDomain::new(2).seed());
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let d = SeedDomain::new(99).child("trial");
        let xs: Vec<u64> = (0..8).map(|_| d.rng(5).gen()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
        let other: u64 = d.rng(6).gen();
        assert_ne!(xs[0], other);
    }

    #[test]
    fn hash_label_distinguishes_prefixes() {
        assert_ne!(hash_label("ab"), hash_label("a"));
        assert_ne!(hash_label(""), hash_label("0"));
    }

    #[test]
    fn child_idx_dense_indices_decorrelate() {
        let d = SeedDomain::new(3);
        let seeds: HashSet<u64> = (0..1000).map(|i| d.child_idx(i).seed()).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
