//! Dense histograms over small non-negative integers.
//!
//! Congestion values live in `1..=w` with `w ≤ 256` in every experiment, so
//! a dense `Vec<u64>` of counts is the right representation: O(1) updates,
//! exact quantiles, trivially mergeable.

use serde::{Deserialize, Serialize};

/// A dense histogram of `u32` observations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl IntHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram with capacity for values `0..=max_value`.
    #[must_use]
    pub fn with_max(max_value: u32) -> Self {
        Self {
            counts: vec![0; max_value as usize + 1],
            total: 0,
        }
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: u32) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record `n` observations of `value`.
    pub fn record_n(&mut self, value: u32, n: u64) {
        if n == 0 {
            return;
        }
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    #[must_use]
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Empirical probability of `value` (0 for an empty histogram).
    #[must_use]
    pub fn probability(&self, value: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Smallest recorded value, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        self.counts.iter().position(|&c| c > 0).map(|v| v as u32)
    }

    /// Largest recorded value, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|v| v as u32)
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) using the "lower value" rule:
    /// the smallest `v` whose cumulative count reaches `ceil(q · total)`.
    ///
    /// Returns `None` for an empty histogram.
    ///
    /// # Panics
    /// Panics if `q` is not in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u32> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(v as u32);
            }
        }
        self.max()
    }

    /// Iterator over `(value, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u32, c))
    }
}

impl Extend<u32> for IntHistogram {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u32> for IntHistogram {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = IntHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.probability(3), 0.0);
    }

    #[test]
    fn record_and_count() {
        let mut h = IntHistogram::with_max(8);
        h.record(3);
        h.record(3);
        h.record(7);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut h = IntHistogram::with_max(2);
        h.record(100);
        assert_eq!(h.count(100), 1);
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn mean_exact() {
        let h: IntHistogram = [1u32, 2, 3, 4].into_iter().collect();
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = IntHistogram::new();
        a.record_n(5, 4);
        let b: IntHistogram = std::iter::repeat_n(5u32, 4).collect();
        assert_eq!(a, b);
        a.record_n(9, 0); // no-op
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn quantiles() {
        let h: IntHistogram = (1..=100u32).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn quantile_rejects_bad_q() {
        let h: IntHistogram = [1u32].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_matches_union() {
        let a: IntHistogram = [1u32, 2, 2].into_iter().collect();
        let b: IntHistogram = [2u32, 3, 9].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        let union: IntHistogram = [1u32, 2, 2, 2, 3, 9].into_iter().collect();
        assert_eq!(m, union);
    }

    #[test]
    fn probability_sums_to_one() {
        let h: IntHistogram = (0..50u32).chain(0..25).collect();
        let s: f64 = (0..64).map(|v| h.probability(v)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_nonzero_skips_gaps() {
        let mut h = IntHistogram::new();
        h.record(0);
        h.record(4);
        let pairs: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(pairs, vec![(0, 1), (4, 1)]);
    }
}
