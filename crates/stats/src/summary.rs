//! Serializable experiment records.
//!
//! The bench harness prints human-readable tables *and* writes JSON records
//! so that `EXPERIMENTS.md` can be regenerated mechanically. These types are
//! the shared schema.

use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};

/// One measured cell of a paper table: a labelled scalar with uncertainty
/// and the paper's reference value (if the paper reports one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Row label, e.g. `"Stride"`.
    pub row: String,
    /// Column label, e.g. `"RAS w=32"`.
    pub column: String,
    /// Our measured value (mean over trials).
    pub measured: f64,
    /// Standard error of the measurement, if stochastic.
    pub std_error: Option<f64>,
    /// The value the paper reports for this cell, if any.
    pub paper: Option<f64>,
    /// Number of Monte-Carlo trials behind the measurement.
    pub trials: u64,
}

impl CellSummary {
    /// Build a cell from an online accumulator.
    #[must_use]
    pub fn from_stats(
        row: impl Into<String>,
        column: impl Into<String>,
        stats: &OnlineStats,
        paper: Option<f64>,
    ) -> Self {
        Self {
            row: row.into(),
            column: column.into(),
            measured: stats.mean(),
            std_error: (stats.count() > 1).then(|| stats.std_error()),
            paper,
            trials: stats.count(),
        }
    }

    /// Build an exact (non-stochastic) cell.
    #[must_use]
    pub fn exact(
        row: impl Into<String>,
        column: impl Into<String>,
        value: f64,
        paper: Option<f64>,
    ) -> Self {
        Self {
            row: row.into(),
            column: column.into(),
            measured: value,
            std_error: None,
            paper,
            trials: 1,
        }
    }

    /// Relative deviation from the paper value, if the paper reports one
    /// and it is non-zero.
    #[must_use]
    pub fn relative_error(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some((self.measured - p).abs() / p.abs()),
            _ => None,
        }
    }
}

/// A full experiment: id (e.g. `"table2"`), free-form parameters, and the
/// measured cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier matching DESIGN.md's index (e.g. `"T2"`).
    pub id: String,
    /// Human description.
    pub description: String,
    /// Parameter string (seeds, trial counts, sweep ranges).
    pub parameters: String,
    /// Measured cells.
    pub cells: Vec<CellSummary>,
    /// True when any part of the experiment ran degraded: a fault budget,
    /// wall-clock deadline, or unrecoverable block failure left some
    /// trials unexecuted. Degraded records are still valid measurements of
    /// the samples they did collect, but must never be compared
    /// byte-for-byte against a clean run.
    pub degraded: bool,
    /// Structured notes about faults survived, retries spent, checkpoint
    /// resumes, and budget exhaustion — empty for a clean run, so clean
    /// records stay byte-comparable across runs.
    pub notes: Vec<String>,
}

impl ExperimentRecord {
    /// Create an empty record.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        parameters: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            parameters: parameters.into(),
            cells: Vec::new(),
            degraded: false,
            notes: Vec::new(),
        }
    }

    /// Append a cell.
    pub fn push(&mut self, cell: CellSummary) {
        self.cells.push(cell);
    }

    /// Mark the record degraded with an explanatory note.
    pub fn mark_degraded(&mut self, note: impl Into<String>) {
        self.degraded = true;
        self.notes.push(note.into());
    }

    /// Largest relative error across cells that have paper references.
    #[must_use]
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(CellSummary::relative_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_carries_uncertainty() {
        let stats: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let c = CellSummary::from_stats("Stride", "RAS", &stats, Some(2.1));
        assert_eq!(c.trials, 3);
        assert!((c.measured - 2.0).abs() < 1e-12);
        assert!(c.std_error.is_some());
        let rel = c.relative_error().unwrap();
        assert!((rel - (0.1 / 2.1)).abs() < 1e-9);
    }

    #[test]
    fn exact_cell_has_no_error_bar() {
        let c = CellSummary::exact("Contiguous", "RAW", 1.0, Some(1.0));
        assert_eq!(c.std_error, None);
        assert_eq!(c.relative_error(), Some(0.0));
    }

    #[test]
    fn relative_error_none_without_paper_value() {
        let c = CellSummary::exact("x", "y", 5.0, None);
        assert_eq!(c.relative_error(), None);
        let z = CellSummary::exact("x", "y", 5.0, Some(0.0));
        assert_eq!(z.relative_error(), None);
    }

    #[test]
    fn worst_relative_error_over_record() {
        let mut r = ExperimentRecord::new("T2", "congestion", "seed=1");
        assert_eq!(r.worst_relative_error(), None);
        r.push(CellSummary::exact("a", "b", 1.0, Some(1.0)));
        r.push(CellSummary::exact("a", "c", 1.2, Some(1.0)));
        let w = r.worst_relative_error().unwrap();
        assert!((w - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degraded_marking_accumulates_notes() {
        let mut r = ExperimentRecord::new("T2", "congestion", "seed=1");
        assert!(!r.degraded);
        assert!(r.notes.is_empty());
        r.mark_degraded("budget exhausted after 3 blocks");
        r.mark_degraded("block 7 failed after 2 retries");
        assert!(r.degraded);
        assert_eq!(r.notes.len(), 2);
    }

    #[test]
    fn record_clone_and_eq() {
        let mut r = ExperimentRecord::new("T3", "transpose timing", "clock=0.837GHz");
        r.push(CellSummary::exact("CRSW", "RAP", 154.5, Some(154.5)));
        let r2 = r.clone();
        assert_eq!(r, r2);
    }
}
