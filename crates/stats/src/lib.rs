//! Statistics and RNG substrate for the RAP shared-memory reproduction.
//!
//! This crate contains the numerical plumbing shared by every other crate in
//! the workspace:
//!
//! * [`rng`] — deterministic seed derivation so that every experiment,
//!   trial, and warp draws from an independent, reproducible stream;
//! * [`online`] — single-pass (Welford) mean/variance accumulators that can
//!   be merged, used by the Monte-Carlo sweeps;
//! * [`histogram`] — dense integer histograms for congestion values (small
//!   non-negative integers), with means and quantiles;
//! * [`balls_bins`] — the exact distribution of the *maximum load* of `m`
//!   balls thrown into `b` bins. This is the reference model behind the
//!   paper's Table II: stride access under RAS and random access under any
//!   scheme behave exactly like balls-into-bins, so the simulated
//!   congestion must converge to these closed-form values;
//! * [`summary`] — serializable result records written by the bench harness.
//!
//! Nothing in this crate knows about GPUs, banks, or address mappings; it is
//! deliberately the bottom of the dependency stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls_bins;
pub mod histogram;
pub mod online;
pub mod rng;
pub mod summary;

pub use balls_bins::MaxLoad;
pub use histogram::IntHistogram;
pub use online::{OnlineStats, RawOnlineStats};
pub use rng::SeedDomain;
pub use summary::{CellSummary, ExperimentRecord};
