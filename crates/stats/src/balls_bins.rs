//! Exact maximum-load distribution for balls thrown into bins.
//!
//! Several cells of the paper's Table II are *exactly* balls-into-bins
//! processes:
//!
//! * **stride access under RAS**: the `w` threads of a warp hit banks
//!   `(c + r_i) mod w` for i.i.d. uniform shifts `r_i` — i.e. `w` balls into
//!   `w` bins — so the expected congestion is the expected maximum load
//!   (3.08, 3.53, 3.96, 4.38, 4.77 for `w` = 16…256 per the paper);
//! * **random access** under every scheme is balls-into-bins with the small
//!   correction that duplicate *addresses* are merged before counting.
//!
//! Having the closed-form distribution lets the test-suite check the
//! Monte-Carlo simulators against ground truth instead of against
//! hard-coded magic numbers.
//!
//! The count of placements of `m` distinguishable balls into `b`
//! distinguishable bins with every bin holding at most `k` balls is
//! `m! · [x^m] (Σ_{t=0}^{k} x^t/t!)^b` (exponential generating function).
//! We evaluate the coefficient with a log-domain dynamic program over bins,
//! which is numerically stable for every size used in the experiments
//! (`b, m ≤ 4096`).

use rand::Rng;

/// `ln(a) + ln(1 + exp(ln(b) - ln(a)))` — numerically stable `ln(a + b)`
/// for values stored as logarithms.
#[inline]
fn log_add(ln_a: f64, ln_b: f64) -> f64 {
    if ln_a == f64::NEG_INFINITY {
        return ln_b;
    }
    if ln_b == f64::NEG_INFINITY {
        return ln_a;
    }
    let (hi, lo) = if ln_a >= ln_b {
        (ln_a, ln_b)
    } else {
        (ln_b, ln_a)
    };
    hi + (lo - hi).exp().ln_1p()
}

/// Table of `ln(n!)` for `n = 0..=max`.
fn ln_factorials(max: usize) -> Vec<f64> {
    let mut t = Vec::with_capacity(max + 1);
    t.push(0.0);
    let mut acc = 0.0;
    for n in 1..=max {
        acc += (n as f64).ln();
        t.push(acc);
    }
    t
}

/// The exact distribution of the maximum bin load when `balls`
/// distinguishable balls are thrown uniformly into `bins` bins.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxLoad {
    balls: usize,
    bins: usize,
    /// `cdf[k] = P(max load ≤ k)` for `k = 0..=balls`.
    cdf: Vec<f64>,
}

impl MaxLoad {
    /// Compute the exact distribution. Cost is `O(bins · balls²)` in the
    /// worst case; `O(bins · balls · k*)` in practice because the CDF is
    /// computed lazily up to the point where it reaches 1.
    ///
    /// ```
    /// use rap_stats::MaxLoad;
    /// // The paper's Table II stride-RAS cell at w = 32 IS this number.
    /// let d = MaxLoad::exact(32, 32);
    /// assert!((d.expected() - 3.53).abs() < 0.01);
    /// ```
    ///
    /// # Panics
    /// Panics if `bins == 0` while `balls > 0` (no valid placement exists).
    #[must_use]
    pub fn exact(balls: usize, bins: usize) -> Self {
        assert!(
            bins > 0 || balls == 0,
            "cannot place {balls} balls into zero bins"
        );
        let mut cdf = vec![0.0; balls + 1];
        if balls == 0 {
            // The max of an empty placement is 0.
            return Self {
                balls,
                bins: bins.max(1),
                cdf: vec![1.0],
            };
        }
        let lnfact = ln_factorials(balls);
        let ln_total = balls as f64 * (bins as f64).ln();
        let mut converged = false;
        for (k, slot) in cdf.iter_mut().enumerate() {
            if k == 0 {
                *slot = 0.0;
                continue;
            }
            if converged || k >= balls {
                *slot = 1.0;
                continue;
            }
            if k * bins < balls {
                *slot = 0.0; // pigeonhole: impossible to fit
                continue;
            }
            *slot = Self::prob_max_le(balls, bins, k, &lnfact, ln_total);
            // The tail Σ (1 − cdf) beyond this point contributes < b·1e-9
            // to the expectation — below the DP's own rounding noise —
            // so skip the remaining (expensive) evaluations. (A tighter
            // threshold never fires: the log-domain DP's error floor is
            // around 1e-12.)
            if *slot > 1.0 - 1e-9 {
                converged = true;
            }
        }
        // Enforce monotonicity against rounding noise.
        for i in 1..cdf.len() {
            if cdf[i] < cdf[i - 1] {
                cdf[i] = cdf[i - 1];
            }
        }
        Self { balls, bins, cdf }
    }

    /// `P(max ≤ k)` via the EGF dynamic program, in the log domain.
    fn prob_max_le(balls: usize, bins: usize, k: usize, lnfact: &[f64], ln_total: f64) -> f64 {
        // dp[j] = ln([x^j] f(x)^i) after processing i bins,
        // with f(x) = Σ_{t=0..k} x^t / t!.
        let mut dp = vec![f64::NEG_INFINITY; balls + 1];
        dp[0] = 0.0;
        let mut new_dp = vec![f64::NEG_INFINITY; balls + 1];
        for _bin in 0..bins {
            new_dp.fill(f64::NEG_INFINITY);
            for j in 0..=balls {
                // new_dp[j] = logsum_{t=0..min(k,j)} dp[j-t] - ln(t!)
                let mut acc = f64::NEG_INFINITY;
                for t in 0..=k.min(j) {
                    let prev = dp[j - t];
                    if prev != f64::NEG_INFINITY {
                        acc = log_add(acc, prev - lnfact[t]);
                    }
                }
                new_dp[j] = acc;
            }
            std::mem::swap(&mut dp, &mut new_dp);
        }
        let ln_count = lnfact[balls] + dp[balls];
        (ln_count - ln_total).exp().clamp(0.0, 1.0)
    }

    /// `P(max load ≤ k)`.
    #[must_use]
    pub fn cdf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k]
        }
    }

    /// `P(max load = k)`.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf(0)
        } else {
            (self.cdf(k) - self.cdf(k - 1)).max(0.0)
        }
    }

    /// Expected maximum load, `E[max] = Σ_{k≥1} P(max ≥ k)`.
    #[must_use]
    pub fn expected(&self) -> f64 {
        (0..self.balls).map(|k| 1.0 - self.cdf(k)).sum()
    }

    /// Number of balls in the model.
    #[must_use]
    pub fn balls(&self) -> usize {
        self.balls
    }

    /// Number of bins in the model.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }
}

/// Sample the maximum bin load of one random placement of `balls` balls
/// into `bins` bins (Monte-Carlo counterpart of [`MaxLoad::exact`]).
///
/// `scratch` must have length `bins`; it is cleared and reused so that
/// callers in tight loops avoid reallocating.
pub fn sample_max_load<R: Rng + ?Sized>(rng: &mut R, balls: usize, scratch: &mut [u32]) -> u32 {
    scratch.fill(0);
    let bins = scratch.len();
    assert!(bins > 0, "need at least one bin");
    for _ in 0..balls {
        let b = rng.gen_range(0..bins);
        scratch[b] += 1;
    }
    scratch.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn log_add_basic() {
        let a: f64 = 0.3_f64.ln();
        let b: f64 = 0.2_f64.ln();
        assert!((log_add(a, b).exp() - 0.5).abs() < 1e-12);
        assert_eq!(log_add(f64::NEG_INFINITY, a), a);
        assert_eq!(log_add(a, f64::NEG_INFINITY), a);
    }

    #[test]
    fn ln_factorials_table() {
        let t = ln_factorials(5);
        assert_eq!(t[0], 0.0);
        assert!((t[5] - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn two_balls_two_bins() {
        // 4 equally likely placements; max=1 in 2 of them (the two
        // "one ball each" assignments), max=2 in the other 2.
        let d = MaxLoad::exact(2, 2);
        assert!((d.pmf(1) - 0.5).abs() < 1e-12);
        assert!((d.pmf(2) - 0.5).abs() < 1e-12);
        assert!((d.expected() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn three_balls_three_bins() {
        // 27 placements: max=1 → 3! = 6; max=3 → 3; max=2 → 18.
        let d = MaxLoad::exact(3, 3);
        assert!((d.pmf(1) - 6.0 / 27.0).abs() < 1e-12);
        assert!((d.pmf(2) - 18.0 / 27.0).abs() < 1e-12);
        assert!((d.pmf(3) - 3.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn one_bin_forces_full_load() {
        let d = MaxLoad::exact(5, 1);
        assert_eq!(d.pmf(5), 1.0);
        assert_eq!(d.expected(), 5.0);
    }

    #[test]
    fn zero_balls() {
        let d = MaxLoad::exact(0, 4);
        assert_eq!(d.cdf(0), 1.0);
        assert_eq!(d.expected(), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_proper() {
        let d = MaxLoad::exact(16, 16);
        let mut prev = 0.0;
        for k in 0..=16 {
            let c = d.cdf(k);
            assert!(c >= prev - 1e-12, "cdf not monotone at {k}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((d.cdf(16) - 1.0).abs() < 1e-9);
        // pigeonhole: 16 balls in 16 bins can't all fit with max 0
        assert_eq!(d.cdf(0), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = MaxLoad::exact(20, 7);
        let s: f64 = (0..=20).map(|k| d.pmf(k)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    /// The key validation: the exact expectation at w=16 and w=32 must land
    /// on the paper's Table II stride-RAS values (3.08 and 3.53).
    #[test]
    fn expected_max_matches_paper_table2() {
        let e16 = MaxLoad::exact(16, 16).expected();
        assert!(
            (e16 - 3.08).abs() < 0.02,
            "E[max] for 16/16 = {e16}, paper says 3.08"
        );
        let e32 = MaxLoad::exact(32, 32).expected();
        assert!(
            (e32 - 3.53).abs() < 0.02,
            "E[max] for 32/32 = {e32}, paper says 3.53"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let d = MaxLoad::exact(32, 32);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut scratch = vec![0u32; 32];
        let trials = 20_000;
        let mean: f64 = (0..trials)
            .map(|_| f64::from(sample_max_load(&mut rng, 32, &mut scratch)))
            .sum::<f64>()
            / f64::from(trials);
        assert!(
            (mean - d.expected()).abs() < 0.05,
            "MC mean {mean} vs exact {}",
            d.expected()
        );
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_rejected() {
        let _ = MaxLoad::exact(1, 0);
    }
}
