//! Single-pass moment accumulators (Welford / Chan et al.).
//!
//! Monte-Carlo sweeps in the bench harness observe millions of congestion
//! samples; storing them all would be wasteful. [`OnlineStats`] keeps count,
//! mean, and the centered sum of squares in O(1) space with the numerically
//! stable Welford update, and supports merging partial accumulators from
//! parallel workers (the parallel-algorithm form from Chan, Golub & LeVeque).

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the current mean (aka `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Observe one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observe an integer sample (congestion values are small integers).
    #[inline]
    pub fn push_u32(&mut self, x: u32) {
        self.push(f64::from(x));
    }

    /// Merge another accumulator into this one.
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed both sample streams into a single accumulator.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`std_dev / sqrt(n)`).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence interval for the mean,
    /// `mean ± 1.96·stderr`. Adequate for the Monte-Carlo sample sizes
    /// used here (hundreds to millions).
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean() - half, self.mean() + half)
    }

    /// Smallest sample seen, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A bit-exact, serialization-safe image of an [`OnlineStats`].
///
/// JSON (and most textual formats) do not guarantee that an `f64` survives
/// a print/parse round trip bit-for-bit, and the checkpoint/resume
/// machinery (`rap-resilience`) needs *exact* equality: a resumed
/// Monte-Carlo run must merge to the identical accumulator an
/// uninterrupted run produces. `RawOnlineStats` therefore carries every
/// float as its IEEE-754 bit pattern (`f64::to_bits`), which is a lossless
/// integer and round-trips through any format that preserves `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawOnlineStats {
    /// Sample count.
    pub count: u64,
    /// Bit pattern of the running mean.
    pub mean_bits: u64,
    /// Bit pattern of the centered sum of squares (`M2`).
    pub m2_bits: u64,
    /// Bit pattern of the minimum (the `+inf` sentinel when empty).
    pub min_bits: u64,
    /// Bit pattern of the maximum (the `-inf` sentinel when empty).
    pub max_bits: u64,
}

impl OnlineStats {
    /// Capture the accumulator as bit patterns for lossless persistence.
    #[must_use]
    pub fn to_raw(&self) -> RawOnlineStats {
        RawOnlineStats {
            count: self.n,
            mean_bits: self.mean.to_bits(),
            m2_bits: self.m2.to_bits(),
            min_bits: self.min.to_bits(),
            max_bits: self.max.to_bits(),
        }
    }

    /// Rebuild the accumulator from [`Self::to_raw`] output, bit-for-bit.
    #[must_use]
    pub fn from_raw(raw: &RawOnlineStats) -> Self {
        Self {
            n: raw.count,
            mean: f64::from_bits(raw.mean_bits),
            m2: f64::from_bits(raw.m2_bits),
            min: f64::from_bits(raw.min_bits),
            max: f64::from_bits(raw.max_bits),
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_is_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let s: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert!(close(s.mean(), 3.5));
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn known_mean_and_variance() {
        // 1..=5: mean 3, sample variance 2.5
        let s: OnlineStats = (1..=5).map(f64::from).collect();
        assert!(close(s.mean(), 3.0));
        assert!(close(s.variance(), 2.5));
        assert!(close(s.std_dev(), 2.5f64.sqrt()));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 5.0).collect();
        let sequential: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..33].iter().copied().collect();
        let b: OnlineStats = xs[33..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!(close(a.mean(), sequential.mean()));
        assert!(close(a.variance(), sequential.variance()));
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs: OnlineStats = [1.0, 2.0, 4.0].into_iter().collect();
        let mut a = xs;
        a.merge(&OnlineStats::new());
        assert_eq!(a, xs);
        let mut b = OnlineStats::new();
        b.merge(&xs);
        assert_eq!(b, xs);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut s = OnlineStats::new();
        for i in 0..10 {
            s.push(f64::from(i % 2));
        }
        let se10 = s.std_error();
        for i in 0..990 {
            s.push(f64::from(i % 2));
        }
        assert!(s.std_error() < se10);
    }

    #[test]
    fn ci95_brackets_the_true_mean() {
        // 0/1 samples, true mean 0.5: the CI must contain it and shrink.
        let mut s = OnlineStats::new();
        for i in 0..10_000 {
            s.push(f64::from(i % 2));
        }
        let (lo, hi) = s.ci95();
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.05, "width {}", hi - lo);
    }

    #[test]
    fn ci95_empty_is_degenerate() {
        let s = OnlineStats::new();
        assert_eq!(s.ci95(), (0.0, 0.0));
    }

    #[test]
    fn raw_round_trip_is_bit_exact() {
        let mut s = OnlineStats::new();
        // Values chosen to leave non-representable decimals in mean/m2.
        for x in [0.1, 0.2, 0.30000000000000004, 7.5, -3.25] {
            s.push(x);
        }
        let back = OnlineStats::from_raw(&s.to_raw());
        assert_eq!(back, s);
        // The empty accumulator's infinity sentinels survive too.
        let empty = OnlineStats::new();
        assert_eq!(OnlineStats::from_raw(&empty.to_raw()), empty);
    }

    #[test]
    fn push_u32_matches_push() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.push_u32(7);
        b.push(7.0);
        assert_eq!(a, b);
    }
}
