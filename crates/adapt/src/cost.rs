//! The migration cost model: when does a swap *pay off*?
//!
//! DReAM-style reasoning ported to shared-memory remapping: changing the
//! active layout means re-arranging a `w × w` tile (amortized re-layout
//! cost, proportional to the cell count), and buys a congestion
//! reduction on every future request over a configurable horizon. The
//! controller proposes a swap only when
//!
//! ```text
//! projected_savings(horizon) > migration_cost + margin · horizon
//! ```
//!
//! Savings are computed *conservatively*: the projected congestion of a
//! candidate on a class is its **certified worst-case bound** — never an
//! optimistic estimate — weighted by the observed traffic mix. The
//! observed side uses the exact windowed means. A candidate therefore
//! only wins when its guaranteed worst case beats what the live traffic
//! is actually experiencing.

use crate::candidates::Candidate;
use crate::monitor::{ClassWindow, TrafficClass, CLASSES};

/// Tunable knobs of the cost model. All fields are plain data so the
/// CLI and serve config can construct it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of re-laying-out one cell, in the same unit as congestion
    /// (bank-conflict equivalents). The full migration costs
    /// `relayout_cost_per_cell · w²`.
    pub relayout_cost_per_cell: f64,
    /// Number of future requests the savings are projected over.
    pub horizon: u64,
    /// Per-request congestion improvement that must remain after the
    /// migration cost is paid (hysteresis against flapping).
    pub margin: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            relayout_cost_per_cell: 0.25,
            horizon: 4096,
            margin: 0.25,
        }
    }
}

/// The verdict for one candidate against the observed traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapVerdict {
    /// Candidate name.
    pub candidate: String,
    /// Traffic-weighted observed congestion per request.
    pub observed: f64,
    /// Traffic-weighted projected congestion per request under the
    /// candidate (certified bounds, capped by the observation).
    pub projected: f64,
    /// `(observed − projected) · horizon`.
    pub savings: f64,
    /// `relayout_cost_per_cell · w²`.
    pub migration_cost: f64,
    /// True when the swap pays off under the model.
    pub pays_off: bool,
}

impl CostModel {
    /// Migration cost of re-laying-out a `width × width` tile.
    #[must_use]
    pub fn migration_cost(&self, width: usize) -> f64 {
        self.relayout_cost_per_cell * (width as f64) * (width as f64)
    }

    /// Evaluate `candidate` against the observed per-class windows.
    ///
    /// `windows` is indexed by [`TrafficClass::index`]. Classes with no
    /// samples contribute nothing to either side. A candidate's
    /// projected congestion on a class is `min(bound, observed_mean)` —
    /// the bound is a worst case, so if traffic is *already* below it,
    /// swapping cannot make that class worse than it is.
    #[must_use]
    pub fn evaluate(
        &self,
        candidate: &Candidate,
        windows: &[ClassWindow; CLASSES],
        width: usize,
    ) -> SwapVerdict {
        let mut total_samples = 0.0;
        let mut observed_sum = 0.0;
        let mut projected_sum = 0.0;
        for class in TrafficClass::ALL {
            let w = &windows[class.index()];
            if w.samples == 0 {
                continue;
            }
            let weight = w.samples as f64;
            let bound = f64::from(candidate.bound(class));
            total_samples += weight;
            observed_sum += weight * w.mean;
            projected_sum += weight * bound.min(w.mean);
        }
        let (observed, projected) = if total_samples > 0.0 {
            (observed_sum / total_samples, projected_sum / total_samples)
        } else {
            (0.0, 0.0)
        };
        let savings = (observed - projected) * self.horizon as f64;
        let migration_cost = self.migration_cost(width);
        let pays_off = savings > migration_cost + self.margin * self.horizon as f64;
        SwapVerdict {
            candidate: candidate.name.clone(),
            observed,
            projected,
            savings,
            migration_cost,
            pays_off,
        }
    }

    /// Pick the best paying-off candidate (smallest projected congestion,
    /// ties broken by name for determinism), excluding `current`.
    #[must_use]
    pub fn best_swap(
        &self,
        current: &str,
        candidates: &[Candidate],
        windows: &[ClassWindow; CLASSES],
        width: usize,
    ) -> Option<SwapVerdict> {
        candidates
            .iter()
            .filter(|c| c.name != current)
            .map(|c| self.evaluate(c, windows, width))
            .filter(|v| v.pays_off)
            .min_by(|a, b| {
                a.projected
                    .total_cmp(&b.projected)
                    .then_with(|| a.candidate.cmp(&b.candidate))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::standard_candidates;
    use crate::monitor::CongestionMonitor;

    fn windows_with_stride(mean: f64, samples: u64) -> [ClassWindow; CLASSES] {
        let m = CongestionMonitor::new(samples.max(1) as usize, 0.5);
        for _ in 0..samples {
            m.observe(TrafficClass::Stride, mean);
        }
        [
            m.window(TrafficClass::Contiguous),
            m.window(TrafficClass::Stride),
            m.window(TrafficClass::Diagonal),
            m.window(TrafficClass::Random),
        ]
    }

    #[test]
    fn stride_storm_on_raw_pays_off_to_swap() {
        let width = 16;
        let candidates = standard_candidates(width);
        let model = CostModel {
            relayout_cost_per_cell: 0.25,
            horizon: 4096,
            margin: 0.25,
        };
        // Raw under pure stride traffic: observed congestion = w.
        let windows = windows_with_stride(16.0, 64);
        let verdict = model
            .best_swap("raw", &candidates, &windows, width)
            .unwrap();
        // Every alternative certifies stride ≤ small constant; the best
        // projected is 1 (rap/padded/xor at power-of-two width).
        assert!(verdict.pays_off);
        assert!((verdict.projected - 1.0).abs() < 1e-9, "{verdict:?}");
        assert!(verdict.savings > verdict.migration_cost);
    }

    #[test]
    fn quiet_traffic_never_pays_off() {
        let width = 16;
        let candidates = standard_candidates(width);
        let model = CostModel::default();
        // Congestion already at 1: no candidate can beat it.
        let windows = windows_with_stride(1.0, 64);
        assert!(model
            .best_swap("rap", &candidates, &windows, width)
            .is_none());
    }

    #[test]
    fn empty_windows_never_pay_off() {
        let width = 8;
        let candidates = standard_candidates(width);
        let model = CostModel::default();
        let windows = windows_with_stride(0.0, 0);
        assert!(model
            .best_swap("raw", &candidates, &windows, width)
            .is_none());
    }

    #[test]
    fn margin_provides_hysteresis() {
        let width = 4;
        let candidates = standard_candidates(width);
        // Observed stride congestion 2.0 on raw (bound 4): an
        // improvement of ≤1 per request is inside the margin.
        let windows = windows_with_stride(2.0, 32);
        let model = CostModel {
            relayout_cost_per_cell: 0.0,
            horizon: 100,
            margin: 1.5,
        };
        assert!(model
            .best_swap("raw", &candidates, &windows, width)
            .is_none());
        let eager = CostModel {
            relayout_cost_per_cell: 0.0,
            horizon: 100,
            margin: 0.1,
        };
        assert!(eager
            .best_swap("raw", &candidates, &windows, width)
            .is_some());
    }
}
