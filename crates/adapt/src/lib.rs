//! Self-healing **adaptive remapping** for the RAP shared-memory stack.
//!
//! The paper's schemes are chosen *statically*: Table II tells you which
//! mapping survives which access pattern, and a tenant picks one up
//! front. This crate closes the loop (ROADMAP item 4, DReAM-style): it
//! watches the live congestion a tenant actually experiences, compares
//! it against **machine-certified** worst-case bounds for every
//! candidate layout, and hot-swaps the mapping when — and only when — a
//! migration cost model says the swap pays for itself.
//!
//! The subsystem is built from five small parts:
//!
//! * [`monitor`] — per-traffic-class ring buffers + EWMA; the hot path
//!   is zero-allocation and lock-free;
//! * [`candidates`] — the swap candidate set: static schemes with
//!   prover-certified bounds (`rap-analyze`) plus synthesized tables
//!   (`rap-synthesize`) whose certificates passed the independent
//!   checker and whose per-class bounds are recomputed exactly here;
//! * [`cost`] — amortized re-layout cost vs. projected congestion
//!   savings over a configurable horizon, with hysteresis;
//! * [`epoch`] — the `Stable → Proposed → Migrating → Committed |
//!   RolledBack` state machine. Transitions are prepared (validated +
//!   recorded) before they are applied, so the durable ledger never
//!   lags memory;
//! * [`controller`] — the [`AdaptiveController`] gluing it together,
//!   with failpoint sites `adapt.observe`, `adapt.propose`,
//!   `adapt.migrate`, `adapt.commit` wired into `rap-resilience`.
//!
//! Durability reuses the PR-4 checkpoint machinery: epoch records are
//! JSON lines in a [`rap_resilience::Journal`] with a fingerprint
//! header, torn-tail truncation, and the `ledger.append` failpoint. A
//! `kill -9` at any phase resumes deterministically — an interrupted
//! `Migrating` epoch rolls back to the last `Committed` layout, and
//! requests served during a migration are answered from the old layout,
//! never a torn hybrid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod controller;
pub mod cost;
pub mod epoch;
pub mod ledger;
pub mod monitor;

pub use candidates::{
    find, scheme_candidate_name, standard_candidates, synthesized_candidates, Candidate,
    CandidateKind,
};
pub use controller::{ActiveLayout, AdaptConfig, AdaptStatus, AdaptiveController};
pub use cost::{CostModel, SwapVerdict};
pub use epoch::{candidate_from_record, replay, EpochError, EpochMachine, EpochRecord, Phase};
pub use ledger::EpochLedger;
pub use monitor::{ClassWindow, CongestionMonitor, TrafficClass, CLASSES};
