//! The adaptive controller: monitor + candidates + cost model + epoch
//! machine + durable ledger, glued behind one thread-safe facade.
//!
//! ## Fault ordering discipline
//!
//! Every epoch transition runs the same four steps, in order:
//!
//! 1. **fire** the transition's failpoint (`adapt.propose`,
//!    `adapt.migrate`, `adapt.commit`; evaluation itself fires
//!    `adapt.observe`);
//! 2. **prepare** the record (pure validation — the machine is
//!    untouched);
//! 3. **append** the record to the durable ledger;
//! 4. **apply** the record to the in-memory machine.
//!
//! A fault at step 1 or 3 aborts the transition with memory *and*
//! ledger unchanged (the journal self-repairs torn bytes before its
//! next append); an injected panic at step 1 propagates to the caller's
//! `catch_unwind` with nothing mutated. Memory therefore never runs
//! ahead of the ledger, which is what makes `kill -9` resume a pure
//! replay.
//!
//! A failed *rollback* append is the one case where the controller must
//! keep state it could not persist: it parks in the current phase with
//! `pending_rollback` set and retries on every tick until the append
//! lands. If the process dies first, the ledger's trailing record is
//! still the unresolved `Proposed`/`Migrating`, and resume appends the
//! rollback itself — the same final state either way.

use crate::candidates::{
    find, standard_candidates, synthesized_candidates, Candidate, CandidateKind,
};
use crate::cost::CostModel;
use crate::epoch::{replay, EpochMachine, EpochRecord, Phase};
use crate::ledger::EpochLedger;
use crate::monitor::{ClassWindow, CongestionMonitor, TrafficClass, CLASSES};
use rap_resilience::failpoint::{self, Fault};
use rap_resilience::SyncPolicy;
use serde::Value;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Controller configuration. Plain data so serve config and the CLI can
/// construct it directly.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Tile width the tenant runs at.
    pub width: usize,
    /// Initial (committed) candidate name, e.g. `"rap"`.
    pub initial: String,
    /// Seed for candidate synthesis and the ledger fingerprint.
    pub seed: u64,
    /// Monitor window (exact samples per traffic class).
    pub window: usize,
    /// Monitor EWMA weight in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Evaluate a possible swap every this many stable-phase samples.
    pub eval_every: u64,
    /// Minimum windowed samples (all classes) before any swap proposal.
    pub min_samples: u64,
    /// The migration cost model.
    pub cost: CostModel,
    /// Observations a migration spans before it commits (0 = immediate).
    pub migrate_steps: u64,
    /// Optional `rap-synthesize` workload spec; when set, checker-verified
    /// synthesized layouts join the candidate set.
    pub synth_workload: Option<String>,
    /// Start with automatic swaps disabled (`adapt_freeze` to toggle).
    pub start_frozen: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            width: 32,
            initial: "rap".to_string(),
            seed: 2014,
            window: 256,
            ewma_alpha: 0.2,
            eval_every: 64,
            min_samples: 32,
            cost: CostModel::default(),
            migrate_steps: 16,
            synth_workload: None,
            start_frozen: false,
        }
    }
}

/// The layout requests must be served from right now. Always the last
/// *committed* candidate — never an in-flight target.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveLayout {
    /// Candidate name.
    pub name: String,
    /// Committed epoch count.
    pub epoch: u64,
    /// What to serve: a static scheme or a fixed table.
    pub kind: CandidateKind,
    /// Tile width.
    pub width: usize,
}

/// A point-in-time status snapshot (see [`AdaptiveController::status`]).
#[derive(Debug, Clone)]
pub struct AdaptStatus {
    /// Active (committed) candidate name.
    pub scheme: String,
    /// Committed epoch count (== successful swaps).
    pub epoch: u64,
    /// Machine phase name (`stable`/`proposed`/`migrating`).
    pub phase: &'static str,
    /// In-flight target name, when a swap is proposed or migrating.
    pub pending: Option<String>,
    /// Successful swaps (same as `epoch`, spelled for dashboards).
    pub swaps: u64,
    /// Rolled-back swap attempts.
    pub rollbacks: u64,
    /// Faults observed at `adapt.observe`.
    pub observe_faults: u64,
    /// Faults that aborted a propose/migrate/commit transition.
    pub swap_faults: u64,
    /// Ledger appends that failed (each is retried or re-derived).
    pub ledger_errors: u64,
    /// Automatic swapping disabled?
    pub frozen: bool,
    /// Tile width.
    pub width: usize,
    /// Per-class window statistics with the active candidate's bound.
    pub classes: Vec<(TrafficClass, ClassWindow, u32)>,
    /// Candidate names with their per-class certified bounds.
    pub candidates: Vec<(String, &'static str, [u32; CLASSES])>,
    /// Records replayed at open (0 for a fresh controller).
    pub resumed_records: usize,
    /// True when resume found an interrupted epoch and rolled it back.
    pub resumed_interrupted: bool,
}

impl AdaptStatus {
    /// Render as the serve-protocol JSON value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let classes = self
            .classes
            .iter()
            .map(|(class, w, bound)| {
                obj(vec![
                    ("class", Value::String(class.name().to_string())),
                    ("samples", Value::U64(w.samples)),
                    ("total", Value::U64(w.total)),
                    ("mean", Value::F64(w.mean)),
                    ("max", Value::F64(w.max)),
                    ("ewma", Value::F64(w.ewma)),
                    ("bound", Value::U64(u64::from(*bound))),
                ])
            })
            .collect();
        let candidates = self
            .candidates
            .iter()
            .map(|(name, source, bounds)| {
                obj(vec![
                    ("name", Value::String(name.clone())),
                    ("source", Value::String((*source).to_string())),
                    (
                        "bounds",
                        Value::Array(bounds.iter().map(|&b| Value::U64(u64::from(b))).collect()),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("scheme", Value::String(self.scheme.clone())),
            ("epoch", Value::U64(self.epoch)),
            ("phase", Value::String(self.phase.to_string())),
            (
                "pending",
                self.pending
                    .as_ref()
                    .map_or(Value::Null, |p| Value::String(p.clone())),
            ),
            ("swaps", Value::U64(self.swaps)),
            ("rollbacks", Value::U64(self.rollbacks)),
            ("observe_faults", Value::U64(self.observe_faults)),
            ("swap_faults", Value::U64(self.swap_faults)),
            ("ledger_errors", Value::U64(self.ledger_errors)),
            ("frozen", Value::Bool(self.frozen)),
            ("width", Value::U64(self.width as u64)),
            ("classes", Value::Array(classes)),
            ("candidates", Value::Array(candidates)),
            ("resumed_records", Value::U64(self.resumed_records as u64)),
            ("resumed_interrupted", Value::Bool(self.resumed_interrupted)),
        ])
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

struct ControlState {
    machine: EpochMachine,
    ledger: EpochLedger,
    candidates: Vec<Candidate>,
    /// Stable-phase samples since the last evaluation.
    observed_since_eval: u64,
    /// Remaining migration observations before commit.
    migrate_steps_left: u64,
    /// A rollback was applied-in-intent but its record could not be
    /// appended; retry the append before anything else.
    pending_rollback: bool,
    observe_faults: u64,
    swap_faults: u64,
    ledger_errors: u64,
}

/// The adaptive remapping controller (see the module docs).
pub struct AdaptiveController {
    config: AdaptConfig,
    monitor: CongestionMonitor,
    frozen: AtomicBool,
    inner: Mutex<ControlState>,
    resumed_records: usize,
    resumed_interrupted: bool,
}

impl std::fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("width", &self.config.width)
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AdaptiveController {
    /// A controller with an in-memory ledger (no durability).
    ///
    /// # Errors
    /// Unknown initial candidate, unusable width, or a synthesis
    /// workload spec that does not parse.
    pub fn new(config: AdaptConfig) -> Result<Self, String> {
        Self::build(config, EpochLedger::in_memory(), &[])
    }

    /// A controller with a durable ledger at `path`, resuming any
    /// previous run with a matching `(width, seed)` fingerprint. An
    /// interrupted epoch (trailing `Proposed`/`Migrating`) is rolled
    /// back here, durably, before the controller serves anything.
    ///
    /// # Errors
    /// I/O errors opening or repairing the ledger, plus everything
    /// [`Self::new`] rejects.
    pub fn open(config: AdaptConfig, path: &Path) -> Result<Self, String> {
        let (ledger, records) =
            EpochLedger::open(path, config.width, config.seed, SyncPolicy::EveryEntry)
                .map_err(|e| format!("opening epoch ledger: {e}"))?;
        Self::build(config, ledger, &records)
    }

    fn build(
        config: AdaptConfig,
        ledger: EpochLedger,
        records: &[EpochRecord],
    ) -> Result<Self, String> {
        if config.width == 0 {
            return Err("adapt width must be positive".to_string());
        }
        let mut candidates = standard_candidates(config.width);
        if let Some(spec) = &config.synth_workload {
            let synth = synthesized_candidates(config.width, spec, config.seed)?;
            candidates.extend(synth);
        }
        let initial = find(&candidates, &config.initial).cloned().ok_or_else(|| {
            format!(
                "unknown initial candidate '{}' (have: {})",
                config.initial,
                candidates
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        let replayed = replay(config.width, initial, records)
            .map_err(|e| format!("epoch ledger replay: {e}"))?;
        let mut machine = replayed.machine;
        let resumed_interrupted = replayed.interrupted;
        if replayed.interrupted {
            // kill -9 mid-epoch: abandon the in-flight swap, durably.
            let rec = machine
                .prepare(Phase::RolledBack, None)
                .map_err(|e| format!("resume rollback: {e}"))?;
            ledger
                .append(&rec)
                .map_err(|e| format!("appending resume rollback: {e}"))?;
            machine
                .apply(&rec, None)
                .map_err(|e| format!("applying resume rollback: {e}"))?;
        }
        let frozen = config.start_frozen;
        Ok(Self {
            monitor: CongestionMonitor::new(config.window, config.ewma_alpha),
            frozen: AtomicBool::new(frozen),
            inner: Mutex::new(ControlState {
                machine,
                ledger,
                candidates,
                observed_since_eval: 0,
                migrate_steps_left: 0,
                pending_rollback: false,
                observe_faults: 0,
                swap_faults: 0,
                ledger_errors: 0,
            }),
            resumed_records: replayed.applied,
            resumed_interrupted,
            config,
        })
    }

    /// Tile width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.config.width
    }

    /// The configuration this controller was built with.
    #[must_use]
    pub fn config(&self) -> &AdaptConfig {
        &self.config
    }

    /// The layout requests must be served from (always the committed
    /// one).
    #[must_use]
    pub fn active(&self) -> ActiveLayout {
        let state = self.lock();
        let active = state.machine.active();
        ActiveLayout {
            name: active.name.clone(),
            epoch: state.machine.epoch(),
            kind: active.kind.clone(),
            width: self.config.width,
        }
    }

    /// Machine phase name (`stable`/`proposed`/`migrating`).
    #[must_use]
    pub fn phase_name(&self) -> &'static str {
        self.lock().machine.phase().name()
    }

    /// Enable or disable automatic swapping. A swap already in flight
    /// still completes; freezing only stops new proposals.
    pub fn freeze(&self, frozen: bool) {
        self.frozen.store(frozen, Ordering::Release);
    }

    /// True when automatic swapping is disabled.
    #[must_use]
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Record one congestion observation and advance the epoch machine
    /// one tick. This is the serve hot path: the monitor update is
    /// lock-free; the tick takes the control mutex briefly.
    ///
    /// Injected panics at the `adapt.*` sites propagate to the caller
    /// (serve isolates the handler in `catch_unwind`) with both memory
    /// and ledger unchanged.
    pub fn observe(&self, class: TrafficClass, congestion: f64) {
        self.monitor.observe(class, congestion);
        let mut state = self.lock();
        self.tick(&mut state);
    }

    /// Force a swap to `target` (must be a known candidate), spanning
    /// `steps` further observations in `Migrating` before committing
    /// (`0` commits inline). Runs the full epoch protocol: every
    /// failpoint fires and every record is appended.
    ///
    /// # Errors
    /// Unknown target, a swap already in flight, the target already
    /// active, or an injected fault that aborted (and rolled back) the
    /// attempt.
    pub fn force(&self, target: &str, steps: u64) -> Result<(), String> {
        let mut state = self.lock();
        if state.pending_rollback {
            Self::try_rollback(&mut state);
            if state.pending_rollback {
                return Err("rollback record still unflushed".to_string());
            }
        }
        if state.machine.phase() != Phase::Stable {
            return Err(format!(
                "swap already in flight (phase {})",
                state.machine.phase()
            ));
        }
        let target = find(&state.candidates, target)
            .cloned()
            .ok_or_else(|| format!("unknown candidate '{target}'"))?;
        if target.name == state.machine.active().name {
            return Err(format!("'{}' is already active", target.name));
        }
        self.start_swap(&mut state, target, steps)
    }

    /// Point-in-time status snapshot.
    #[must_use]
    pub fn status(&self) -> AdaptStatus {
        let state = self.lock();
        let active = state.machine.active();
        let classes = TrafficClass::ALL
            .into_iter()
            .map(|class| (class, self.monitor.window(class), active.bound(class)))
            .collect();
        let candidates = state
            .candidates
            .iter()
            .map(|c| (c.name.clone(), c.source, c.bounds))
            .collect();
        AdaptStatus {
            scheme: active.name.clone(),
            epoch: state.machine.epoch(),
            phase: state.machine.phase().name(),
            pending: state.machine.pending().map(|p| p.name.clone()),
            swaps: state.machine.epoch(),
            rollbacks: state.machine.rollbacks(),
            observe_faults: state.observe_faults,
            swap_faults: state.swap_faults,
            ledger_errors: state.ledger_errors,
            frozen: self.frozen(),
            width: self.config.width,
            classes,
            candidates,
            resumed_records: self.resumed_records,
            resumed_interrupted: self.resumed_interrupted,
        }
    }

    /// Exact window statistics for one class.
    #[must_use]
    pub fn window(&self, class: TrafficClass) -> ClassWindow {
        self.monitor.window(class)
    }

    fn lock(&self) -> MutexGuard<'_, ControlState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One control tick (called with the lock held).
    fn tick(&self, state: &mut ControlState) {
        if state.pending_rollback {
            Self::try_rollback(state);
            return;
        }
        match state.machine.phase() {
            Phase::Migrating => {
                if state.migrate_steps_left > 0 {
                    state.migrate_steps_left -= 1;
                }
                if state.migrate_steps_left == 0 {
                    self.try_commit(state);
                }
            }
            Phase::Proposed => {
                // A fault parked the swap after its proposal; push it
                // forward into Migrating.
                Self::try_migrate(state);
            }
            Phase::Stable => {
                if self.frozen() {
                    return;
                }
                state.observed_since_eval += 1;
                if state.observed_since_eval >= self.config.eval_every {
                    state.observed_since_eval = 0;
                    self.evaluate(state);
                }
            }
            // `Committed`/`RolledBack` are record phases, not machine
            // states; the machine is never parked in them.
            Phase::Committed | Phase::RolledBack => {}
        }
    }

    /// Periodic evaluation: fire `adapt.observe`, consult the cost
    /// model, and start a swap when one pays off.
    fn evaluate(&self, state: &mut ControlState) {
        if site_fault("adapt.observe") {
            state.observe_faults += 1;
            return;
        }
        let windows = self.windows();
        let total: u64 = windows.iter().map(|w| w.samples).sum();
        if total < self.config.min_samples {
            return;
        }
        let Some(verdict) = self.config.cost.best_swap(
            &state.machine.active().name,
            &state.candidates,
            &windows,
            self.config.width,
        ) else {
            return;
        };
        let Some(target) = find(&state.candidates, &verdict.candidate).cloned() else {
            return;
        };
        let _ = self.start_swap(state, target, self.config.migrate_steps);
    }

    fn windows(&self) -> [ClassWindow; CLASSES] {
        [
            self.monitor.window(TrafficClass::Contiguous),
            self.monitor.window(TrafficClass::Stride),
            self.monitor.window(TrafficClass::Diagonal),
            self.monitor.window(TrafficClass::Random),
        ]
    }

    /// Propose `target` and push the epoch forward (through commit when
    /// `steps == 0`). Called with the lock held, machine `Stable`.
    fn start_swap(
        &self,
        state: &mut ControlState,
        target: Candidate,
        steps: u64,
    ) -> Result<(), String> {
        if site_fault("adapt.propose") {
            state.swap_faults += 1;
            return Err("fault at adapt.propose".to_string());
        }
        let rec = state
            .machine
            .prepare(Phase::Proposed, Some(&target))
            .map_err(|e| e.to_string())?;
        if let Err(e) = state.ledger.append(&rec) {
            state.ledger_errors += 1;
            state.swap_faults += 1;
            return Err(format!("proposal not durable: {e}"));
        }
        state
            .machine
            .apply(&rec, Some(target))
            .map_err(|e| e.to_string())?;
        state.migrate_steps_left = steps;
        if !Self::try_migrate(state) {
            return Err("fault at adapt.migrate (rolled back)".to_string());
        }
        if steps == 0 && !self.try_commit(state) {
            return Err("fault at adapt.commit (rolled back)".to_string());
        }
        Ok(())
    }

    /// `Proposed → Migrating`. Any fault rolls the epoch back.
    fn try_migrate(state: &mut ControlState) -> bool {
        if site_fault("adapt.migrate") {
            state.swap_faults += 1;
            Self::try_rollback(state);
            return false;
        }
        let Ok(rec) = state.machine.prepare(Phase::Migrating, None) else {
            return false;
        };
        if let Err(_e) = state.ledger.append(&rec) {
            state.ledger_errors += 1;
            Self::try_rollback(state);
            return false;
        }
        state.machine.apply(&rec, None).is_ok()
    }

    /// `Migrating → Committed`: the one place the active layout changes.
    fn try_commit(&self, state: &mut ControlState) -> bool {
        if site_fault("adapt.commit") {
            state.swap_faults += 1;
            Self::try_rollback(state);
            return false;
        }
        let Ok(rec) = state.machine.prepare(Phase::Committed, None) else {
            return false;
        };
        if let Err(_e) = state.ledger.append(&rec) {
            state.ledger_errors += 1;
            Self::try_rollback(state);
            return false;
        }
        if state.machine.apply(&rec, None).is_err() {
            return false;
        }
        // Judge the new layout on its own traffic.
        self.monitor.reset();
        state.observed_since_eval = 0;
        true
    }

    /// Abandon the in-flight swap. If the rollback record cannot be
    /// appended, park (`pending_rollback`) and retry on later ticks —
    /// memory must not run ahead of the ledger. Should the process die
    /// while parked, resume reaches the same state: the trailing
    /// unresolved record triggers the same rollback.
    fn try_rollback(state: &mut ControlState) {
        let Ok(rec) = state.machine.prepare(Phase::RolledBack, None) else {
            state.pending_rollback = false;
            return;
        };
        if let Err(_e) = state.ledger.append(&rec) {
            state.ledger_errors += 1;
            state.pending_rollback = true;
            return;
        }
        let _ = state.machine.apply(&rec, None);
        state.pending_rollback = false;
        state.migrate_steps_left = 0;
    }
}

/// True when firing `site` reports a fault that must abort the
/// transition (injected ENOSPC or a torn write; delays are latency, not
/// faults; panics propagate).
fn site_fault(site: &str) -> bool {
    match failpoint::fire(site) {
        Ok(None | Some(Fault::Delay)) => false,
        Ok(Some(_)) | Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_resilience::{install, FailPlan, HitSchedule};
    use std::sync::{Mutex as TestMutex, MutexGuard as TestGuard};

    static CHAOS_LOCK: TestMutex<()> = TestMutex::new(());

    fn chaos_locked() -> TestGuard<'static, ()> {
        CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("rap-adapt-ctl-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("epochs.ledger")
    }

    fn quick_config(width: usize) -> AdaptConfig {
        AdaptConfig {
            width,
            initial: "raw".to_string(),
            eval_every: 8,
            min_samples: 8,
            migrate_steps: 4,
            window: 64,
            cost: CostModel {
                relayout_cost_per_cell: 0.01,
                horizon: 1024,
                margin: 0.25,
            },
            ..AdaptConfig::default()
        }
    }

    /// Drive `n` stride observations at the given congestion.
    fn storm(ctl: &AdaptiveController, n: usize, congestion: f64) {
        for _ in 0..n {
            ctl.observe(TrafficClass::Stride, congestion);
        }
    }

    #[test]
    fn stride_storm_triggers_swap_and_commit() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(16)).unwrap();
        assert_eq!(ctl.active().name, "raw");
        storm(&ctl, 64, 16.0);
        let status = ctl.status();
        assert_eq!(status.phase, "stable");
        assert!(status.swaps >= 1, "{status:?}");
        assert_ne!(status.scheme, "raw");
        // The new scheme's certified stride bound beats raw's w.
        let active = ctl.active();
        let state_bound = ctl
            .status()
            .candidates
            .iter()
            .find(|(name, _, _)| *name == active.name)
            .map(|(_, _, b)| b[TrafficClass::Stride.index()])
            .unwrap();
        assert!(state_bound < 16);
    }

    #[test]
    fn quiet_traffic_never_swaps() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(16)).unwrap();
        storm(&ctl, 64, 1.0);
        let status = ctl.status();
        assert_eq!(status.swaps, 0);
        assert_eq!(status.scheme, "raw");
    }

    #[test]
    fn frozen_controller_observes_but_never_swaps() {
        let _g = chaos_locked();
        let mut config = quick_config(16);
        config.start_frozen = true;
        let ctl = AdaptiveController::new(config).unwrap();
        storm(&ctl, 64, 16.0);
        assert_eq!(ctl.status().swaps, 0);
        assert!(ctl.frozen());
        ctl.freeze(false);
        storm(&ctl, 64, 16.0);
        assert!(ctl.status().swaps >= 1);
    }

    #[test]
    fn force_commits_inline_and_refuses_nonsense() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(8)).unwrap();
        assert!(ctl.force("no-such", 0).is_err());
        assert!(ctl.force("raw", 0).is_err(), "already active");
        ctl.force("rap", 0).unwrap();
        assert_eq!(ctl.active().name, "rap");
        assert_eq!(ctl.status().swaps, 1);
    }

    #[test]
    fn forced_migration_holds_old_layout_until_steps_elapse() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(8)).unwrap();
        ctl.force("padded", 3).unwrap();
        assert_eq!(ctl.phase_name(), "migrating");
        assert_eq!(
            ctl.active().name,
            "raw",
            "old layout serves during migration"
        );
        assert!(ctl.force("rap", 0).is_err(), "swap already in flight");
        for _ in 0..3 {
            ctl.observe(TrafficClass::Contiguous, 1.0);
        }
        assert_eq!(ctl.phase_name(), "stable");
        assert_eq!(ctl.active().name, "padded");
    }

    #[test]
    fn propose_fault_aborts_cleanly() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(8)).unwrap();
        let guard =
            install(FailPlan::new(1).rule("adapt.propose", Fault::Enospc, HitSchedule::Always));
        assert!(ctl.force("rap", 0).is_err());
        drop(guard);
        let status = ctl.status();
        assert_eq!(status.scheme, "raw");
        assert_eq!(status.phase, "stable");
        assert!(status.swap_faults >= 1);
        // Recovers once the fault clears.
        ctl.force("rap", 0).unwrap();
        assert_eq!(ctl.active().name, "rap");
    }

    #[test]
    fn commit_fault_rolls_back_to_old_layout() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(8)).unwrap();
        let guard =
            install(FailPlan::new(1).rule("adapt.commit", Fault::Enospc, HitSchedule::Always));
        assert!(ctl.force("rap", 0).is_err());
        drop(guard);
        let status = ctl.status();
        assert_eq!(status.scheme, "raw", "rollback restored the old layout");
        assert_eq!(status.phase, "stable");
        assert_eq!(status.rollbacks, 1);
    }

    #[test]
    fn kill_mid_migration_resumes_with_rollback() {
        let _g = chaos_locked();
        let path = scratch("kill-resume");
        let config = quick_config(8);
        {
            let ctl = AdaptiveController::open(config.clone(), &path).unwrap();
            ctl.force("rap", 0).unwrap(); // committed swap survives
            ctl.force("padded", 100).unwrap(); // parked in Migrating
            assert_eq!(ctl.phase_name(), "migrating");
            // kill -9: drop without commit.
        }
        let ctl = AdaptiveController::open(config.clone(), &path).unwrap();
        let status = ctl.status();
        assert_eq!(status.scheme, "rap", "committed swap survived the kill");
        assert_eq!(status.phase, "stable");
        assert!(status.resumed_interrupted);
        assert_eq!(status.rollbacks, 1);
        // A fresh controller replaying the same ledger reaches the same
        // state (determinism of resume).
        drop(ctl);
        let again = AdaptiveController::open(config, &path).unwrap();
        let s2 = again.status();
        assert_eq!(s2.scheme, "rap");
        assert_eq!(s2.rollbacks, 1, "resume rollback already durable");
        assert!(!s2.resumed_interrupted);
    }

    #[test]
    fn synth_candidates_join_the_set_and_are_forceable() {
        let _g = chaos_locked();
        let mut config = quick_config(8);
        config.synth_workload = Some("column:0;column:3".to_string());
        let ctl = AdaptiveController::new(config).unwrap();
        let status = ctl.status();
        let synth: Vec<_> = status
            .candidates
            .iter()
            .filter(|(_, source, _)| *source == "synthesis")
            .collect();
        assert!(!synth.is_empty(), "synthesized candidates in the set");
        let name = synth[0].0.clone();
        ctl.force(&name, 0).unwrap();
        let active = ctl.active();
        assert_eq!(active.name, name);
        assert!(matches!(active.kind, CandidateKind::Table(_)));
    }

    #[test]
    fn status_value_is_well_formed() {
        let _g = chaos_locked();
        let ctl = AdaptiveController::new(quick_config(8)).unwrap();
        let value = ctl.status().to_value();
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("\"scheme\":\"raw\""));
        assert!(text.contains("\"phase\":\"stable\""));
        assert!(text.contains("\"candidates\""));
    }
}
