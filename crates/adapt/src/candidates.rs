//! Swap candidates: layouts the controller is *allowed* to migrate to.
//!
//! The safety rule of the whole subsystem is that a candidate enters the
//! set only with a machine-checked worst-case congestion bound per
//! traffic class:
//!
//! * **static schemes** (RAW/RAS/RAP/Padded/XOR) get their bounds from
//!   the `rap-analyze` prover via `fallback_bounds` — certified for
//!   *every* instantiation of the scheme's random state;
//! * **synthesized tables** (PR-7 layouts from
//!   `rap_synthesize::candidates`) arrive checker-verified for their
//!   workload, and this module *recomputes* each class bound exactly
//!   from the concrete table — a table is a fixed function, so the
//!   worst case over a warp family is directly enumerable.
//!
//! Table semantics match `RowShift`: bank of cell `(i, j)` is
//! `(j + layout[i]) mod w`.

use crate::monitor::{TrafficClass, CLASSES};
use rap_analyze::{fallback_bounds, FallbackPattern};
use rap_core::Scheme;

/// What a candidate actually is, once active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateKind {
    /// One of the five static schemes (instantiated per request seed).
    Scheme(Scheme),
    /// A fixed synthesized shift table.
    Table(Vec<u32>),
}

/// A swap candidate with certified per-class worst-case bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Stable name used in ledger records, status output, and `adapt_force`.
    pub name: String,
    /// The layout itself.
    pub kind: CandidateKind,
    /// Certified worst-case congestion per [`TrafficClass`] (index order).
    pub bounds: [u32; CLASSES],
    /// Where the bounds came from: `"prover"` or `"synthesis"`.
    pub source: &'static str,
}

impl Candidate {
    /// The certified worst-case bound for `class`.
    #[must_use]
    pub fn bound(&self, class: TrafficClass) -> u32 {
        self.bounds[class.index()]
    }

    /// Build a candidate for a static scheme, bounds from the prover.
    ///
    /// # Errors
    /// Propagates prover rejections (e.g. XOR at a non-power-of-two
    /// width) as a message.
    pub fn of_scheme(scheme: Scheme, width: usize) -> Result<Self, String> {
        let mut bounds = [0u32; CLASSES];
        for class in TrafficClass::ALL {
            let analysis = fallback_bounds(scheme, class_pattern(class), width)
                .map_err(|e| format!("prover rejected {scheme} at w={width}: {e}"))?;
            bounds[class.index()] = analysis.hi;
        }
        Ok(Self {
            name: scheme_candidate_name(scheme).to_string(),
            kind: CandidateKind::Scheme(scheme),
            bounds,
            source: "prover",
        })
    }

    /// Build a candidate from a fixed shift table, bounds by exact
    /// enumeration of each warp family under the concrete table.
    ///
    /// # Errors
    /// Rejects a table whose length differs from `width` or with an
    /// entry `≥ width`.
    pub fn from_table(name: &str, layout: Vec<u32>, width: usize) -> Result<Self, String> {
        if width == 0 {
            return Err("width must be positive".to_string());
        }
        if layout.len() != width {
            return Err(format!(
                "layout has {} entries, width is {width}",
                layout.len()
            ));
        }
        if let Some(bad) = layout.iter().find(|&&s| (s as usize) >= width) {
            return Err(format!("layout entry {bad} out of range 0..{width}"));
        }
        let bounds = table_bounds(&layout, width);
        Ok(Self {
            name: name.to_string(),
            kind: CandidateKind::Table(layout),
            bounds,
            source: "synthesis",
        })
    }
}

/// Exact per-class worst-case congestion of a fixed shift table.
///
/// * **Contiguous**: warp `r` touches row `r`'s `w` columns; banks
///   `(j + layout[r]) mod w` are distinct over `j`, so congestion is 1.
/// * **Stride**: warp `c` touches `(t, c)`; banks `(c + layout[t])`.
///   Adding the constant `c` permutes bank labels, so the worst case
///   over warps is the max multiplicity of the `layout[t]` multiset.
/// * **Diagonal**: warp `d` touches `(t, (t + d) mod w)`; banks
///   `(t + d + layout[t])` — same translation argument, max
///   multiplicity of the `(t + layout[t]) mod w` multiset.
/// * **Random**: not affine; the sound envelope is `w`.
fn table_bounds(layout: &[u32], width: usize) -> [u32; CLASSES] {
    let w = width as u32;
    let mut stride_counts = vec![0u32; width];
    let mut diag_counts = vec![0u32; width];
    for (i, &s) in layout.iter().enumerate() {
        stride_counts[s as usize] += 1;
        diag_counts[((i as u32 + s) % w) as usize] += 1;
    }
    let stride = stride_counts.iter().copied().max().unwrap_or(1);
    let diagonal = diag_counts.iter().copied().max().unwrap_or(1);
    let mut bounds = [0u32; CLASSES];
    bounds[TrafficClass::Contiguous.index()] = 1;
    bounds[TrafficClass::Stride.index()] = stride;
    bounds[TrafficClass::Diagonal.index()] = diagonal;
    bounds[TrafficClass::Random.index()] = w;
    bounds
}

/// The prover pattern matching a monitor class.
#[must_use]
pub fn class_pattern(class: TrafficClass) -> FallbackPattern {
    match class {
        TrafficClass::Contiguous => FallbackPattern::Contiguous,
        TrafficClass::Stride => FallbackPattern::Stride,
        TrafficClass::Diagonal => FallbackPattern::Diagonal,
        TrafficClass::Random => FallbackPattern::Random,
    }
}

/// Candidate name for a static scheme (lower-case, matches the serve
/// protocol's scheme spelling).
#[must_use]
pub fn scheme_candidate_name(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Raw => "raw",
        Scheme::Ras => "ras",
        Scheme::Rap => "rap",
        Scheme::Xor => "xor",
        Scheme::Padded => "padded",
    }
}

/// The static-scheme candidate set at `width`: every scheme the prover
/// accepts there (XOR drops out at non-power-of-two widths).
#[must_use]
pub fn standard_candidates(width: usize) -> Vec<Candidate> {
    Scheme::extended()
        .into_iter()
        .filter_map(|scheme| Candidate::of_scheme(scheme, width).ok())
        .collect()
}

/// Checker-verified synthesized candidates for `workload_spec` at
/// `width`, named `synth:<mode>:w<width>`.
///
/// # Errors
/// Propagates workload-spec parse errors; search/check failures merely
/// shrink the result.
pub fn synthesized_candidates(
    width: usize,
    workload_spec: &str,
    seed: u64,
) -> Result<Vec<Candidate>, String> {
    let workload = rap_synthesize::parse_workload(workload_spec, width)?;
    let verified = rap_synthesize::candidates(&workload, seed)?;
    let mut out = Vec::new();
    for v in verified {
        // from_table recomputes the per-class bounds from the concrete
        // layout — independent of the synthesis objective.
        out.push(Candidate::from_table(&v.name, v.layout, width)?);
    }
    Ok(out)
}

/// Find a candidate by name.
#[must_use]
pub fn find<'a>(candidates: &'a [Candidate], name: &str) -> Option<&'a Candidate> {
    candidates.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_covers_paper_schemes() {
        let set = standard_candidates(8);
        for name in ["raw", "ras", "rap", "xor", "padded"] {
            assert!(find(&set, name).is_some(), "missing {name} at w=8");
        }
        // XOR drops out at non-power-of-two width; the rest stay.
        let set6 = standard_candidates(6);
        assert!(find(&set6, "xor").is_none());
        assert!(find(&set6, "rap").is_some());
    }

    #[test]
    fn raw_bounds_match_table_ii_worst_cases() {
        let raw = Candidate::of_scheme(Scheme::Raw, 16).unwrap();
        assert_eq!(raw.bound(TrafficClass::Contiguous), 1);
        assert_eq!(
            raw.bound(TrafficClass::Stride),
            16,
            "column access serializes"
        );
        assert_eq!(raw.bound(TrafficClass::Random), 16);
    }

    #[test]
    fn identity_table_matches_raw_exactly() {
        let ident = Candidate::from_table("ident", vec![0; 8], 8).unwrap();
        assert_eq!(ident.bound(TrafficClass::Contiguous), 1);
        assert_eq!(ident.bound(TrafficClass::Stride), 8);
        // (i + 0) mod 8 is a permutation — diagonal is conflict-free.
        assert_eq!(ident.bound(TrafficClass::Diagonal), 1);
        assert_eq!(ident.bound(TrafficClass::Random), 8);
    }

    #[test]
    fn permutation_table_is_conflict_free_on_stride() {
        let perm = Candidate::from_table("perm", vec![3, 1, 0, 2], 4).unwrap();
        assert_eq!(perm.bound(TrafficClass::Stride), 1);
    }

    #[test]
    fn bad_tables_are_rejected() {
        assert!(Candidate::from_table("short", vec![0], 4).is_err());
        assert!(Candidate::from_table("oob", vec![0, 1, 2, 9], 4).is_err());
        assert!(Candidate::from_table("zero", vec![], 0).is_err());
    }

    #[test]
    fn synthesized_candidates_verify_and_bound() {
        let set = synthesized_candidates(8, "column:0;column:3", 2014).unwrap();
        assert!(!set.is_empty());
        for c in &set {
            assert_eq!(c.source, "synthesis");
            let CandidateKind::Table(layout) = &c.kind else {
                panic!("synthesized candidate must be a table");
            };
            assert_eq!(layout.len(), 8);
            // A column-only workload synthesizes a stride-conflict-free
            // table (a permutation exists and search finds objective 1).
            assert_eq!(c.bound(TrafficClass::Stride), 1, "{}", c.name);
        }
    }
}
