//! Online congestion monitoring: per-class ring buffers + EWMA.
//!
//! The monitor ingests the live per-request congestion stream in
//! `rap-serve`. The hot path ([`CongestionMonitor::observe`]) is **zero
//! allocation and lock-free**: one atomic fetch-add to claim a ring
//! slot, one atomic store of the sample's IEEE-754 bit pattern, and one
//! CAS loop folding the sample into the exponentially-weighted moving
//! average. Window statistics (exact mean/max over the last `window`
//! samples) are computed on demand by scanning the ring — the *reader*
//! pays, never the request path.
//!
//! Concurrent writers may interleave slot claims and EWMA folds in any
//! order; the monitor is a trigger heuristic, not an accounting system,
//! and every safety decision downstream re-checks against *certified*
//! bounds. Replayed single-threaded (the `rap adapt` trace mode), the
//! monitor is exactly deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Traffic classes tracked by the monitor.
///
/// Mirrors `rap-analyze`'s `FallbackPattern` — the four Monte-Carlo
/// pattern families — because those are exactly the classes the prover
/// can certify bounds for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TrafficClass {
    /// Warp `r` reads row `r` contiguously.
    Contiguous,
    /// Warp `c` reads column `c` (the paper's stride access).
    Stride,
    /// Warp `d` reads the `d`-shifted diagonal.
    Diagonal,
    /// Fresh uniform coordinates per lane.
    Random,
}

/// Number of traffic classes.
pub const CLASSES: usize = 4;

impl TrafficClass {
    /// All classes, in index order.
    pub const ALL: [TrafficClass; CLASSES] = [
        TrafficClass::Contiguous,
        TrafficClass::Stride,
        TrafficClass::Diagonal,
        TrafficClass::Random,
    ];

    /// Dense index in `0..CLASSES`.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Contiguous => 0,
            TrafficClass::Stride => 1,
            TrafficClass::Diagonal => 2,
            TrafficClass::Random => 3,
        }
    }

    /// Lower-case display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            TrafficClass::Contiguous => "contiguous",
            TrafficClass::Stride => "stride",
            TrafficClass::Diagonal => "diagonal",
            TrafficClass::Random => "random",
        }
    }

    /// Parse a class name (case-insensitive).
    ///
    /// # Errors
    /// Names the unknown class.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "contiguous" => Ok(TrafficClass::Contiguous),
            "stride" => Ok(TrafficClass::Stride),
            "diagonal" => Ok(TrafficClass::Diagonal),
            "random" => Ok(TrafficClass::Random),
            other => Err(format!(
                "unknown traffic class '{other}' (expected contiguous|stride|diagonal|random)"
            )),
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact statistics over one class's current window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassWindow {
    /// Samples currently in the window (`min(total, window)`).
    pub samples: u64,
    /// Total observations ever recorded for the class.
    pub total: u64,
    /// Exact mean of the windowed samples (0 when empty).
    pub mean: f64,
    /// Exact max of the windowed samples (0 when empty).
    pub max: f64,
    /// Exponentially-weighted moving average (0 until the first sample).
    pub ewma: f64,
}

struct ClassRing {
    /// Total observations ever; `total % window` is the next slot.
    total: AtomicU64,
    /// EWMA as f64 bits; `EWMA_EMPTY` until the first sample.
    ewma_bits: AtomicU64,
    /// Sample values as f64 bits, one slot per windowed sample.
    slots: Box<[AtomicU64]>,
}

/// Sentinel for "no EWMA yet" — the bit pattern of a quiet NaN we never
/// produce from real congestion values (which are finite and ≥ 0).
const EWMA_EMPTY: u64 = u64::MAX;

/// The per-class congestion monitor (see the module docs).
pub struct CongestionMonitor {
    window: usize,
    alpha: f64,
    rings: [ClassRing; CLASSES],
}

impl std::fmt::Debug for CongestionMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CongestionMonitor")
            .field("window", &self.window)
            .field("alpha", &self.alpha)
            .finish_non_exhaustive()
    }
}

impl CongestionMonitor {
    /// A monitor with `window` exact samples per class and EWMA weight
    /// `alpha` (clamped to `(0, 1]`). `window` is clamped to ≥ 1.
    #[must_use]
    pub fn new(window: usize, alpha: f64) -> Self {
        let window = window.max(1);
        let alpha = if alpha.is_finite() && alpha > 0.0 && alpha <= 1.0 {
            alpha
        } else {
            0.2
        };
        let ring = || ClassRing {
            total: AtomicU64::new(0),
            ewma_bits: AtomicU64::new(EWMA_EMPTY),
            slots: (0..window).map(|_| AtomicU64::new(0)).collect(),
        };
        Self {
            window,
            alpha,
            rings: [ring(), ring(), ring(), ring()],
        }
    }

    /// Window size (samples per class).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// Record one congestion sample for `class`. Lock-free; allocates
    /// nothing.
    pub fn observe(&self, class: TrafficClass, congestion: f64) {
        let sample = if congestion.is_finite() && congestion >= 0.0 {
            congestion
        } else {
            return; // refuse to poison the window with NaN/negative
        };
        let ring = &self.rings[class.index()];
        let n = ring.total.fetch_add(1, Ordering::AcqRel);
        let slot = (n % self.window as u64) as usize;
        ring.slots[slot].store(sample.to_bits(), Ordering::Release);
        // Fold into the EWMA with a CAS loop; contention is rare (the
        // serve worker pool is small) and the loop allocates nothing.
        let mut current = ring.ewma_bits.load(Ordering::Acquire);
        loop {
            let next = if current == EWMA_EMPTY {
                sample
            } else {
                let prev = f64::from_bits(current);
                self.alpha.mul_add(sample - prev, prev)
            };
            match ring.ewma_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Exact statistics over `class`'s current window (reader-pays scan).
    #[must_use]
    pub fn window(&self, class: TrafficClass) -> ClassWindow {
        let ring = &self.rings[class.index()];
        let total = ring.total.load(Ordering::Acquire);
        let filled = (total.min(self.window as u64)) as usize;
        let mut sum = 0.0;
        let mut max = 0.0_f64;
        for slot in ring.slots.iter().take(filled) {
            let v = f64::from_bits(slot.load(Ordering::Acquire));
            sum += v;
            if v > max {
                max = v;
            }
        }
        let ewma_bits = ring.ewma_bits.load(Ordering::Acquire);
        ClassWindow {
            samples: filled as u64,
            total,
            mean: if filled == 0 {
                0.0
            } else {
                sum / filled as f64
            },
            max,
            ewma: if ewma_bits == EWMA_EMPTY {
                0.0
            } else {
                f64::from_bits(ewma_bits)
            },
        }
    }

    /// Clear every class's window and EWMA — called after a committed
    /// swap so the new layout is judged on its own traffic.
    pub fn reset(&self) {
        for ring in &self.rings {
            ring.total.store(0, Ordering::Release);
            ring.ewma_bits.store(EWMA_EMPTY, Ordering::Release);
            for slot in &ring.slots {
                slot.store(0, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_round_trips() {
        for class in TrafficClass::ALL {
            assert_eq!(TrafficClass::ALL[class.index()], class);
            assert_eq!(TrafficClass::parse(class.name()).unwrap(), class);
        }
        assert!(TrafficClass::parse("bogus").is_err());
    }

    #[test]
    fn window_tracks_exact_mean_and_max() {
        let m = CongestionMonitor::new(4, 0.5);
        for v in [1.0, 2.0, 3.0] {
            m.observe(TrafficClass::Stride, v);
        }
        let w = m.window(TrafficClass::Stride);
        assert_eq!(w.samples, 3);
        assert_eq!(w.total, 3);
        assert!((w.mean - 2.0).abs() < 1e-12);
        assert!((w.max - 3.0).abs() < 1e-12);
        // Other classes untouched.
        assert_eq!(m.window(TrafficClass::Random).samples, 0);
    }

    #[test]
    fn ring_wraps_and_keeps_last_window_samples() {
        let m = CongestionMonitor::new(2, 0.5);
        for v in [10.0, 20.0, 30.0] {
            m.observe(TrafficClass::Diagonal, v);
        }
        let w = m.window(TrafficClass::Diagonal);
        assert_eq!(w.samples, 2);
        assert_eq!(w.total, 3);
        // Slots now hold {30, 20}.
        assert!((w.mean - 25.0).abs() < 1e-12);
        assert!((w.max - 30.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_starts_at_first_sample_then_decays() {
        let m = CongestionMonitor::new(8, 0.5);
        m.observe(TrafficClass::Contiguous, 4.0);
        assert!((m.window(TrafficClass::Contiguous).ewma - 4.0).abs() < 1e-12);
        m.observe(TrafficClass::Contiguous, 0.0);
        assert!((m.window(TrafficClass::Contiguous).ewma - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_and_negative_samples_are_dropped() {
        let m = CongestionMonitor::new(4, 0.5);
        m.observe(TrafficClass::Random, f64::NAN);
        m.observe(TrafficClass::Random, f64::INFINITY);
        m.observe(TrafficClass::Random, -1.0);
        assert_eq!(m.window(TrafficClass::Random).samples, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let m = CongestionMonitor::new(4, 0.5);
        m.observe(TrafficClass::Stride, 5.0);
        m.reset();
        let w = m.window(TrafficClass::Stride);
        assert_eq!(w.samples, 0);
        assert_eq!(w.total, 0);
        assert!((w.ewma).abs() < 1e-12);
    }
}
