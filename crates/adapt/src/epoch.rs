//! The epoch state machine: `Stable → Proposed → Migrating → Committed |
//! RolledBack`.
//!
//! Every transition is **prepared** (validated, a durable record built)
//! before it is **applied** (in-memory state mutated). The controller
//! persists the record between the two steps, so a crash at any point
//! leaves the ledger and memory in one of exactly two relationships:
//!
//! * record persisted, apply not yet run — replay applies it;
//! * record not persisted, apply not run — the transition never
//!   happened.
//!
//! There is no state where memory moved and the ledger did not. Replay
//! is therefore a pure fold of [`EpochMachine::apply`] over the record
//! stream, and a run interrupted mid-epoch (trailing `Proposed` or
//! `Migrating` without resolution) deterministically **rolls back** to
//! the last committed layout — the active layout is only ever replaced
//! at `Committed`, so requests served during a migration always come
//! from the old layout, never a torn hybrid.

use crate::candidates::{Candidate, CandidateKind};
use rap_core::Scheme;
use serde::{Deserialize, Serialize};

/// Epoch lifecycle phases. `Stable`, `Proposed`, and `Migrating` are
/// machine states; `Committed` and `RolledBack` are transition records
/// that resolve the machine back to `Stable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// No swap in flight.
    Stable,
    /// A target candidate has been selected and durably recorded.
    Proposed,
    /// The swap is in progress; requests still served from the old layout.
    Migrating,
    /// The swap completed; the target is now the active layout.
    Committed,
    /// The swap was abandoned; the active layout is unchanged.
    RolledBack,
}

impl Phase {
    /// Lower-case display name (matches the serialized form).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Stable => "stable",
            Phase::Proposed => "proposed",
            Phase::Migrating => "migrating",
            Phase::Committed => "committed",
            Phase::RolledBack => "rolledback",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One durable ledger record: a single epoch transition, self-contained
/// for replay (the target's concrete table rides along when the target
/// is synthesized, so resume never depends on re-running the search).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Monotonic record sequence number (0-based).
    pub seq: u64,
    /// Committed epoch count *after* this record applies.
    pub epoch: u64,
    /// The transition.
    pub phase: Phase,
    /// Active candidate name when the record was written.
    pub from: String,
    /// Target candidate name (for `RolledBack`: the abandoned target).
    pub to: String,
    /// Tile width, pinned so a record can rebuild its target.
    pub width: u32,
    /// The target's shift table when it is a synthesized layout.
    pub layout: Option<Vec<u32>>,
}

/// Why a transition was refused. Invalid requests are errors, never
/// panics — the machine's state is unchanged by a refused transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// The requested phase is not legal from the current phase.
    InvalidTransition {
        /// Current machine phase.
        from: Phase,
        /// Requested record phase.
        to: Phase,
    },
    /// `Proposed` needs a target candidate.
    MissingTarget,
    /// Proposing the already-active candidate is a no-op, refused.
    TargetIsActive(String),
    /// A record's seq does not extend the machine's history.
    SeqMismatch {
        /// Expected next sequence number.
        expected: u64,
        /// The record's sequence number.
        got: u64,
    },
    /// A record's width disagrees with the machine's.
    WidthMismatch {
        /// Machine width.
        expected: u32,
        /// Record width.
        got: u32,
    },
    /// A replayed record names a target that cannot be rebuilt.
    UnknownTarget(String),
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::InvalidTransition { from, to } => {
                write!(f, "invalid transition {from} -> {to}")
            }
            EpochError::MissingTarget => write!(f, "proposed transition needs a target"),
            EpochError::TargetIsActive(name) => {
                write!(f, "target '{name}' is already active")
            }
            EpochError::SeqMismatch { expected, got } => {
                write!(f, "record seq {got}, expected {expected}")
            }
            EpochError::WidthMismatch { expected, got } => {
                write!(f, "record width {got}, machine width {expected}")
            }
            EpochError::UnknownTarget(name) => {
                write!(f, "cannot rebuild target candidate '{name}'")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// The epoch state machine (see the module docs).
#[derive(Debug, Clone)]
pub struct EpochMachine {
    width: usize,
    /// Next record sequence number.
    seq: u64,
    /// Committed epochs so far (== successful swaps).
    epoch: u64,
    /// Rolled-back swap attempts.
    rollbacks: u64,
    /// The committed layout — the only one requests are served from.
    active: Candidate,
    /// The in-flight target, once proposed.
    pending: Option<Candidate>,
    phase: Phase,
}

impl EpochMachine {
    /// A machine serving `initial` at `width`, with no history.
    #[must_use]
    pub fn new(width: usize, initial: Candidate) -> Self {
        Self {
            width,
            seq: 0,
            epoch: 0,
            rollbacks: 0,
            active: initial,
            pending: None,
            phase: Phase::Stable,
        }
    }

    /// Tile width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The committed (serving) candidate.
    #[must_use]
    pub fn active(&self) -> &Candidate {
        &self.active
    }

    /// The in-flight target, if a swap is proposed or migrating.
    #[must_use]
    pub fn pending(&self) -> Option<&Candidate> {
        self.pending.as_ref()
    }

    /// Current machine phase (`Stable`, `Proposed`, or `Migrating`).
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Committed epochs (successful swaps).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rolled-back swap attempts.
    #[must_use]
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Next record sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Validate a transition and build its durable record **without**
    /// mutating the machine. Persist the record, then [`Self::apply`] it.
    ///
    /// # Errors
    /// [`EpochError`] when the transition is not legal from the current
    /// phase; the machine is unchanged.
    pub fn prepare(
        &self,
        to: Phase,
        target: Option<&Candidate>,
    ) -> Result<EpochRecord, EpochError> {
        let record =
            |epoch: u64, from: &str, to_name: &str, layout: Option<Vec<u32>>, phase| EpochRecord {
                seq: self.seq,
                epoch,
                phase,
                from: from.to_string(),
                to: to_name.to_string(),
                width: self.width as u32,
                layout,
            };
        match to {
            Phase::Proposed => {
                if self.phase != Phase::Stable {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to,
                    });
                }
                let target = target.ok_or(EpochError::MissingTarget)?;
                if target.name == self.active.name {
                    return Err(EpochError::TargetIsActive(target.name.clone()));
                }
                let layout = match &target.kind {
                    CandidateKind::Table(t) => Some(t.clone()),
                    CandidateKind::Scheme(_) => None,
                };
                Ok(record(
                    self.epoch,
                    &self.active.name,
                    &target.name,
                    layout,
                    Phase::Proposed,
                ))
            }
            Phase::Migrating => {
                if self.phase != Phase::Proposed {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to,
                    });
                }
                let pending = self.pending.as_ref().ok_or(EpochError::MissingTarget)?;
                Ok(record(
                    self.epoch,
                    &self.active.name,
                    &pending.name,
                    None,
                    Phase::Migrating,
                ))
            }
            Phase::Committed => {
                if self.phase != Phase::Migrating {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to,
                    });
                }
                let pending = self.pending.as_ref().ok_or(EpochError::MissingTarget)?;
                Ok(record(
                    self.epoch + 1,
                    &self.active.name,
                    &pending.name,
                    None,
                    Phase::Committed,
                ))
            }
            Phase::RolledBack => {
                if !matches!(self.phase, Phase::Proposed | Phase::Migrating) {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to,
                    });
                }
                let pending = self.pending.as_ref().ok_or(EpochError::MissingTarget)?;
                Ok(record(
                    self.epoch,
                    &pending.name,
                    &self.active.name,
                    None,
                    Phase::RolledBack,
                ))
            }
            Phase::Stable => Err(EpochError::InvalidTransition {
                from: self.phase,
                to,
            }),
        }
    }

    /// Apply a (persisted) record. For `Proposed`, `target` supplies the
    /// candidate — live transitions pass the one they prepared with,
    /// replay rebuilds it via [`candidate_from_record`].
    ///
    /// # Errors
    /// [`EpochError`] when the record does not extend this machine's
    /// history; the machine is unchanged on error.
    pub fn apply(
        &mut self,
        record: &EpochRecord,
        target: Option<Candidate>,
    ) -> Result<(), EpochError> {
        if record.seq != self.seq {
            return Err(EpochError::SeqMismatch {
                expected: self.seq,
                got: record.seq,
            });
        }
        if record.width as usize != self.width {
            return Err(EpochError::WidthMismatch {
                expected: self.width as u32,
                got: record.width,
            });
        }
        match record.phase {
            Phase::Proposed => {
                if self.phase != Phase::Stable {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to: record.phase,
                    });
                }
                let target = target.ok_or(EpochError::MissingTarget)?;
                if target.name == self.active.name {
                    return Err(EpochError::TargetIsActive(target.name));
                }
                self.pending = Some(target);
                self.phase = Phase::Proposed;
            }
            Phase::Migrating => {
                if self.phase != Phase::Proposed || self.pending.is_none() {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to: record.phase,
                    });
                }
                self.phase = Phase::Migrating;
            }
            Phase::Committed => {
                if self.phase != Phase::Migrating {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to: record.phase,
                    });
                }
                let Some(pending) = self.pending.take() else {
                    return Err(EpochError::MissingTarget);
                };
                self.active = pending;
                self.epoch += 1;
                self.phase = Phase::Stable;
            }
            Phase::RolledBack => {
                if !matches!(self.phase, Phase::Proposed | Phase::Migrating) {
                    return Err(EpochError::InvalidTransition {
                        from: self.phase,
                        to: record.phase,
                    });
                }
                self.pending = None;
                self.rollbacks += 1;
                self.phase = Phase::Stable;
            }
            Phase::Stable => {
                return Err(EpochError::InvalidTransition {
                    from: self.phase,
                    to: record.phase,
                });
            }
        }
        self.seq += 1;
        Ok(())
    }
}

/// Rebuild the target candidate a `Proposed` record names: synthesized
/// targets carry their table in the record, static targets rebuild from
/// the prover.
///
/// # Errors
/// [`EpochError::UnknownTarget`] when the name is neither a table record
/// nor a static scheme the prover accepts at this width.
pub fn candidate_from_record(record: &EpochRecord, width: usize) -> Result<Candidate, EpochError> {
    if let Some(layout) = &record.layout {
        return Candidate::from_table(&record.to, layout.clone(), width)
            .map_err(|_| EpochError::UnknownTarget(record.to.clone()));
    }
    let scheme = match record.to.as_str() {
        "raw" => Scheme::Raw,
        "ras" => Scheme::Ras,
        "rap" => Scheme::Rap,
        "xor" => Scheme::Xor,
        "padded" => Scheme::Padded,
        _ => return Err(EpochError::UnknownTarget(record.to.clone())),
    };
    Candidate::of_scheme(scheme, width).map_err(|_| EpochError::UnknownTarget(record.to.clone()))
}

/// The outcome of replaying a record stream.
#[derive(Debug)]
pub struct Replay {
    /// The machine after the fold.
    pub machine: EpochMachine,
    /// True when the stream ended mid-epoch (trailing `Proposed` or
    /// `Migrating`): the caller must append a `RolledBack` record —
    /// the interrupted swap is abandoned and the last committed layout
    /// keeps serving.
    pub interrupted: bool,
    /// Records applied.
    pub applied: usize,
}

/// Replay `records` onto a fresh machine serving `initial`.
///
/// # Errors
/// The first record that does not extend the history (the ledger's
/// open-time validation only checks parseability; semantic divergence —
/// e.g. a hand-edited file — surfaces here).
pub fn replay(
    width: usize,
    initial: Candidate,
    records: &[EpochRecord],
) -> Result<Replay, EpochError> {
    let mut machine = EpochMachine::new(width, initial);
    for record in records {
        let target = if record.phase == Phase::Proposed {
            Some(candidate_from_record(record, width)?)
        } else {
            None
        };
        machine.apply(record, target)?;
    }
    let interrupted = machine.phase() != Phase::Stable;
    let applied = records.len();
    Ok(Replay {
        machine,
        interrupted,
        applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::standard_candidates;

    fn cands() -> Vec<Candidate> {
        standard_candidates(8)
    }

    fn machine() -> EpochMachine {
        let set = cands();
        EpochMachine::new(8, set[0].clone()) // raw
    }

    /// Drive one full prepare+apply transition.
    fn step(m: &mut EpochMachine, to: Phase, target: Option<&Candidate>) -> EpochRecord {
        let rec = m.prepare(to, target).unwrap();
        m.apply(&rec, target.cloned()).unwrap();
        rec
    }

    #[test]
    fn happy_path_commits_and_bumps_epoch() {
        let set = cands();
        let mut m = machine();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        step(&mut m, Phase::Proposed, Some(rap));
        assert_eq!(m.phase(), Phase::Proposed);
        assert_eq!(m.active().name, "raw", "active unchanged until commit");
        step(&mut m, Phase::Migrating, None);
        assert_eq!(m.active().name, "raw", "still the old layout mid-migration");
        step(&mut m, Phase::Committed, None);
        assert_eq!(m.phase(), Phase::Stable);
        assert_eq!(m.active().name, "rap");
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.rollbacks(), 0);
    }

    #[test]
    fn rollback_restores_the_committed_layout() {
        let set = cands();
        let mut m = machine();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        step(&mut m, Phase::Proposed, Some(rap));
        step(&mut m, Phase::Migrating, None);
        step(&mut m, Phase::RolledBack, None);
        assert_eq!(m.phase(), Phase::Stable);
        assert_eq!(m.active().name, "raw");
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.rollbacks(), 1);
    }

    #[test]
    fn illegal_transitions_err_and_leave_state_alone() {
        let set = cands();
        let m = machine();
        let before = format!("{m:?}");
        assert!(m.prepare(Phase::Committed, None).is_err());
        assert!(m.prepare(Phase::Migrating, None).is_err());
        assert!(m.prepare(Phase::RolledBack, None).is_err());
        assert!(m.prepare(Phase::Stable, None).is_err());
        assert!(m.prepare(Phase::Proposed, None).is_err(), "needs target");
        let raw = set.iter().find(|c| c.name == "raw").unwrap();
        assert_eq!(
            m.prepare(Phase::Proposed, Some(raw)),
            Err(EpochError::TargetIsActive("raw".into()))
        );
        assert_eq!(format!("{m:?}"), before, "refused transitions are pure");
    }

    #[test]
    fn records_replay_to_identical_state() {
        let set = cands();
        let mut m = machine();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        let padded = set.iter().find(|c| c.name == "padded").unwrap();
        let log = vec![
            step(&mut m, Phase::Proposed, Some(rap)),
            step(&mut m, Phase::Migrating, None),
            step(&mut m, Phase::Committed, None),
            step(&mut m, Phase::Proposed, Some(padded)),
            step(&mut m, Phase::RolledBack, None),
        ];

        let replayed = replay(8, set[0].clone(), &log).unwrap();
        assert!(!replayed.interrupted);
        assert_eq!(replayed.machine.active().name, m.active().name);
        assert_eq!(replayed.machine.epoch(), m.epoch());
        assert_eq!(replayed.machine.rollbacks(), m.rollbacks());
        assert_eq!(replayed.machine.seq(), m.seq());
    }

    #[test]
    fn interrupted_stream_is_flagged_for_rollback() {
        let set = cands();
        let mut m = machine();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        let log = vec![
            step(&mut m, Phase::Proposed, Some(rap)),
            step(&mut m, Phase::Migrating, None),
        ];
        // kill -9 here: no Committed record.
        let replayed = replay(8, set[0].clone(), &log).unwrap();
        assert!(replayed.interrupted);
        assert_eq!(replayed.machine.active().name, "raw");
        assert_eq!(replayed.machine.phase(), Phase::Migrating);
    }

    #[test]
    fn table_targets_round_trip_through_records() {
        let set = cands();
        let table = Candidate::from_table("synth:test", vec![1, 0, 3, 2, 5, 4, 7, 6], 8).unwrap();
        let mut m = machine();
        let rec = m.prepare(Phase::Proposed, Some(&table)).unwrap();
        assert_eq!(rec.layout.as_deref(), Some(&[1, 0, 3, 2, 5, 4, 7, 6][..]));
        let rebuilt = candidate_from_record(&rec, 8).unwrap();
        assert_eq!(rebuilt, table);
        m.apply(&rec, Some(table)).unwrap();
        let json = serde_json::to_string(&rec).unwrap();
        let back: EpochRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        let _ = set;
    }

    #[test]
    fn replay_rejects_tampered_sequence() {
        let set = cands();
        let mut m = machine();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        let mut rec = step(&mut m, Phase::Proposed, Some(rap));
        rec.seq = 5;
        assert!(matches!(
            replay(8, set[0].clone(), &[rec]),
            Err(EpochError::SeqMismatch { .. })
        ));
    }
}
