//! The epoch ledger: durable, replayable record of every transition.
//!
//! A thin typed layer over the generic [`Journal`] from
//! `rap-resilience` — the same crash-safety core as the PR-4 block
//! checkpoint ledger: fingerprint-pinned header, torn-tail truncation
//! on open, serialized durable appends, and the `ledger.append`
//! failpoint (whose `PartialWrite` fault tears a record exactly the way
//! a crash would).
//!
//! The fingerprint pins `(width, seed)` so a ledger written for one
//! controller configuration is discarded wholesale rather than replayed
//! into a different one.

use crate::epoch::EpochRecord;
use rap_resilience::{fingerprint, Journal, JournalSpec, SyncPolicy};
use std::io;
use std::path::Path;

/// On-disk format version.
const EPOCH_LEDGER_VERSION: u32 = 1;
/// Magic string identifying epoch ledgers.
const EPOCH_LEDGER_MAGIC: &str = "rap-adapt-epochs";

/// An open epoch ledger.
#[derive(Debug)]
pub struct EpochLedger {
    journal: Journal,
}

impl EpochLedger {
    /// The run fingerprint for a `(width, seed)` controller.
    #[must_use]
    pub fn run_fingerprint(width: usize, seed: u64) -> u64 {
        fingerprint(["adapt", &format!("w={width}"), &format!("seed={seed}")])
    }

    /// Open (or create) the ledger at `path`, returning the validated
    /// records of a previous run for replay.
    ///
    /// # Errors
    /// Propagates I/O errors; a mismatched header discards the file
    /// (fresh start, not an error).
    pub fn open(
        path: &Path,
        width: usize,
        seed: u64,
        sync: SyncPolicy,
    ) -> io::Result<(Self, Vec<EpochRecord>)> {
        let spec = JournalSpec {
            magic: EPOCH_LEDGER_MAGIC,
            version: EPOCH_LEDGER_VERSION,
            fingerprint: Self::run_fingerprint(width, seed),
            sync,
        };
        let journal = Journal::open(path, &spec, |line| {
            serde_json::from_str::<EpochRecord>(line).is_ok()
        })?;
        let records = journal
            .resumed_lines()
            .iter()
            .filter_map(|line| serde_json::from_str(line).ok())
            .collect();
        Ok((Self { journal }, records))
    }

    /// A purely in-memory ledger (tests, default serve config).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            journal: Journal::in_memory(),
        }
    }

    /// Durably append one transition record.
    ///
    /// # Errors
    /// Propagates I/O errors, including injected `ledger.append` faults.
    pub fn append(&self, record: &EpochRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.journal.append(&line)
    }

    /// True when an existing file was discarded at open (header
    /// mismatch).
    #[must_use]
    pub fn discarded_stale(&self) -> bool {
        self.journal.discarded_stale()
    }

    /// True when a torn trailing record was truncated at open.
    #[must_use]
    pub fn truncated_tail(&self) -> bool {
        self.journal.truncated_tail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{standard_candidates, Candidate};
    use crate::epoch::{EpochMachine, Phase};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("rap-adapt-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("epochs.ledger")
    }

    fn record_stream() -> Vec<crate::epoch::EpochRecord> {
        let set = standard_candidates(8);
        let raw: Candidate = set.iter().find(|c| c.name == "raw").unwrap().clone();
        let rap = set.iter().find(|c| c.name == "rap").unwrap();
        let mut m = EpochMachine::new(8, raw);
        let mut out = Vec::new();
        for (phase, target) in [
            (Phase::Proposed, Some(rap)),
            (Phase::Migrating, None),
            (Phase::Committed, None),
        ] {
            let rec = m.prepare(phase, target).unwrap();
            m.apply(&rec, target.cloned()).unwrap();
            out.push(rec);
        }
        out
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = scratch("roundtrip");
        let stream = record_stream();
        {
            let (ledger, resumed) = EpochLedger::open(&path, 8, 7, SyncPolicy::Flush).unwrap();
            assert!(resumed.is_empty());
            for rec in &stream {
                ledger.append(rec).unwrap();
            }
        }
        let (ledger, resumed) = EpochLedger::open(&path, 8, 7, SyncPolicy::Flush).unwrap();
        assert!(!ledger.discarded_stale());
        assert_eq!(resumed, stream, "lossless round trip");
    }

    #[test]
    fn different_config_discards_the_file() {
        let path = scratch("stale");
        {
            let (ledger, _) = EpochLedger::open(&path, 8, 7, SyncPolicy::Flush).unwrap();
            ledger.append(&record_stream()[0]).unwrap();
        }
        let (ledger, resumed) = EpochLedger::open(&path, 16, 7, SyncPolicy::Flush).unwrap();
        assert!(ledger.discarded_stale());
        assert!(resumed.is_empty());
        let (_, resumed) = EpochLedger::open(&path, 16, 7, SyncPolicy::Flush).unwrap();
        assert!(resumed.is_empty());
    }

    #[test]
    fn torn_tail_drops_only_the_torn_record() {
        let path = scratch("torn");
        let stream = record_stream();
        {
            let (ledger, _) = EpochLedger::open(&path, 8, 7, SyncPolicy::Flush).unwrap();
            for rec in &stream {
                ledger.append(rec).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (ledger, resumed) = EpochLedger::open(&path, 8, 7, SyncPolicy::Flush).unwrap();
        assert!(ledger.truncated_tail());
        assert_eq!(resumed, stream[..2], "clean prefix survives");
    }
}
