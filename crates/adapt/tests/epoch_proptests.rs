//! Property tests for the epoch state machine and the adaptive
//! controller (ISSUE 10 satellite): arbitrary interleavings of
//! observe/propose/migrate/commit/rollback events — with faults
//! injected at every epoch site — never reach an invalid state, never
//! lose the committed layout, and ledger round-trips are lossless.

use proptest::prelude::*;
use rap_adapt::{
    replay, AdaptConfig, AdaptiveController, Candidate, CostModel, EpochMachine, EpochRecord,
    Phase, TrafficClass,
};
use rap_resilience::{install, FailPlan, Fault, HitSchedule};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Failpoint plans are process-global; serialize the tests that install
/// them.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_locked() -> MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scratch(name: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rap-adapt-proptest")
        .join(format!("{name}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir.join("epochs.ledger")
}

const WIDTH: usize = 8;

fn candidate_set() -> Vec<Candidate> {
    rap_adapt::standard_candidates(WIDTH)
}

/// Decode one op byte into a transition attempt.
fn phase_of(op: u8) -> Phase {
    match op % 5 {
        0 => Phase::Proposed,
        1 => Phase::Migrating,
        2 => Phase::Committed,
        3 => Phase::RolledBack,
        _ => Phase::Stable,
    }
}

proptest! {
    /// Arbitrary transition attempts never panic, never corrupt the
    /// machine: refused transitions are pure, the active layout is only
    /// ever the initial candidate or a committed target, and `pending`
    /// exists exactly in Proposed/Migrating.
    #[test]
    fn arbitrary_interleavings_never_reach_invalid_state(
        ops in proptest::collection::vec((0u8..8, 0usize..8), 0..60),
    ) {
        let set = candidate_set();
        let mut machine = EpochMachine::new(WIDTH, set[0].clone());
        let mut committed_names = vec![set[0].name.clone()];
        for (op, target_idx) in ops {
            let to = phase_of(op);
            let target = set[target_idx % set.len()].clone();
            let before_phase = machine.phase();
            let before_active = machine.active().name.clone();
            let before_seq = machine.seq();
            match machine.prepare(to, Some(&target)) {
                Ok(rec) => {
                    machine.apply(&rec, Some(target)).expect("prepared record applies");
                    if rec.phase == Phase::Committed {
                        committed_names.push(machine.active().name.clone());
                    }
                }
                Err(_) => {
                    // Refused transitions must be pure.
                    prop_assert_eq!(machine.phase(), before_phase);
                    prop_assert_eq!(&machine.active().name, &before_active);
                    prop_assert_eq!(machine.seq(), before_seq);
                }
            }
            // Machine invariants.
            prop_assert!(matches!(
                machine.phase(),
                Phase::Stable | Phase::Proposed | Phase::Migrating
            ));
            prop_assert_eq!(
                machine.pending().is_some(),
                machine.phase() != Phase::Stable
            );
            prop_assert!(committed_names.contains(&machine.active().name));
        }
    }

    /// Every applied record stream is lossless through JSON and through
    /// replay: the replayed machine matches the live one field-for-field.
    #[test]
    fn ledger_round_trips_are_lossless(
        ops in proptest::collection::vec((0u8..8, 0usize..8), 0..60),
    ) {
        let set = candidate_set();
        let mut machine = EpochMachine::new(WIDTH, set[0].clone());
        let mut log: Vec<EpochRecord> = Vec::new();
        for (op, target_idx) in ops {
            let target = set[target_idx % set.len()].clone();
            if let Ok(rec) = machine.prepare(phase_of(op), Some(&target)) {
                machine.apply(&rec, Some(target)).expect("prepared record applies");
                log.push(rec);
            }
        }
        // JSON round trip is identity.
        for rec in &log {
            let json = serde_json::to_string(rec).unwrap();
            let back: EpochRecord = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, rec);
        }
        // Replay rebuilds the live machine exactly.
        let replayed = replay(WIDTH, set[0].clone(), &log).unwrap();
        prop_assert_eq!(replayed.machine.seq(), machine.seq());
        prop_assert_eq!(replayed.machine.epoch(), machine.epoch());
        prop_assert_eq!(replayed.machine.rollbacks(), machine.rollbacks());
        prop_assert_eq!(&replayed.machine.active().name, &machine.active().name);
        prop_assert_eq!(replayed.machine.phase(), machine.phase());
        prop_assert_eq!(replayed.interrupted, machine.phase() != Phase::Stable);
    }

    /// The full controller under injected faults at every epoch site
    /// (panics, torn writes, ENOSPC, delays, on pseudo-random
    /// schedules): no invalid state is ever observable, the committed
    /// layout is never lost, and a post-run resume from the ledger
    /// lands on exactly the live controller's committed layout.
    #[test]
    fn controller_survives_fault_storms_at_every_site(
        case in 0u64..1_000_000,
        ops in proptest::collection::vec((0u8..6, 0usize..8, 0u64..3), 1..40),
    ) {
        let _g = chaos_locked();
        let path = scratch("storm", case);
        let config = AdaptConfig {
            width: WIDTH,
            initial: "raw".to_string(),
            seed: case,
            eval_every: 4,
            min_samples: 4,
            migrate_steps: 2,
            cost: CostModel { relayout_cost_per_cell: 0.01, horizon: 512, margin: 0.25 },
            ..AdaptConfig::default()
        };
        let set = candidate_set();
        let ctl = AdaptiveController::open(config.clone(), &path).unwrap();
        let guard = install(
            FailPlan::new(case)
                .rule("adapt.observe", Fault::Delay, HitSchedule::Rate { num: 1, den: 3 })
                .rule("adapt.propose", Fault::Panic, HitSchedule::Rate { num: 1, den: 4 })
                .rule("adapt.migrate", Fault::Enospc, HitSchedule::Rate { num: 1, den: 3 })
                .rule("adapt.commit", Fault::Panic, HitSchedule::Rate { num: 1, den: 4 })
                .rule("ledger.append", Fault::PartialWrite, HitSchedule::Rate { num: 1, den: 5 }),
        );
        for (op, target_idx, class_sel) in &ops {
            let ctl_ref = &ctl;
            // Injected panics must be contained exactly the way serve
            // contains them: catch_unwind around the handler step.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                if op % 3 == 0 {
                    let name = set[target_idx % set.len()].name.clone();
                    let _ = ctl_ref.force(&name, u64::from(op % 2));
                } else {
                    let class = TrafficClass::ALL[(*class_sel as usize) % 4];
                    ctl_ref.observe(class, f64::from(WIDTH as u32));
                }
            }));
            let status = ctl.status();
            prop_assert!(
                matches!(status.phase, "stable" | "proposed" | "migrating"),
                "phase {}", status.phase
            );
            prop_assert!(
                status.candidates.iter().any(|(name, _, _)| *name == status.scheme),
                "active '{}' not in candidate set", status.scheme
            );
        }
        drop(guard);
        let live = ctl.status();
        drop(ctl);
        // Resume must land on the live controller's committed layout —
        // interrupted epochs roll back, committed ones survive.
        let resumed = AdaptiveController::open(config, &path).unwrap();
        let after = resumed.status();
        prop_assert_eq!(&after.scheme, &live.scheme, "committed layout lost");
        prop_assert_eq!(after.phase, "stable");
        prop_assert!(after.epoch <= live.epoch + 1);
    }
}
