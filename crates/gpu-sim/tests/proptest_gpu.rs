//! Property tests for the SM timing model.

use proptest::prelude::*;
use rap_gpu_sim::{lower_program, simulate, GpuKernel, SmConfig, WarpInstr};

fn cfg(mem_latency: u64, alu: u64, overhead: u64) -> SmConfig {
    SmConfig {
        width: 32,
        mem_latency,
        alu_cycles_per_op: alu,
        launch_overhead: overhead,
        clock_ghz: 1.0,
    }
}

fn kernel_strategy() -> impl Strategy<Value = GpuKernel> {
    prop::collection::vec(prop::collection::vec((0u32..8, 0u32..8), 0..6), 1..8).prop_map(|warps| {
        GpuKernel::new(
            32,
            warps
                .into_iter()
                .map(|w| {
                    w.into_iter()
                        .map(|(pre_alu, stages)| WarpInstr { pre_alu, stages })
                        .collect()
                })
                .collect(),
        )
    })
}

proptest! {
    /// Simulated time is at least the port-occupancy lower bound and at
    /// least the latency of the last stage.
    #[test]
    fn time_lower_bounds(kernel in kernel_strategy(), l in 1u64..32, oh in 0u64..20) {
        let r = simulate(&kernel, &cfg(l, 1, oh));
        prop_assert!(r.cycles >= r.stages + oh);
        if r.stages > 0 {
            prop_assert!(r.cycles >= l + oh, "must cover at least one full latency");
        }
        prop_assert_eq!(r.stages, kernel.total_stages());
    }

    /// Launch overhead is a pure additive constant — exactly monotone for
    /// any kernel. (Memory latency and ALU cost are NOT globally monotone:
    /// round-robin greedy scheduling exhibits Graham-style anomalies where
    /// slowing one warp reorders dispatches and finishes earlier. The
    /// uniform-kernel test below covers the anomaly-free case.)
    #[test]
    fn overhead_exactly_additive(kernel in kernel_strategy(), oh in 0u64..50, extra in 1u64..50) {
        let a = simulate(&kernel, &cfg(4, 1, oh)).cycles;
        let b = simulate(&kernel, &cfg(4, 1, oh + extra)).cycles;
        prop_assert_eq!(b, a + extra);
    }

    /// For uniform kernels (identical warps — no scheduling anomalies),
    /// time is monotone in memory latency and ALU cost, and adding a warp
    /// never speeds things up.
    #[test]
    fn uniform_kernels_are_anomaly_free(
        warps in 1usize..8, instrs in 1usize..5, stages in 1u32..6, alu in 0u32..6
    ) {
        let uniform = |n: usize| GpuKernel::new(
            32,
            (0..n).map(|_| vec![WarpInstr { pre_alu: alu, stages }; instrs]).collect(),
        );
        let kernel = uniform(warps);
        let base = simulate(&kernel, &cfg(4, 1, 5)).cycles;
        prop_assert!(simulate(&kernel, &cfg(8, 1, 5)).cycles >= base);
        prop_assert!(simulate(&kernel, &cfg(4, 3, 5)).cycles >= base);
        let bigger = uniform(warps + 1);
        prop_assert!(simulate(&bigger, &cfg(4, 1, 5)).cycles >= base);
    }

    /// Lowering a program conserves total stage counts: the kernel's
    /// stages equal the DMM's total stages for the same program.
    #[test]
    fn lowering_conserves_stages(
        seed in any::<u64>(), w in 1usize..9, warps in 1usize..5
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use rap_dmm::{BankedMemory, Dmm, Machine, MemOp, Program};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = (w * w) as u64;
        let addrs: Vec<u64> = (0..w * warps).map(|_| rng.gen_range(0..n)).collect();
        let mut program: Program<u64> = Program::new(w * warps);
        program.phase("read", move |t| Some(MemOp::Read(addrs[t])));

        let kernel = lower_program(&program, w, &[3]);
        let machine: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::new(w, n as usize);
        let report = machine.execute(&program, &mut mem);
        prop_assert_eq!(kernel.total_stages(), report.total_stages);
    }

    /// ns scales inversely with the clock.
    #[test]
    fn ns_inverse_in_clock(kernel in kernel_strategy(), clock_milli in 100u64..4000) {
        let mut config = cfg(4, 1, 3);
        config.clock_ghz = clock_milli as f64 / 1000.0;
        let r = simulate(&kernel, &config);
        prop_assert!((r.ns - r.cycles as f64 / config.clock_ghz).abs() < 1e-9);
    }
}
