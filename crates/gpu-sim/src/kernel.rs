//! GPU kernels as per-warp instruction streams.
//!
//! The SM engine consumes a [`GpuKernel`]: for every warp, a sequence of
//! [`WarpInstr`]s, each combining the address-computation ALU work with
//! one shared-memory access and its replay count (`stages` = the access's
//! bank congestion). Kernels are usually *lowered* from a DMM
//! [`Program`] via [`lower_program`], which computes the real congestion
//! of every warp access under the mapping already baked into the program's
//! addresses.

use rap_dmm::{MergedAccess, Program};
use serde::{Deserialize, Serialize};

/// One warp-level instruction: `pre_alu` address-computation ops followed
/// by a shared-memory access occupying `stages` replay slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpInstr {
    /// ALU operations executed in the warp's private pipe before the
    /// access issues (address computation, e.g. the RAP shift unpacking).
    pub pre_alu: u32,
    /// Shared-memory replay slots = congestion of the access (0 means the
    /// warp skips the access entirely).
    pub stages: u32,
}

/// A kernel: per-warp instruction streams.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuKernel {
    width: usize,
    warps: Vec<Vec<WarpInstr>>,
}

impl GpuKernel {
    /// Build from explicit per-warp streams.
    ///
    /// # Panics
    /// Panics if `width == 0` or there are no warps.
    #[must_use]
    pub fn new(width: usize, warps: Vec<Vec<WarpInstr>>) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(!warps.is_empty(), "kernel needs at least one warp");
        Self { width, warps }
    }

    /// Threads per warp / banks.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of warps.
    #[must_use]
    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }

    /// Instruction stream of one warp.
    #[must_use]
    pub fn warp(&self, i: usize) -> &[WarpInstr] {
        &self.warps[i]
    }

    /// Total shared-memory stages across all warps (the memory-bound lower
    /// bound on issue cycles).
    #[must_use]
    pub fn total_stages(&self) -> u64 {
        self.warps
            .iter()
            .flatten()
            .map(|i| u64::from(i.stages))
            .sum()
    }
}

/// Lower a DMM [`Program`] to a [`GpuKernel`] for an SM with `width`
/// banks. `alu_per_phase[k]` is the address-computation cost charged
/// before each access of phase `k` (e.g. 2 ops for a RAW index, 5–6 for
/// the RAS/RAP shift lookup; see [`crate::titan`] for the table).
///
/// The congestion of each warp access is computed from the program's
/// physical addresses with full CRCW merging, so the kernel reflects the
/// actual conflicts of whatever mapping generated the program.
///
/// # Panics
/// Panics if `alu_per_phase.len() != program.num_phases()` or the thread
/// count is not a positive multiple of `width`.
#[must_use]
pub fn lower_program<T: Copy>(
    program: &Program<T>,
    width: usize,
    alu_per_phase: &[u32],
) -> GpuKernel {
    assert_eq!(
        alu_per_phase.len(),
        program.num_phases(),
        "one ALU cost per phase required"
    );
    let p = program.num_threads();
    assert!(
        width > 0 && p.is_multiple_of(width),
        "thread count {p} must be a multiple of width {width}"
    );
    let n_warps = p / width;
    let warps = (0..n_warps)
        .map(|wi| {
            program
                .phases()
                .iter()
                .zip(alu_per_phase)
                .filter_map(|(phase, &alu)| {
                    let ops = &phase.ops[wi * width..(wi + 1) * width];
                    let merged = MergedAccess::merge(width, ops);
                    (!merged.is_empty()).then_some(WarpInstr {
                        pre_alu: alu,
                        stages: merged.congestion(),
                    })
                })
                .collect()
        })
        .collect();
    GpuKernel::new(width, warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_dmm::MemOp;

    #[test]
    fn lower_contiguous_program() {
        let w = 4;
        let mut p: Program<u64> = Program::new(16);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        let k = lower_program(&p, w, &[2]);
        assert_eq!(k.num_warps(), 4);
        for wi in 0..4 {
            assert_eq!(
                k.warp(wi),
                &[WarpInstr {
                    pre_alu: 2,
                    stages: 1
                }]
            );
        }
        assert_eq!(k.total_stages(), 4);
    }

    #[test]
    fn lower_stride_program_counts_replays() {
        let w = 4;
        let mut p: Program<u64> = Program::new(16);
        p.phase("read", move |t| {
            Some(MemOp::Read(((t % w) * w + t / w) as u64))
        });
        let k = lower_program(&p, w, &[0]);
        for wi in 0..4 {
            assert_eq!(k.warp(wi)[0].stages, 4, "warp {wi} hammers one bank");
        }
        assert_eq!(k.total_stages(), 16);
    }

    #[test]
    fn empty_phases_are_skipped_per_warp() {
        let w = 4;
        let mut p: Program<u64> = Program::new(8);
        p.phase("warp0 only", |t| (t < 4).then_some(MemOp::Read(t as u64)));
        let k = lower_program(&p, w, &[1]);
        assert_eq!(k.warp(0).len(), 1);
        assert_eq!(k.warp(1).len(), 0);
    }

    #[test]
    #[should_panic(expected = "one ALU cost per phase")]
    fn alu_cost_arity_checked() {
        let mut p: Program<u64> = Program::new(4);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        let _ = lower_program(&p, 4, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn empty_kernel_rejected() {
        let _ = GpuKernel::new(4, vec![]);
    }
}
