//! # rap-gpu-sim — single-SM GPU timing simulator
//!
//! The paper's §VI evaluates the transpose kernels on a GeForce GTX TITAN.
//! No GPU is available in this reproduction, so this crate provides the
//! documented substitute (DESIGN.md §5): a first-order timing model of one
//! streaming multiprocessor whose behaviour is driven by the two effects
//! that actually shape Table III —
//!
//! 1. **bank-conflict replays**: a shared-memory access with congestion
//!    `c` occupies the shared-memory port for `c` cycles;
//! 2. **address-computation cost**: RAS/RAP spend a few extra ALU ops per
//!    access unpacking their shift registers, executed in the warp's
//!    private pipe and hidden when enough warps are resident.
//!
//! Pipeline: DMM [`Program`](rap_dmm::Program) → [`lower_program`] →
//! [`GpuKernel`] → [`simulate`] → [`GpuReport`] (cycles and ns).
//! `SmConfig::gtx_titan()` holds the calibrated parameters; the
//! calibration procedure and paper-vs-simulated numbers are in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod kernel;
pub mod titan;

pub use config::SmConfig;
pub use engine::{simulate, GpuReport};
pub use kernel::{lower_program, GpuKernel, WarpInstr};
