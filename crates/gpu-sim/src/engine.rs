//! The SM execution engine.
//!
//! Scheduling rules (mirroring the validated DMM engine, plus an ALU pipe):
//!
//! * warps are selected round-robin among those whose previous instruction
//!   has completed;
//! * the shared-memory port accepts **one stage per cycle**; an access
//!   with congestion `c` occupies `c` consecutive port slots (replays);
//! * a stage issued at cycle `t` completes at `t + mem_latency − 1`;
//! * `pre_alu` address-computation ops run in the warp's private ALU pipe
//!   *before* the access may issue: they delay that warp by
//!   `pre_alu × alu_cycles_per_op` cycles but do not block other warps —
//!   with ≥ 32 resident warps this overhead is almost fully hidden, which
//!   is exactly why the paper's RAP overhead is small on real hardware;
//! * the reported time adds `launch_overhead` and converts to nanoseconds
//!   at `clock_ghz`.

use crate::config::SmConfig;
use crate::kernel::GpuKernel;
use serde::{Deserialize, Serialize};

/// Result of simulating one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Total cycles including launch overhead.
    pub cycles: u64,
    /// Wall-clock nanoseconds at the configured clock.
    pub ns: f64,
    /// Shared-memory stages issued (memory-boundedness indicator).
    pub stages: u64,
    /// Cycles the port sat idle while warps computed addresses or waited
    /// on latency (scheduling inefficiency indicator).
    pub idle_cycles: u64,
}

/// Simulate `kernel` on `config`.
///
/// ```
/// use rap_gpu_sim::{simulate, GpuKernel, SmConfig, WarpInstr};
///
/// // 32 conflict-free warps pipeline through the calibrated GTX TITAN
/// // model in far less time than 32 serialized replays would take.
/// let free = GpuKernel::new(32, vec![vec![WarpInstr { pre_alu: 2, stages: 1 }]; 32]);
/// let hot = GpuKernel::new(32, vec![vec![WarpInstr { pre_alu: 2, stages: 32 }]; 32]);
/// let cfg = SmConfig::gtx_titan();
/// assert!(simulate(&hot, &cfg).ns > 5.0 * simulate(&free, &cfg).ns);
/// ```
///
/// # Panics
/// Panics if the configuration is invalid (see [`SmConfig::validate`]).
#[must_use]
#[allow(clippy::needless_range_loop)] // warp indexes parallel state arrays
pub fn simulate(kernel: &GpuKernel, config: &SmConfig) -> GpuReport {
    config.validate();
    let n_warps = kernel.num_warps();
    // Per-warp: next instruction index and earliest cycle it may issue.
    let mut pc = vec![0usize; n_warps];
    let mut ready_at = vec![0u64; n_warps];

    // Fold each warp's leading ALU work into its initial readiness.
    for wi in 0..n_warps {
        if let Some(instr) = kernel.warp(wi).first() {
            ready_at[wi] = u64::from(instr.pre_alu) * config.alu_cycles_per_op;
        }
    }

    let mut port_time: u64 = 0;
    let mut busy_cycles: u64 = 0;
    let mut last_completion: u64 = 0;
    let mut stages_total: u64 = 0;
    let mut rr = 0usize;
    let mut any = false;

    loop {
        // Skip zero-stage instructions (inactive warp phases).
        for wi in 0..n_warps {
            while pc[wi] < kernel.warp(wi).len() && kernel.warp(wi)[pc[wi]].stages == 0 {
                pc[wi] += 1;
            }
        }
        if (0..n_warps).all(|wi| pc[wi] >= kernel.warp(wi).len()) {
            break;
        }

        let candidate = (0..n_warps)
            .map(|k| (rr + k) % n_warps)
            .find(|&wi| pc[wi] < kernel.warp(wi).len() && ready_at[wi] <= port_time);
        let Some(wi) = candidate else {
            port_time = (0..n_warps)
                .filter(|&wi| pc[wi] < kernel.warp(wi).len())
                .map(|wi| ready_at[wi])
                .min()
                .expect("an unfinished warp must exist");
            continue;
        };
        rr = (wi + 1) % n_warps;

        let instr = kernel.warp(wi)[pc[wi]];
        let stages = u64::from(instr.stages);
        let start = port_time;
        port_time = start + stages;
        busy_cycles += stages;
        stages_total += stages;
        let completion = start + stages - 1 + (config.mem_latency - 1);
        last_completion = last_completion.max(completion);
        pc[wi] += 1;
        any = true;

        // The warp's next instruction must wait for this access to
        // complete, then for its own address computation.
        let next_alu = kernel
            .warp(wi)
            .get(pc[wi])
            .map_or(0, |n| u64::from(n.pre_alu) * config.alu_cycles_per_op);
        ready_at[wi] = completion + 1 + next_alu;
    }

    let body = if any { last_completion + 1 } else { 0 };
    let cycles = body + config.launch_overhead;
    GpuReport {
        cycles,
        ns: config.to_ns(cycles),
        stages: stages_total,
        idle_cycles: body.saturating_sub(busy_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WarpInstr;

    fn cfg(mem_latency: u64, overhead: u64) -> SmConfig {
        SmConfig {
            width: 4,
            mem_latency,
            alu_cycles_per_op: 1,
            launch_overhead: overhead,
            clock_ghz: 1.0,
        }
    }

    fn uniform_kernel(warps: usize, instrs: usize, stages: u32, alu: u32) -> GpuKernel {
        GpuKernel::new(
            4,
            (0..warps)
                .map(|_| {
                    vec![
                        WarpInstr {
                            pre_alu: alu,
                            stages
                        };
                        instrs
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn single_warp_single_stage() {
        let k = uniform_kernel(1, 1, 1, 0);
        let r = simulate(&k, &cfg(5, 0));
        // issue at 0, completes at 0 + 0 + 4 = 4 → 5 cycles
        assert_eq!(r.cycles, 5);
        assert_eq!(r.stages, 1);
    }

    #[test]
    fn conflict_free_warps_pipeline() {
        // W warps, 1 stage each: W + l - 1 cycles (like the DMM).
        let k = uniform_kernel(8, 1, 1, 0);
        let r = simulate(&k, &cfg(6, 0));
        assert_eq!(r.cycles, 8 + 6 - 1);
    }

    #[test]
    fn replays_serialize_the_port() {
        // 4 warps × 4 replays = 16 port slots.
        let k = uniform_kernel(4, 1, 4, 0);
        let r = simulate(&k, &cfg(3, 0));
        assert_eq!(r.cycles, 16 + 3 - 1);
        assert_eq!(r.stages, 16);
    }

    #[test]
    fn alu_hidden_by_other_warps() {
        // Plenty of warps: per-warp ALU delay overlaps with the busy port.
        let with_alu = simulate(&uniform_kernel(16, 2, 2, 3), &cfg(4, 0));
        let without = simulate(&uniform_kernel(16, 2, 2, 0), &cfg(4, 0));
        let slowdown = with_alu.cycles as f64 / without.cycles as f64;
        assert!(
            slowdown < 1.15,
            "ALU work should be mostly hidden, got {slowdown}"
        );
    }

    #[test]
    fn alu_visible_with_one_warp() {
        // A single warp cannot hide its address computation.
        let with_alu = simulate(&uniform_kernel(1, 3, 1, 10), &cfg(2, 0));
        let without = simulate(&uniform_kernel(1, 3, 1, 0), &cfg(2, 0));
        assert!(with_alu.cycles >= without.cycles + 20);
    }

    #[test]
    fn launch_overhead_added() {
        let k = uniform_kernel(1, 1, 1, 0);
        let a = simulate(&k, &cfg(2, 0));
        let b = simulate(&k, &cfg(2, 50));
        assert_eq!(b.cycles, a.cycles + 50);
    }

    #[test]
    fn empty_kernel_costs_only_overhead() {
        let k = GpuKernel::new(4, vec![vec![], vec![]]);
        let r = simulate(&k, &cfg(3, 7));
        assert_eq!(r.cycles, 7);
        assert_eq!(r.stages, 0);
    }

    #[test]
    fn zero_stage_instructions_skipped() {
        let k = GpuKernel::new(
            4,
            vec![vec![
                WarpInstr {
                    pre_alu: 0,
                    stages: 0,
                },
                WarpInstr {
                    pre_alu: 0,
                    stages: 1,
                },
            ]],
        );
        let r = simulate(&k, &cfg(2, 0));
        assert_eq!(r.stages, 1);
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn idle_cycles_reported() {
        // One warp with dependent accesses: the port idles during latency.
        let k = uniform_kernel(1, 4, 1, 0);
        let r = simulate(&k, &cfg(10, 0));
        assert!(r.idle_cycles > 0);
        assert_eq!(r.cycles, 4 * 10);
    }

    #[test]
    fn ns_uses_clock() {
        let k = uniform_kernel(1, 1, 1, 0);
        let mut c = cfg(2, 0);
        c.clock_ghz = 0.5;
        let r = simulate(&k, &c);
        assert_eq!(r.ns, r.cycles as f64 * 2.0);
    }
}
