//! SM timing-model configuration.
//!
//! The model is deliberately first-order: Table III's shape is driven by
//! (a) shared-memory bank-conflict replays and (b) the fixed costs around
//! them. Parameters:
//!
//! * one shared-memory **stage** (a conflict-free set of ≤ w requests)
//!   issues per cycle — a warp access with congestion `c` replays `c`
//!   times, exactly the DMM injection rule;
//! * a stage completes `mem_latency` cycles after issue;
//! * address-computation ALU instructions execute in the warp's private
//!   ALU pipe (they delay that warp, but do not consume the shared-memory
//!   port — Kepler dual-issues them);
//! * a fixed `launch_overhead` covers block launch and drain;
//! * `clock_ghz` converts cycles to nanoseconds.
//!
//! `SmConfig::gtx_titan()` is calibrated against **one** cell of the
//! paper's Table III (RAW/CRSW = 1595 ns); every other cell is then a
//! prediction. See EXPERIMENTS.md for the fit.

use serde::{Deserialize, Serialize};

/// Timing parameters of the simulated streaming multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Number of shared-memory banks = threads per warp.
    pub width: usize,
    /// Completion latency of a shared-memory stage, in cycles.
    pub mem_latency: u64,
    /// Throughput of the warp-private ALU pipe, in cycles per instruction.
    pub alu_cycles_per_op: u64,
    /// Fixed overhead (launch + pipeline drain), in cycles.
    pub launch_overhead: u64,
    /// Effective clock in GHz used to convert cycles to nanoseconds.
    pub clock_ghz: f64,
}

impl SmConfig {
    /// The GeForce GTX TITAN substitute used for the Table III
    /// reproduction.
    ///
    /// `clock_ghz` was calibrated so that the simulated RAW/CRSW transpose
    /// of a 32×32 double matrix lands on the paper's 1595 ns; the other
    /// parameters are representative Kepler values (shared-memory latency
    /// ≈ 26 cycles; one shared-memory transaction per cycle per SM quad).
    #[must_use]
    pub fn gtx_titan() -> Self {
        Self {
            width: 32,
            mem_latency: 26,
            alu_cycles_per_op: 1,
            launch_overhead: 12,
            clock_ghz: 0.6865,
        }
    }

    /// Convert a cycle count to nanoseconds at this clock.
    ///
    /// # Panics
    /// Panics if `clock_ghz` is not positive.
    #[must_use]
    pub fn to_ns(&self, cycles: u64) -> f64 {
        assert!(self.clock_ghz > 0.0, "clock must be positive");
        cycles as f64 / self.clock_ghz
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (zero width, latency, or clock).
    pub fn validate(&self) {
        assert!(self.width > 0, "width must be positive");
        assert!(self.mem_latency >= 1, "memory latency must be ≥ 1 cycle");
        assert!(self.clock_ghz > 0.0, "clock must be positive");
    }
}

impl Default for SmConfig {
    fn default() -> Self {
        Self::gtx_titan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_defaults_are_sane() {
        let c = SmConfig::gtx_titan();
        c.validate();
        assert_eq!(c.width, 32);
        assert!(c.mem_latency > 1);
    }

    #[test]
    fn ns_conversion() {
        let mut c = SmConfig::gtx_titan();
        c.clock_ghz = 1.0;
        assert_eq!(c.to_ns(1000), 1000.0);
        c.clock_ghz = 0.5;
        assert_eq!(c.to_ns(1000), 2000.0);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn bad_clock_panics() {
        let mut c = SmConfig::gtx_titan();
        c.clock_ghz = 0.0;
        let _ = c.to_ns(1);
    }
}
