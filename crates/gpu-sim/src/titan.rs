//! GTX-TITAN-specific cost tables for the paper's transpose kernels.
//!
//! The paper's §VI CUDA listings differ across schemes only in how each
//! access's address is computed:
//!
//! * **RAW**: plain index arithmetic (`i = t/32`, `j = t%32`, hoisted;
//!   per access only the base offset remains) — ~2 ops;
//! * **RAS**: a shift lookup from packed registers plus `(j + r_i) & 0x1f`
//!   — ~6 ops;
//! * **RAP**: the Figure-7 unpack `(r[i/6] >> (5*(i%6))) & 0x1f` plus the
//!   rotate — ~6 ops (same packed layout as RAS; the permutation property
//!   is free at access time);
//! * the **diagonal** algorithms (DRDW) add `(i+j) mod w` on both
//!   coordinates — +2 ops per access.
//!
//! These are warp-private ALU ops; with 32 resident warps they are almost
//! entirely hidden behind the shared-memory port (see
//! [`crate::engine::simulate`]), which reproduces the paper's observation
//! that the RAP address conversion costs little.

use rap_core::Scheme;

/// ALU ops charged per access for a scheme's address computation.
#[must_use]
pub fn address_alu_ops(scheme: Scheme) -> u32 {
    match scheme {
        Scheme::Raw => 2,
        Scheme::Ras | Scheme::Rap => 6,
        // The modern deterministic baselines: XOR is one extra op over
        // RAW; padding changes only the row pitch (a constant multiply).
        Scheme::Xor => 3,
        Scheme::Padded => 2,
    }
}

/// Extra ALU ops for diagonal index arithmetic (`(i + j) mod w`).
pub const DIAGONAL_EXTRA_OPS: u32 = 2;

/// Per-phase ALU costs `[read, write]` of a transpose kernel under
/// `scheme`; `diagonal` selects the DRDW variant.
#[must_use]
pub fn transpose_alu_costs(scheme: Scheme, diagonal: bool) -> [u32; 2] {
    let base = address_alu_ops(scheme) + if diagonal { DIAGONAL_EXTRA_OPS } else { 0 };
    [base, base]
}

/// Per-phase ALU costs assuming the paper's proposed **hardware RAP**
/// (§I/§VIII: "a circuit that evaluates `σ(a mod w) + a/w` … can be
/// embedded. Using such hardware support, the overhead of address
/// conversion by the RAP can be negligible"): the permute-shift happens
/// in the memory path, so every scheme pays only the RAW index cost.
#[must_use]
pub fn transpose_alu_costs_hw(diagonal: bool) -> [u32; 2] {
    transpose_alu_costs(Scheme::Raw, diagonal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_cheapest() {
        assert!(address_alu_ops(Scheme::Raw) < address_alu_ops(Scheme::Rap));
        assert_eq!(address_alu_ops(Scheme::Ras), address_alu_ops(Scheme::Rap));
    }

    #[test]
    fn diagonal_adds_ops() {
        let plain = transpose_alu_costs(Scheme::Rap, false);
        let diag = transpose_alu_costs(Scheme::Rap, true);
        assert_eq!(diag[0], plain[0] + DIAGONAL_EXTRA_OPS);
        assert_eq!(diag[1], plain[1] + DIAGONAL_EXTRA_OPS);
    }

    #[test]
    fn hardware_rap_costs_like_raw() {
        assert_eq!(
            transpose_alu_costs_hw(false),
            transpose_alu_costs(Scheme::Raw, false)
        );
        assert_eq!(
            transpose_alu_costs_hw(true),
            transpose_alu_costs(Scheme::Raw, true)
        );
    }
}
