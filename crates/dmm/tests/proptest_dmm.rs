//! Property tests for the memory machines.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rap_dmm::{trace, BankedMemory, Dmm, Machine, MemOp, MergedAccess, Program, Umm, WriteSource};

/// Build a random single-phase read program over `warps` warps of width
/// `w`, with addresses in `0..n`.
fn random_read_program(rng: &mut SmallRng, w: usize, warps: usize, n: u64) -> Program<u64> {
    let addrs: Vec<u64> = (0..w * warps).map(|_| rng.gen_range(0..n)).collect();
    let mut p = Program::new(w * warps);
    p.phase("read", move |t| Some(MemOp::Read(addrs[t])));
    p
}

proptest! {
    /// Lower and upper bounds on the execution time of any single-phase
    /// program: `stages + l − 1 ≥ cycles ≥ max(warps, stages) + l − 1`
    /// is not generally tight, but the exact law for one phase is
    /// `cycles = total_stages + l − 1` (the port is never idle when all
    /// warps are ready at cycle 0).
    #[test]
    fn single_phase_time_is_exact(seed in any::<u64>(), w in 1usize..17, warps in 1usize..9, l in 1u64..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = (w * w) as u64;
        let program = random_read_program(&mut rng, w, warps, n);
        let machine: Dmm = Machine::new(w, l);
        let mut mem = BankedMemory::new(w, n as usize);
        let report = machine.execute(&program, &mut mem);
        prop_assert_eq!(report.cycles, report.total_stages + l - 1);
    }

    /// Cycles are monotone in latency for arbitrary programs.
    #[test]
    fn cycles_monotone_in_latency(seed in any::<u64>(), w in 1usize..9, warps in 1usize..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = (w * w) as u64;
        // Two dependent phases to make latency matter.
        let a: Vec<u64> = (0..w * warps).map(|_| rng.gen_range(0..n)).collect();
        let b: Vec<u64> = (0..w * warps).map(|_| rng.gen_range(0..n)).collect();
        let mut program: Program<u64> = Program::new(w * warps);
        let (a2, b2) = (a.clone(), b.clone());
        program.phase("r1", move |t| Some(MemOp::Read(a2[t])));
        program.phase("r2", move |t| Some(MemOp::Read(b2[t])));
        let mut prev = 0;
        for l in [1u64, 2, 5, 11] {
            let machine: Dmm = Machine::new(w, l);
            let mut mem = BankedMemory::new(w, n as usize);
            let c = machine.execute(&program, &mut mem).cycles;
            prop_assert!(c >= prev);
            prev = c;
        }
    }

    /// The trace always predicts exactly what execute reports, for both
    /// machines and arbitrary programs.
    #[test]
    fn trace_agrees_with_execute(seed in any::<u64>(), w in 1usize..9, warps in 1usize..5, l in 1u64..8) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = (w * w) as u64;
        let program = random_read_program(&mut rng, w, warps, n);

        let dmm: Dmm = Machine::new(w, l);
        let mut mem = BankedMemory::new(w, n as usize);
        prop_assert_eq!(trace(&dmm, &program).cycles(), dmm.execute(&program, &mut mem).cycles);

        let umm: Umm = Machine::new(w, l);
        prop_assert_eq!(trace(&umm, &program).cycles(), umm.execute(&program, &mut mem).cycles);
    }

    /// The UMM never beats the DMM: distinct rows ≥ congestion for any
    /// merged access (each row contributes at most one request per bank…
    /// in fact each distinct address is in one row and one bank, and a
    /// bank's unique requests sit in distinct rows).
    #[test]
    fn umm_stages_at_least_dmm_stages(addrs in prop::collection::vec(0u64..512, 1..40), w in 1usize..33) {
        use rap_dmm::{DiscreteBanks, StageModel, UnifiedRows};
        let ops: Vec<Option<MemOp<u64>>> = addrs.iter().map(|&a| Some(MemOp::Read(a))).collect();
        let merged = MergedAccess::merge(w, &ops);
        prop_assert!(UnifiedRows::stages(w, &merged) >= DiscreteBanks::stages(w, &merged));
    }

    /// Functional semantics: a copy program moves exactly the right data
    /// regardless of scheduling parameters.
    #[test]
    fn copy_semantics_independent_of_latency(seed in any::<u64>(), w in 1usize..9, l in 1u64..9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = w * w;
        let src: Vec<u64> = (0..n as u64).map(|x| x * 3 + 1).collect();
        let dst_of: Vec<u64> = {
            // random destination permutation
            let mut d: Vec<u64> = (n as u64..2 * n as u64).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                d.swap(i, j);
            }
            d
        };
        let mut program: Program<u64> = Program::new(n);
        let d2 = dst_of.clone();
        program.phase("read", |t| Some(MemOp::Read(t as u64)));
        program.phase("write", move |t| Some(MemOp::Write(d2[t], WriteSource::LastRead)));
        let machine: Dmm = Machine::new(w, l);
        let mut mem = BankedMemory::from_words(
            w,
            src.iter().copied().chain(std::iter::repeat_n(0, n)).collect(),
        );
        machine.execute(&program, &mut mem);
        for t in 0..n {
            prop_assert_eq!(mem.read(dst_of[t]), src[t]);
        }
    }

    /// Merged access: congestion ≤ warp size and loads sum to uniques.
    #[test]
    fn merge_invariants(addrs in prop::collection::vec(0u64..256, 0..32), w in 1usize..33) {
        let ops: Vec<Option<MemOp<u64>>> = addrs.iter().map(|&a| Some(MemOp::Read(a))).collect();
        let merged = MergedAccess::merge(w, &ops);
        let unique: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        prop_assert_eq!(merged.addresses.len(), unique.len());
        let sum: u32 = merged.bank_loads.iter().sum();
        prop_assert_eq!(sum as usize, unique.len());
    }

    /// Report bookkeeping: dispatches = active warp-phases; stage total
    /// equals the sum of per-phase stage counters.
    #[test]
    fn report_bookkeeping(seed in any::<u64>(), w in 1usize..9, warps in 1usize..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = (w * w) as u64;
        let program = random_read_program(&mut rng, w, warps, n);
        let machine: Dmm = Machine::new(w, 2);
        let mut mem = BankedMemory::new(w, n as usize);
        let report = machine.execute(&program, &mut mem);
        prop_assert_eq!(report.dispatches, warps as u64);
        let phase_sum: u64 = report.phases.iter().map(|p| p.stages).sum();
        prop_assert_eq!(phase_sum, report.total_stages);
        prop_assert_eq!(report.overall_congestion().total(), report.dispatches);
    }
}
