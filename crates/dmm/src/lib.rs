//! # rap-dmm — Discrete / Unified Memory Machine simulators
//!
//! The Discrete Memory Machine (DMM) is the theoretical model of a GPU
//! streaming multiprocessor's shared memory introduced by Nakano ("Simple
//! memory machine models for GPUs", IPDPSW 2012) and used by the RAP paper
//! for all of its analysis: `w` memory banks, warps of `w` threads
//! dispatched round-robin, and an `l`-stage access pipeline in which
//! requests to the same bank serialize. The Unified Memory Machine (UMM)
//! is the companion model of the *global* memory, where one address line is
//! broadcast to all banks.
//!
//! This crate provides:
//!
//! * [`BankedMemory`] — the interleaved flat address space;
//! * [`Program`] — SIMD programs (phases of per-thread [`MemOp`]s);
//! * [`Machine`] with the [`Dmm`] and [`Umm`] aliases — cycle-exact
//!   execution reproducing the paper's time accounting, with congestion
//!   statistics in an [`ExecReport`];
//! * closed forms ([`contiguous_time`], [`stride_time`]) for
//!   cross-checking.
//!
//! The simulator reproduces Figure 3 of the paper exactly: see
//! `machine::tests::figure3_example`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod arena;
pub mod machine;
pub mod memory;
pub mod program;
pub mod report;
pub mod trace;

pub use access::{MemOp, MergedAccess, WriteSource};
pub use arena::{Arena, OutOfSharedMemory, Region};
pub use machine::{
    contiguous_time, stride_time, DiscreteBanks, Dmm, Machine, StageModel, Umm, UnifiedRows,
};
pub use memory::BankedMemory;
pub use program::{Phase, Program};
pub use report::{ExecReport, PhaseStats};
pub use trace::{trace, DispatchEvent, Trace};
