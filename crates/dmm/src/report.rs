//! Execution reports of the memory machines.

use rap_stats::IntHistogram;
use serde::{Deserialize, Serialize};

/// Statistics of one program phase across all warps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label from the program.
    pub label: String,
    /// Distribution of per-warp congestion (only warps that dispatched).
    pub congestion: IntHistogram,
    /// Total pipeline stages consumed by this phase.
    pub stages: u64,
}

impl PhaseStats {
    /// Mean per-warp congestion of the phase (0 if nothing dispatched).
    #[must_use]
    pub fn mean_congestion(&self) -> f64 {
        self.congestion.mean()
    }

    /// Maximum per-warp congestion seen in the phase.
    #[must_use]
    pub fn max_congestion(&self) -> u32 {
        self.congestion.max().unwrap_or(0)
    }
}

/// The result of executing a [`crate::Program`] on a memory machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Total time units from first dispatch to last completion.
    pub cycles: u64,
    /// Number of warp-phase dispatches.
    pub dispatches: u64,
    /// Total pipeline stages injected.
    pub total_stages: u64,
    /// Per-phase statistics, in program order.
    pub phases: Vec<PhaseStats>,
}

impl ExecReport {
    /// Congestion histogram aggregated over all phases.
    #[must_use]
    pub fn overall_congestion(&self) -> IntHistogram {
        let mut h = IntHistogram::new();
        for p in &self.phases {
            h.merge(&p.congestion);
        }
        h
    }

    /// Maximum congestion over the whole execution.
    #[must_use]
    pub fn max_congestion(&self) -> u32 {
        self.phases
            .iter()
            .map(PhaseStats::max_congestion)
            .max()
            .unwrap_or(0)
    }

    /// Stats of the phase with the given label, if present.
    #[must_use]
    pub fn phase(&self, label: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(label: &str, congestions: &[u32]) -> PhaseStats {
        PhaseStats {
            label: label.to_string(),
            congestion: congestions.iter().copied().collect(),
            stages: congestions.iter().map(|&c| u64::from(c)).sum(),
        }
    }

    #[test]
    fn phase_stats_summaries() {
        let p = phase("read", &[1, 1, 3]);
        assert!((p.mean_congestion() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.max_congestion(), 3);
        assert_eq!(p.stages, 5);
    }

    #[test]
    fn report_aggregation() {
        let r = ExecReport {
            cycles: 10,
            dispatches: 6,
            total_stages: 9,
            phases: vec![phase("read", &[1, 1, 1]), phase("write", &[2, 2, 2])],
        };
        assert_eq!(r.max_congestion(), 2);
        let h = r.overall_congestion();
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 3);
        assert!(r.phase("write").is_some());
        assert!(r.phase("nope").is_none());
    }

    #[test]
    fn empty_report() {
        let r = ExecReport {
            cycles: 0,
            dispatches: 0,
            total_stages: 0,
            phases: vec![],
        };
        assert_eq!(r.max_congestion(), 0);
        assert_eq!(r.overall_congestion().total(), 0);
    }
}
