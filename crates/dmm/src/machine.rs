//! The timing machines: DMM and UMM.
//!
//! ## Timing model (paper §II, Figure 3)
//!
//! The MMU is an `l`-stage pipeline with a **single injection port**: in
//! each time unit one *stage* — a set of requests touching pairwise
//! distinct banks — enters the pipeline, and a stage injected at time `t`
//! completes at `t + l − 1`. A warp access with congestion `c` needs
//! exactly `c` stages (split its requests so that every stage carries at
//! most one request per bank). Consequences, which this simulator
//! reproduces exactly:
//!
//! * `x` requests to one bank take `x + l − 1` time units;
//! * contiguous access by `W` warps: `W` stages → `W + l − 1` time units;
//! * stride access by `W` warps of width `w`: `W·w` stages →
//!   `W·w + l − 1` time units.
//!
//! Warps are dispatched round-robin; a warp whose phase issues no request
//! is not dispatched; a warp may start its next phase only after all of its
//! current requests have completed (threads hold at most one outstanding
//! request).
//!
//! ## DMM vs UMM
//!
//! The machines differ in how many stages one warp access occupies:
//!
//! * **DMM** ([`DiscreteBanks`]): separate address lines per bank — a stage
//!   may carry *different* addresses as long as banks are distinct, so
//!   `stages = congestion` (max unique requests per bank);
//! * **UMM** ([`UnifiedRows`]): one shared address line — all banks receive
//!   the same row address, so `stages = number of distinct rows`
//!   (`address / width`) touched by the warp.
//!
//! ## Memory semantics
//!
//! Functional effects are applied atomically at warp dispatch: reads load
//! each thread's `last_read` register; simultaneous writes to one address
//! keep the lowest-numbered thread's value (arbitrary-CRCW, paper §II).
//! Programs in which two warps race on an address within the same phase
//! are outside the DMM's deterministic fragment; this simulator resolves
//! them in dispatch order.

use crate::access::{MemOp, MergedAccess, WriteSource};
use crate::memory::BankedMemory;
use crate::program::Program;
use crate::report::{ExecReport, PhaseStats};
use rap_stats::IntHistogram;

/// How many pipeline stages one merged warp access occupies.
pub trait StageModel {
    /// Machine name for reports.
    const NAME: &'static str;

    /// Stage count for a merged access on a machine with `width` banks.
    fn stages(width: usize, merged: &MergedAccess) -> u32;
}

/// The Discrete Memory Machine rule: stages = congestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscreteBanks;

impl StageModel for DiscreteBanks {
    const NAME: &'static str = "DMM";

    fn stages(_width: usize, merged: &MergedAccess) -> u32 {
        merged.congestion()
    }
}

/// The Unified Memory Machine rule: stages = distinct rows (`addr / w`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnifiedRows;

impl StageModel for UnifiedRows {
    const NAME: &'static str = "UMM";

    fn stages(width: usize, merged: &MergedAccess) -> u32 {
        // `merged.addresses` is sorted, so equal rows are adjacent.
        let w = width as u64;
        let mut rows = 0u32;
        let mut last = u64::MAX;
        for &a in &merged.addresses {
            let row = a / w;
            if row != last {
                rows += 1;
                last = row;
            }
        }
        rows
    }
}

/// A memory machine with a fixed width (banks = warp size) and pipeline
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine<M: StageModel> {
    width: usize,
    latency: u64,
    _model: std::marker::PhantomData<M>,
}

/// The Discrete Memory Machine.
pub type Dmm = Machine<DiscreteBanks>;
/// The Unified Memory Machine.
pub type Umm = Machine<UnifiedRows>;

impl<M: StageModel> Machine<M> {
    /// A machine with `width` banks (= threads per warp) and access
    /// latency `latency ≥ 1`.
    ///
    /// # Panics
    /// Panics if `width == 0` or `latency == 0`.
    #[must_use]
    pub fn new(width: usize, latency: u64) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(latency >= 1, "latency must be at least 1 time unit");
        Self {
            width,
            latency,
            _model: std::marker::PhantomData,
        }
    }

    /// Number of banks / threads per warp.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline latency `l`.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Execute `program` against `memory`, returning timing and congestion
    /// statistics. `memory` is updated with the program's effects.
    ///
    /// ```
    /// use rap_dmm::{BankedMemory, Dmm, Machine, MemOp, Program};
    ///
    /// // A stride access on a 4-bank DMM with latency 2: every warp hits
    /// // one bank with 4 requests, so 4 warps need 4·4 + 2 − 1 cycles.
    /// let machine: Dmm = Machine::new(4, 2);
    /// let mut program: Program<u64> = Program::new(16);
    /// program.phase("stride", |t| Some(MemOp::Read(((t % 4) * 4 + t / 4) as u64)));
    /// let mut memory = BankedMemory::new(4, 16);
    /// let report = machine.execute(&program, &mut memory);
    /// assert_eq!(report.cycles, 17);
    /// assert_eq!(report.max_congestion(), 4);
    /// ```
    ///
    /// # Panics
    /// Panics if the thread count is not a positive multiple of the width
    /// (the DMM partitions threads into full warps, paper §II), if the
    /// program touches an address outside `memory`, or if it uses
    /// [`WriteSource::Reduced`] (use [`Machine::execute_with`]).
    pub fn execute<T: Copy>(
        &self,
        program: &Program<T>,
        memory: &mut BankedMemory<T>,
    ) -> ExecReport {
        self.execute_with(program, memory, |_: &[T]| {
            panic!("program uses WriteSource::Reduced; call execute_with and supply a reducer")
        })
    }

    /// Like [`Machine::execute`], but with a `reducer` that maps each
    /// thread's full read history (in read order) to the value written by
    /// [`WriteSource::Reduced`]. This models register-resident arithmetic
    /// — e.g. the running dot product of a matrix-multiply kernel — which
    /// costs no memory traffic on the DMM.
    ///
    /// # Panics
    /// As [`Machine::execute`] (except `Reduced` is now supported).
    #[allow(clippy::needless_range_loop)] // warp indexes parallel state arrays
    pub fn execute_with<T: Copy>(
        &self,
        program: &Program<T>,
        memory: &mut BankedMemory<T>,
        reducer: impl Fn(&[T]) -> T,
    ) -> ExecReport {
        let w = self.width;
        let p = program.num_threads();
        assert!(
            p.is_multiple_of(w),
            "thread count {p} must be a multiple of the width {w}"
        );
        let n_warps = p / w;
        let n_phases = program.num_phases();

        let mut phase_stats: Vec<PhaseStats> = program
            .phases()
            .iter()
            .map(|ph| PhaseStats {
                label: ph.label.clone(),
                congestion: IntHistogram::with_max(w as u32),
                stages: 0,
            })
            .collect();

        // Per-warp cursor and readiness.
        let mut pc = vec![0usize; n_warps];
        let mut ready_at = vec![0u64; n_warps];
        // Per-thread read history (the last entry is the `LastRead`
        // register; the whole vector feeds `WriteSource::Reduced`).
        let mut history: Vec<Vec<T>> = vec![Vec::new(); p];

        let mut port_time: u64 = 0; // next free injection slot
        let mut last_completion: u64 = 0;
        let mut dispatches: u64 = 0;
        let mut total_stages: u64 = 0;
        let mut any_dispatch = false;
        let mut rr = 0usize; // round-robin scan start

        loop {
            // Skip phases in which a warp issues nothing (not dispatched).
            for warp in 0..n_warps {
                while pc[warp] < n_phases {
                    let phase = &program.phases()[pc[warp]];
                    let ops = &phase.ops[warp * w..(warp + 1) * w];
                    if ops.iter().any(Option::is_some) {
                        break;
                    }
                    pc[warp] += 1;
                }
            }
            if pc.iter().all(|&c| c >= n_phases) {
                break;
            }

            // Pick the next warp to dispatch: round-robin among warps that
            // are ready at the current port time; if none, advance time.
            let ready_warp = (0..n_warps)
                .map(|k| (rr + k) % n_warps)
                .find(|&wi| pc[wi] < n_phases && ready_at[wi] <= port_time);
            let Some(warp) = ready_warp else {
                port_time = (0..n_warps)
                    .filter(|&wi| pc[wi] < n_phases)
                    .map(|wi| ready_at[wi])
                    .min()
                    .expect("some warp must remain");
                continue;
            };
            rr = (warp + 1) % n_warps;

            let phase_idx = pc[warp];
            let phase = &program.phases()[phase_idx];
            let ops = &phase.ops[warp * w..(warp + 1) * w];
            let merged = MergedAccess::merge(w, ops);
            debug_assert!(!merged.is_empty(), "empty phases were skipped above");

            // Apply functional effects at dispatch.
            Self::apply_effects(ops, warp * w, memory, &mut history, &reducer);

            // Timing: the access occupies `stages` injection slots.
            let stages = u64::from(M::stages(w, &merged));
            let start = port_time;
            port_time = start + stages;
            let completion = start + stages - 1 + (self.latency - 1);
            ready_at[warp] = completion + 1;
            last_completion = last_completion.max(completion);
            pc[warp] += 1;

            dispatches += 1;
            total_stages += stages;
            any_dispatch = true;
            phase_stats[phase_idx]
                .congestion
                .record(merged.congestion());
            phase_stats[phase_idx].stages += stages;
        }

        ExecReport {
            cycles: if any_dispatch { last_completion + 1 } else { 0 },
            dispatches,
            total_stages,
            phases: phase_stats,
        }
    }

    /// Apply one warp phase's reads/writes to memory and registers.
    fn apply_effects<T: Copy>(
        ops: &[Option<MemOp<T>>],
        thread_base: usize,
        memory: &mut BankedMemory<T>,
        history: &mut [Vec<T>],
        reducer: &impl Fn(&[T]) -> T,
    ) {
        // Reads first (a phase is all-reads or all-writes, so order within
        // the phase is immaterial; doing reads first is future-proof).
        for (lane, op) in ops.iter().enumerate() {
            if let Some(MemOp::Read(a)) = op {
                history[thread_base + lane].push(memory.read(*a));
            }
        }
        // Writes: lowest-numbered thread wins on address collisions, so
        // iterate lanes in reverse and let earlier lanes overwrite.
        for (lane, op) in ops.iter().enumerate().rev() {
            if let Some(MemOp::Write(a, src)) = op {
                let reads = &history[thread_base + lane];
                let value = match src {
                    WriteSource::Const(v) => *v,
                    WriteSource::LastRead => {
                        *reads.last().expect("thread wrote LastRead before any read")
                    }
                    WriteSource::Reduced => reducer(reads),
                };
                memory.write(*a, value);
            }
        }
    }
}

/// Closed-form time of a contiguous access by `warps` warps
/// (`warps + l − 1`), for cross-checking the simulator.
#[must_use]
pub fn contiguous_time(warps: u64, latency: u64) -> u64 {
    warps + latency - 1
}

/// Closed-form time of a stride access by `warps` warps on width `w`
/// (`warps·w + l − 1`).
#[must_use]
pub fn stride_time(warps: u64, width: u64, latency: u64) -> u64 {
    warps * width + latency - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{MemOp, WriteSource};

    /// Contiguous access: thread `t` reads address `t`.
    fn contiguous_program(w: usize) -> Program<u64> {
        let mut p = Program::new(w * w);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        p
    }

    /// Stride access: thread `t` reads `A[t mod w][t / w]` = address
    /// `(t mod w)·w + t/w` — every warp hammers a single bank.
    fn stride_program(w: usize) -> Program<u64> {
        let mut p = Program::new(w * w);
        p.phase("read", move |t| {
            Some(MemOp::Read(((t % w) * w + t / w) as u64))
        });
        p
    }

    #[test]
    fn contiguous_matches_closed_form() {
        for (w, l) in [(4usize, 1u64), (4, 2), (8, 5), (16, 3)] {
            let m: Dmm = Machine::new(w, l);
            let mut mem = BankedMemory::new(w, w * w);
            let r = m.execute(&contiguous_program(w), &mut mem);
            assert_eq!(r.cycles, contiguous_time(w as u64, l), "w={w} l={l}");
            assert_eq!(r.max_congestion(), 1);
            assert_eq!(r.total_stages, w as u64);
        }
    }

    #[test]
    fn stride_matches_closed_form() {
        for (w, l) in [(4usize, 1u64), (4, 2), (8, 5)] {
            let m: Dmm = Machine::new(w, l);
            let mut mem = BankedMemory::new(w, w * w);
            let r = m.execute(&stride_program(w), &mut mem);
            assert_eq!(r.cycles, stride_time(w as u64, w as u64, l), "w={w} l={l}");
            assert_eq!(r.max_congestion(), w as u32);
        }
    }

    #[test]
    fn broadcast_counts_once() {
        let w = 8;
        let m: Dmm = Machine::new(w, 2);
        let mut mem = BankedMemory::new(w, w * w);
        let mut p: Program<u64> = Program::new(w * w);
        p.phase("bcast", |_| Some(MemOp::Read(5)));
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.max_congestion(), 1);
        assert_eq!(r.cycles, contiguous_time(w as u64, 2));
    }

    #[test]
    fn figure3_example() {
        // Paper Figure 3: w = 4, l = 3; W(0) accesses {7, 5, 15, 0},
        // W(1) accesses {10, 11, 12, 9}. W(0) has 7 and 15 in bank 3 →
        // 2 stages; W(1) is conflict-free → 1 stage. Three stages total,
        // so the time is 3 + 3 − 1 = 5 time units.
        let m: Dmm = Machine::new(4, 3);
        let mut mem = BankedMemory::new(4, 16);
        let mut p: Program<u64> = Program::new(8);
        let addrs = [7u64, 5, 15, 0, 10, 11, 12, 9];
        p.phase("fig3", move |t| Some(MemOp::Read(addrs[t])));
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.cycles, 5);
        assert_eq!(r.total_stages, 3);
        assert_eq!(r.dispatches, 2);
    }

    #[test]
    fn copy_program_moves_data() {
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::from_words(w, (0u64..32).collect());
        let mut p: Program<u64> = Program::new(16);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        p.phase("write", |t| {
            Some(MemOp::Write(16 + t as u64, WriteSource::LastRead))
        });
        let r = m.execute(&p, &mut mem);
        assert!(r.cycles > 0);
        for t in 0..16u64 {
            assert_eq!(mem.read(16 + t), t);
        }
    }

    #[test]
    fn crcw_write_lowest_thread_wins() {
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::new(w, 8);
        let mut p: Program<u64> = Program::new(4);
        p.phase("write", |t| {
            Some(MemOp::Write(3, WriteSource::Const(100 + t as u64)))
        });
        let r = m.execute(&p, &mut mem);
        assert_eq!(mem.read(3), 100, "lowest-numbered thread must win");
        assert_eq!(r.max_congestion(), 1, "merged write counts once");
    }

    #[test]
    fn inactive_warp_not_dispatched() {
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::new(w, 64);
        let mut p: Program<u64> = Program::new(16); // 4 warps
                                                    // Only warp 0 is active.
        p.phase("sparse", |t| (t < 4).then_some(MemOp::Read(t as u64)));
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.cycles, 1);
    }

    #[test]
    fn fully_empty_program() {
        let w = 4;
        let m: Dmm = Machine::new(w, 3);
        let mut mem: BankedMemory<u64> = BankedMemory::new(w, 4);
        let mut p: Program<u64> = Program::new(4);
        p.phase("nothing", |_| None);
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.dispatches, 0);
    }

    #[test]
    fn latency_pipelines_across_warps() {
        // With many warps and conflict-free access, latency is hidden:
        // time = W + l - 1, not W·l.
        let w = 4;
        let l = 10;
        let m: Dmm = Machine::new(w, l);
        let mut mem = BankedMemory::new(w, 16 * 4);
        let mut p: Program<u64> = Program::new(16 * 4); // 16 warps
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.cycles, 16 + l - 1);
    }

    #[test]
    fn dependent_phases_respect_latency() {
        // One warp, two dependent phases: the write cannot be injected
        // until the read completes at l-1; write completes at l + l - 1.
        let w = 4;
        let l = 6;
        let m: Dmm = Machine::new(w, l);
        let mut mem = BankedMemory::new(w, 8);
        let mut p: Program<u64> = Program::new(4);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        p.phase("write", |t| {
            Some(MemOp::Write(4 + t as u64, WriteSource::LastRead))
        });
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.cycles, 2 * l);
    }

    #[test]
    fn umm_charges_rows_not_banks() {
        // A diagonal access: addresses {0, w+1, 2w+2, 3w+3} are in distinct
        // banks (DMM: 1 stage) but distinct rows (UMM: w stages).
        let w = 4;
        let mut p: Program<u64> = Program::new(4);
        p.phase("diag", move |t| Some(MemOp::Read((t * w + t) as u64)));

        let dmm: Dmm = Machine::new(w, 1);
        let umm: Umm = Machine::new(w, 1);
        let mut mem = BankedMemory::new(w, w * w);
        let rd = dmm.execute(&p, &mut mem);
        let ru = umm.execute(&p, &mut mem);
        assert_eq!(rd.total_stages, 1);
        assert_eq!(ru.total_stages, 4);
        assert!(ru.cycles > rd.cycles);
    }

    #[test]
    fn umm_same_row_is_one_stage() {
        let w = 4usize;
        let umm: Umm = Machine::new(w, 2);
        let mut mem = BankedMemory::new(w, 16);
        let mut p: Program<u64> = Program::new(4);
        // All of row 2, permuted across lanes.
        let addrs = [9u64, 8, 11, 10];
        p.phase("row", move |t| Some(MemOp::Read(addrs[t])));
        let r = umm.execute(&p, &mut mem);
        assert_eq!(r.total_stages, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the width")]
    fn partial_warp_rejected() {
        let m: Dmm = Machine::new(4, 1);
        let mut mem: BankedMemory<u64> = BankedMemory::new(4, 8);
        let mut p: Program<u64> = Program::new(6);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        let _ = m.execute(&p, &mut mem);
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let _: Dmm = Machine::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "before any read")]
    fn write_lastread_without_read_panics() {
        let m: Dmm = Machine::new(4, 1);
        let mut mem: BankedMemory<u64> = BankedMemory::new(4, 4);
        let mut p: Program<u64> = Program::new(4);
        p.phase("write", |t| {
            Some(MemOp::Write(t as u64, WriteSource::LastRead))
        });
        let _ = m.execute(&p, &mut mem);
    }

    #[test]
    fn reduced_write_applies_reducer_over_history() {
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::from_words(w, (0u64..12).collect());
        let mut p: Program<u64> = Program::new(4);
        p.phase("r1", |t| Some(MemOp::Read(t as u64)));
        p.phase("r2", |t| Some(MemOp::Read(4 + t as u64)));
        p.phase("write", |t| {
            Some(MemOp::Write(8 + t as u64, WriteSource::Reduced))
        });
        m.execute_with(&p, &mut mem, |reads| reads.iter().sum());
        for t in 0..4u64 {
            assert_eq!(mem.read(8 + t), t + (4 + t), "sum of the two reads");
        }
    }

    #[test]
    fn reduced_timing_identical_to_lastread() {
        // The reducer is register arithmetic: it must not change timing.
        let w = 4;
        let m: Dmm = Machine::new(w, 3);
        let build = |src: WriteSource<u64>| {
            let mut p: Program<u64> = Program::new(16);
            p.phase("read", |t| Some(MemOp::Read(t as u64)));
            p.phase("write", move |t| Some(MemOp::Write(16 + t as u64, src)));
            p
        };
        let mut mem1 = BankedMemory::new(w, 32);
        let r1 = m.execute_with(&build(WriteSource::Reduced), &mut mem1, |r| r[0]);
        let mut mem2 = BankedMemory::new(w, 32);
        let r2 = m.execute(&build(WriteSource::LastRead), &mut mem2);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(mem1, mem2);
    }

    #[test]
    #[should_panic(expected = "supply a reducer")]
    fn plain_execute_rejects_reduced() {
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem: BankedMemory<u64> = BankedMemory::from_words(w, (0..8).collect());
        let mut p: Program<u64> = Program::new(4);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        p.phase("write", |t| {
            Some(MemOp::Write(4 + t as u64, WriteSource::Reduced))
        });
        let _ = m.execute(&p, &mut mem);
    }

    #[test]
    fn round_robin_is_fair() {
        // Two warps with equal work should interleave; total stage count
        // and cycles must not depend on warp order beyond the RR rule.
        let w = 4;
        let m: Dmm = Machine::new(w, 1);
        let mut mem = BankedMemory::new(w, 64);
        let mut p: Program<u64> = Program::new(8);
        p.phase("r1", |t| Some(MemOp::Read(t as u64)));
        p.phase("r2", |t| Some(MemOp::Read(8 + t as u64)));
        let r = m.execute(&p, &mut mem);
        assert_eq!(r.dispatches, 4);
        assert_eq!(r.cycles, 4); // 4 stages, l = 1
    }
}
