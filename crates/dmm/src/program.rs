//! SIMD programs for the memory machines.
//!
//! A [`Program`] is a sequence of *phases*; in each phase every thread
//! issues at most one memory operation ([`MemOp`]), and a warp only
//! advances to its next phase once all of its current requests have
//! completed (the paper's rule that a thread may send a new request only
//! after the previous one finishes). Phases therefore model the statements
//! of a CUDA kernel — e.g. the paper's transpose
//! `b[j][i] = a[i][j]` is a two-phase program: a read phase of `a` and a
//! write phase into `b` carrying each thread's last-read value.

use crate::access::{simd_consistent, MemOp};

/// One SIMD step: per-thread operations, with a label for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase<T> {
    /// Label shown in reports (e.g. `"read a"`).
    pub label: String,
    /// Per-thread operations, indexed by global thread id.
    pub ops: Vec<Option<MemOp<T>>>,
}

/// A multi-phase SIMD program over a fixed number of threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program<T> {
    num_threads: usize,
    phases: Vec<Phase<T>>,
}

impl<T: Copy> Program<T> {
    /// An empty program for `num_threads` threads.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    #[must_use]
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a program needs at least one thread");
        Self {
            num_threads,
            phases: Vec::new(),
        }
    }

    /// Append a phase built by evaluating `op_of` for every thread id.
    ///
    /// # Panics
    /// Panics if the phase mixes reads and writes (the DMM is SIMD: one
    /// instruction per step, paper §II).
    pub fn phase(
        &mut self,
        label: impl Into<String>,
        mut op_of: impl FnMut(usize) -> Option<MemOp<T>>,
    ) -> &mut Self {
        let ops: Vec<Option<MemOp<T>>> = (0..self.num_threads).map(&mut op_of).collect();
        assert!(
            simd_consistent(&ops),
            "phase mixes reads and writes, which SIMD execution forbids"
        );
        self.phases.push(Phase {
            label: label.into(),
            ops,
        });
        self
    }

    /// Number of threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of phases.
    #[must_use]
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The phases, in program order.
    #[must_use]
    pub fn phases(&self) -> &[Phase<T>] {
        &self.phases
    }

    /// Highest address referenced by any operation, if any — useful for
    /// sizing a [`crate::BankedMemory`].
    #[must_use]
    pub fn max_address(&self) -> Option<u64> {
        self.phases
            .iter()
            .flat_map(|p| p.ops.iter().flatten())
            .map(MemOp::address)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::WriteSource;

    #[test]
    fn build_two_phase_copy() {
        let mut p: Program<u64> = Program::new(4);
        p.phase("read", |t| Some(MemOp::Read(t as u64)));
        p.phase("write", |t| {
            Some(MemOp::Write(8 + t as u64, WriteSource::LastRead))
        });
        assert_eq!(p.num_phases(), 2);
        assert_eq!(p.num_threads(), 4);
        assert_eq!(p.phases()[0].label, "read");
        assert_eq!(p.max_address(), Some(11));
    }

    #[test]
    fn phase_with_inactive_threads() {
        let mut p: Program<u64> = Program::new(4);
        p.phase("partial", |t| (t % 2 == 0).then_some(MemOp::Read(t as u64)));
        let active = p.phases()[0].ops.iter().flatten().count();
        assert_eq!(active, 2);
    }

    #[test]
    #[should_panic(expected = "mixes reads and writes")]
    fn mixed_phase_rejected() {
        let mut p: Program<u64> = Program::new(2);
        p.phase("bad", |t| {
            Some(if t == 0 {
                MemOp::Read(0)
            } else {
                MemOp::Write(1, WriteSource::Const(0))
            })
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _: Program<u64> = Program::new(0);
    }

    #[test]
    fn empty_program_has_no_addresses() {
        let p: Program<u64> = Program::new(1);
        assert_eq!(p.max_address(), None);
        assert_eq!(p.num_phases(), 0);
    }
}
