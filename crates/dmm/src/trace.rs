//! Dispatch-level execution traces.
//!
//! [`Machine::execute`](crate::Machine::execute) reports aggregates; when
//! debugging a kernel's bank behaviour you want the *schedule*: which
//! warp dispatched when, how many stages it burned, which bank was the
//! bottleneck. [`trace`] collects one [`DispatchEvent`] per warp-phase
//! dispatch and renders a per-warp timeline.
//!
//! Tracing re-runs the scheduling logic of the machine in lock-step (the
//! scheduler is deterministic), so it can be used after the fact without
//! having paid for event collection during measurement runs. The
//! `timeline_consistency` test pins the two implementations together.

use crate::access::MergedAccess;
use crate::machine::{Machine, StageModel};
use crate::program::Program;
use serde::{Deserialize, Serialize};

/// One warp-phase dispatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchEvent {
    /// Warp index.
    pub warp: usize,
    /// Program phase index.
    pub phase: usize,
    /// Phase label.
    pub label: String,
    /// First cycle the access occupied the injection port.
    pub start: u64,
    /// Pipeline stages occupied (= congestion on the DMM).
    pub stages: u32,
    /// Cycle the last request completed.
    pub completion: u64,
    /// The bank with the highest unique-request load.
    pub hottest_bank: u32,
}

/// A complete execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Events in dispatch order.
    pub events: Vec<DispatchEvent>,
}

impl Trace {
    /// Total time units (matches `ExecReport::cycles`).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.completion + 1)
            .max()
            .unwrap_or(0)
    }

    /// Events of one warp, in dispatch order.
    #[must_use]
    pub fn warp_events(&self, warp: usize) -> Vec<&DispatchEvent> {
        self.events.iter().filter(|e| e.warp == warp).collect()
    }

    /// The event with the most stages (the kernel's worst serialization).
    #[must_use]
    pub fn worst(&self) -> Option<&DispatchEvent> {
        self.events.iter().max_by_key(|e| e.stages)
    }

    /// Render a compact per-warp timeline, one line per dispatch:
    /// `cycle  warp  phase-label  stages  hottest-bank`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("start    warp  stages  bank  phase\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:>6}  {:>5}  {:>6}  {:>4}  {}\n",
                e.start, e.warp, e.stages, e.hottest_bank, e.label
            ));
        }
        out
    }

    /// Render an ASCII Gantt chart: one lane per warp, one column per
    /// cycle. `#` marks cycles the warp occupies the injection port
    /// (its replays), `.` marks in-flight latency until completion.
    /// Charts wider than `max_cols` are truncated with an ellipsis —
    /// meant for small kernels (see the `inspect_layout` example).
    #[must_use]
    pub fn render_gantt(&self, max_cols: usize) -> String {
        let total = self.cycles() as usize;
        if total == 0 {
            return String::from("(empty trace)\n");
        }
        let n_warps = self.events.iter().map(|e| e.warp).max().unwrap_or(0) + 1;
        let cols = total.min(max_cols.max(1));
        let mut lanes = vec![vec![b' '; cols]; n_warps];
        for e in &self.events {
            let busy_end = e.start + u64::from(e.stages);
            for t in e.start..busy_end.min(cols as u64) {
                lanes[e.warp][t as usize] = b'#';
            }
            for t in busy_end..(e.completion + 1).min(cols as u64) {
                lanes[e.warp][t as usize] = b'.';
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "cycles 0..{total}{}\n",
            if total > cols { " (truncated)" } else { "" }
        ));
        for (warp, lane) in lanes.into_iter().enumerate() {
            out.push_str(&format!(
                "warp {warp:>3} |{}{}\n",
                String::from_utf8(lane).expect("ascii"),
                if total > cols { "…" } else { "|" }
            ));
        }
        out
    }
}

/// Re-run `program`'s schedule on `machine` and collect the trace.
///
/// Memory effects are *not* applied (tracing is schedule-only); run
/// [`Machine::execute`](crate::Machine::execute) for the data.
///
/// # Panics
/// As `Machine::execute` (thread-count validation).
#[must_use]
#[allow(clippy::needless_range_loop)] // warp indexes three parallel state arrays
pub fn trace<M: StageModel, T: Copy>(machine: &Machine<M>, program: &Program<T>) -> Trace {
    let w = machine.width();
    let p = program.num_threads();
    assert!(
        p.is_multiple_of(w),
        "thread count {p} must be a multiple of the width {w}"
    );
    let n_warps = p / w;
    let n_phases = program.num_phases();
    let latency = machine.latency();

    let mut pc = vec![0usize; n_warps];
    let mut ready_at = vec![0u64; n_warps];
    let mut port_time: u64 = 0;
    let mut rr = 0usize;
    let mut events = Vec::new();

    loop {
        for warp in 0..n_warps {
            while pc[warp] < n_phases {
                let phase = &program.phases()[pc[warp]];
                let ops = &phase.ops[warp * w..(warp + 1) * w];
                if ops.iter().any(Option::is_some) {
                    break;
                }
                pc[warp] += 1;
            }
        }
        if pc.iter().all(|&c| c >= n_phases) {
            break;
        }
        let candidate = (0..n_warps)
            .map(|k| (rr + k) % n_warps)
            .find(|&wi| pc[wi] < n_phases && ready_at[wi] <= port_time);
        let Some(warp) = candidate else {
            port_time = (0..n_warps)
                .filter(|&wi| pc[wi] < n_phases)
                .map(|wi| ready_at[wi])
                .min()
                .expect("unfinished warp exists");
            continue;
        };
        rr = (warp + 1) % n_warps;

        let phase_idx = pc[warp];
        let phase = &program.phases()[phase_idx];
        let ops = &phase.ops[warp * w..(warp + 1) * w];
        let merged = MergedAccess::merge(w, ops);
        let stages = M::stages(w, &merged);
        let start = port_time;
        port_time = start + u64::from(stages);
        let completion = start + u64::from(stages) - 1 + (latency - 1);
        ready_at[warp] = completion + 1;
        pc[warp] += 1;

        let hottest_bank = merged
            .bank_loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map_or(0, |(b, _)| b as u32);
        events.push(DispatchEvent {
            warp,
            phase: phase_idx,
            label: phase.label.clone(),
            start,
            stages,
            completion,
            hottest_bank,
        });
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemOp;
    use crate::machine::Dmm;
    use crate::memory::BankedMemory;

    fn stride_program(w: usize) -> Program<u64> {
        let mut p = Program::new(w * w);
        p.phase("stride", move |t| {
            Some(MemOp::Read(((t % w) * w + t / w) as u64))
        });
        p
    }

    #[test]
    fn timeline_consistency_with_execute() {
        // The trace must predict exactly the cycle count execute reports.
        for (w, l) in [(4usize, 1u64), (4, 3), (8, 5)] {
            let machine: Dmm = Machine::new(w, l);
            let program = stride_program(w);
            let tr = trace(&machine, &program);
            let mut mem = BankedMemory::new(w, w * w);
            let report = machine.execute(&program, &mut mem);
            assert_eq!(tr.cycles(), report.cycles, "w={w} l={l}");
            assert_eq!(tr.events.len() as u64, report.dispatches);
        }
    }

    #[test]
    fn events_expose_the_hot_bank() {
        let machine: Dmm = Machine::new(4, 1);
        let mut p: Program<u64> = Program::new(4);
        // All four lanes hit bank 2 with distinct addresses.
        p.phase("hot", |t| Some(MemOp::Read(2 + 4 * t as u64)));
        let tr = trace(&machine, &p);
        assert_eq!(tr.events.len(), 1);
        assert_eq!(tr.events[0].stages, 4);
        assert_eq!(tr.events[0].hottest_bank, 2);
        assert_eq!(tr.worst().unwrap().stages, 4);
    }

    #[test]
    fn warp_events_filter() {
        let machine: Dmm = Machine::new(4, 1);
        let mut p: Program<u64> = Program::new(8);
        p.phase("a", |t| Some(MemOp::Read(t as u64)));
        p.phase("b", |t| Some(MemOp::Read(8 + t as u64)));
        let tr = trace(&machine, &p);
        assert_eq!(tr.warp_events(0).len(), 2);
        assert_eq!(tr.warp_events(1).len(), 2);
    }

    #[test]
    fn render_contains_labels() {
        let machine: Dmm = Machine::new(4, 1);
        let mut p: Program<u64> = Program::new(4);
        p.phase("my-phase", |t| Some(MemOp::Read(t as u64)));
        let s = trace(&machine, &p).render();
        assert!(s.contains("my-phase"));
        assert!(s.starts_with("start"));
    }

    #[test]
    fn gantt_shows_port_occupancy() {
        // One warp, four distinct addresses in bank 0, latency 2:
        // 4 port cycles (####) then one latency cycle (.).
        let machine: Dmm = Machine::new(4, 2);
        let mut p: Program<u64> = Program::new(4);
        p.phase("hot", |t| Some(MemOp::Read((t as u64) * 4)));
        let tr = trace(&machine, &p);
        let g = tr.render_gantt(80);
        assert!(g.starts_with("cycles 0.."));
        let lane = g.lines().nth(1).unwrap();
        assert!(lane.contains("####."), "got {lane}");
    }

    #[test]
    fn gantt_truncates() {
        let machine: Dmm = Machine::new(4, 1);
        let p = stride_program(4); // 16 + 0 cycles
        let tr = trace(&machine, &p);
        let g = tr.render_gantt(5);
        assert!(g.contains("(truncated)"));
        assert!(g.lines().nth(1).unwrap().ends_with('…'));
    }

    #[test]
    fn gantt_empty() {
        let machine: Dmm = Machine::new(4, 1);
        let p: Program<u64> = Program::new(4);
        assert_eq!(trace(&machine, &p).render_gantt(10), "(empty trace)\n");
    }

    #[test]
    fn empty_program_empty_trace() {
        let machine: Dmm = Machine::new(4, 2);
        let p: Program<u64> = Program::new(4);
        let tr = trace(&machine, &p);
        assert_eq!(tr.cycles(), 0);
        assert!(tr.worst().is_none());
    }
}
