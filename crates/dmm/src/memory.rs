//! Banked shared memory.
//!
//! A single flat address space of `len` words mapped onto `width` banks in
//! the interleaved fashion of the DMM (paper §II): address `a` lives in
//! bank `a mod width`, at offset `a / width` within the bank. The storage
//! is functional — the timing machine decides *when* operations happen,
//! this type only materializes their effects.

use serde::{Deserialize, Serialize};

/// Flat word-addressable memory with interleaved bank structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankedMemory<T> {
    width: usize,
    words: Vec<T>,
}

impl<T: Copy + Default> BankedMemory<T> {
    /// Zero-initialized memory of `len` words on `width` banks.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize, len: usize) -> Self {
        assert!(width > 0, "memory width must be positive");
        Self {
            width,
            words: vec![T::default(); len],
        }
    }

    /// Memory initialized from existing contents.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn from_words(width: usize, words: Vec<T>) -> Self {
        assert!(width > 0, "memory width must be positive");
        Self { width, words }
    }
}

impl<T: Copy> BankedMemory<T> {
    /// Number of banks.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of addressable words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Bank holding address `a`.
    #[must_use]
    pub fn bank_of(&self, a: u64) -> u32 {
        (a % self.width as u64) as u32
    }

    /// Offset of address `a` within its bank.
    #[must_use]
    pub fn offset_of(&self, a: u64) -> u64 {
        a / self.width as u64
    }

    /// Read the word at `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of bounds.
    #[inline]
    #[must_use]
    pub fn read(&self, a: u64) -> T {
        self.words[usize::try_from(a).expect("address exceeds platform usize")]
    }

    /// Write the word at `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of bounds.
    #[inline]
    pub fn write(&mut self, a: u64, value: T) {
        let idx = usize::try_from(a).expect("address exceeds platform usize");
        self.words[idx] = value;
    }

    /// The whole address space as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.words
    }

    /// The contents of one bank, in offset order (address
    /// `bank`, `bank + width`, `bank + 2·width`, …).
    ///
    /// # Panics
    /// Panics if `bank ≥ width`.
    #[must_use]
    pub fn bank_contents(&self, bank: u32) -> Vec<T> {
        assert!((bank as usize) < self.width, "bank {bank} out of range");
        self.words
            .iter()
            .skip(bank as usize)
            .step_by(self.width)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_interleaved() {
        let m: BankedMemory<u32> = BankedMemory::new(4, 16);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(5), 1);
        assert_eq!(m.bank_of(15), 3);
        assert_eq!(m.offset_of(0), 0);
        assert_eq!(m.offset_of(5), 1);
        assert_eq!(m.offset_of(15), 3);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m: BankedMemory<f64> = BankedMemory::new(8, 64);
        m.write(17, 2.5);
        assert_eq!(m.read(17), 2.5);
        assert_eq!(m.read(16), 0.0);
    }

    #[test]
    fn from_words_preserves_contents() {
        let m = BankedMemory::from_words(2, vec![10u64, 20, 30, 40]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.read(2), 30);
        assert_eq!(m.as_slice(), &[10, 20, 30, 40]);
    }

    #[test]
    fn bank_contents_strides_through_memory() {
        let m = BankedMemory::from_words(4, (0u32..16).collect());
        assert_eq!(m.bank_contents(0), vec![0, 4, 8, 12]);
        assert_eq!(m.bank_contents(3), vec![3, 7, 11, 15]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _: BankedMemory<u8> = BankedMemory::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bank_rejected() {
        let m: BankedMemory<u8> = BankedMemory::new(2, 4);
        let _ = m.bank_contents(2);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_read_panics() {
        let m: BankedMemory<u8> = BankedMemory::new(2, 4);
        let _ = m.read(4);
    }

    #[test]
    fn empty_memory() {
        let m: BankedMemory<u8> = BankedMemory::new(3, 0);
        assert!(m.is_empty());
        assert_eq!(m.bank_contents(1), Vec::<u8>::new());
    }
}
