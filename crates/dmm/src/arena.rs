//! Shared-memory capacity management.
//!
//! The paper's §I sizes the problem: a streaming multiprocessor has at
//! most 48 KB of shared memory, a `32 × 32` matrix of doubles occupies
//! 8 KB, so *"it is not possible to store more than 6 matrices of size
//! 32 × 32 in a shared memory"* — which is why shared-memory algorithms
//! operate tile by tile. [`Arena`] models that budget: it hands out
//! word-aligned base offsets for matrices/arrays inside a fixed-capacity
//! banked memory and refuses to over-allocate, so kernels that juggle
//! several tiles (transpose: 2, `A·Bᵀ`: 3) state their footprint
//! explicitly.

use serde::{Deserialize, Serialize};

/// GTX-TITAN-class shared memory per SM, in bytes (paper §I: 16–48 KB;
/// CC 3.5 configures up to 48 KB).
pub const TITAN_SHARED_BYTES: usize = 48 * 1024;

/// A bump allocator over a banked shared memory of fixed word capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arena {
    width: usize,
    capacity_words: usize,
    used_words: usize,
}

/// A region handed out by the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First word address of the region.
    pub base: u64,
    /// Length in words.
    pub words: usize,
}

/// Error returned when a request exceeds the remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfSharedMemory {
    /// Words requested.
    pub requested: usize,
    /// Words remaining.
    pub available: usize,
}

impl std::fmt::Display for OutOfSharedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared memory exhausted: requested {} words, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfSharedMemory {}

impl Arena {
    /// An arena over `capacity_words` words on `width` banks.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize, capacity_words: usize) -> Self {
        assert!(width > 0, "width must be positive");
        Self {
            width,
            capacity_words,
            used_words: 0,
        }
    }

    /// The GTX-TITAN configuration for `word_bytes`-sized elements
    /// (8 for the paper's doubles): 48 KB on 32 banks.
    #[must_use]
    pub fn titan(word_bytes: usize) -> Self {
        assert!(word_bytes > 0, "word size must be positive");
        Self::new(32, TITAN_SHARED_BYTES / word_bytes)
    }

    /// Words handed out so far.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used_words
    }

    /// Words still available.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity_words - self.used_words
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_words
    }

    /// Allocate `words` words.
    ///
    /// # Errors
    /// Returns [`OutOfSharedMemory`] when the budget is exceeded.
    pub fn alloc(&mut self, words: usize) -> Result<Region, OutOfSharedMemory> {
        if words > self.available() {
            return Err(OutOfSharedMemory {
                requested: words,
                available: self.available(),
            });
        }
        let base = self.used_words as u64;
        self.used_words += words;
        Ok(Region { base, words })
    }

    /// Allocate a `w × w` matrix for this arena's width.
    ///
    /// # Errors
    /// Returns [`OutOfSharedMemory`] when the budget is exceeded.
    pub fn alloc_matrix(&mut self) -> Result<Region, OutOfSharedMemory> {
        self.alloc(self.width * self.width)
    }

    /// Build the backing memory for everything allocated so far.
    #[must_use]
    pub fn memory<T: Copy + Default>(&self) -> crate::BankedMemory<T> {
        crate::BankedMemory::new(self.width, self.used_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's capacity arithmetic: exactly six 32×32 double matrices
    /// fit in 48 KB, and a seventh does not.
    #[test]
    fn six_double_matrices_fit_in_titan() {
        let mut arena = Arena::titan(std::mem::size_of::<f64>());
        assert_eq!(arena.capacity(), 6144);
        for k in 0..6 {
            let region = arena.alloc_matrix().unwrap_or_else(|e| {
                panic!("matrix {k} must fit: {e}");
            });
            assert_eq!(region.words, 1024);
            assert_eq!(region.base, k * 1024);
        }
        let err = arena.alloc_matrix().unwrap_err();
        assert_eq!(err.requested, 1024);
        assert_eq!(err.available, 0);
    }

    #[test]
    fn float_matrices_fit_twice_as_many() {
        let mut arena = Arena::titan(std::mem::size_of::<f32>());
        let mut count = 0;
        while arena.alloc_matrix().is_ok() {
            count += 1;
        }
        assert_eq!(count, 12);
    }

    #[test]
    fn regions_are_disjoint_and_packed() {
        let mut arena = Arena::new(4, 100);
        let a = arena.alloc(10).unwrap();
        let b = arena.alloc(20).unwrap();
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 10);
        assert_eq!(arena.used(), 30);
        assert_eq!(arena.available(), 70);
    }

    #[test]
    fn memory_covers_allocations() {
        let mut arena = Arena::new(4, 64);
        arena.alloc(16).unwrap();
        arena.alloc(16).unwrap();
        let mem: crate::BankedMemory<u64> = arena.memory();
        assert_eq!(mem.len(), 32);
        assert_eq!(mem.width(), 4);
    }

    #[test]
    fn error_display() {
        let e = OutOfSharedMemory {
            requested: 1024,
            available: 3,
        };
        assert!(e.to_string().contains("1024"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn zero_word_alloc_is_free() {
        let mut arena = Arena::new(4, 4);
        let r = arena.alloc(0).unwrap();
        assert_eq!(r.words, 0);
        assert_eq!(arena.used(), 0);
    }
}
