//! Per-thread memory operations and warp-level CRCW merging.
//!
//! Threads of a warp execute in SIMD lockstep, so within one program phase
//! every thread issues at most one memory operation and all operations have
//! the same direction (the DMM forbids mixing reads and writes in one
//! SIMD instruction, paper §II). Requests to the same address are merged:
//! a full-warp broadcast read counts as a single request, and simultaneous
//! writes to one address are resolved arbitrarily (we deterministically
//! keep the lowest-numbered thread's value, a valid "arbitrary CRCW"
//! resolution).

use serde::{Deserialize, Serialize};

/// Where a write gets its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteSource<T> {
    /// The value most recently read by the same thread (the `c = a[..];
    /// b[..] = c` idiom of the paper's CUDA listings).
    LastRead,
    /// An immediate value.
    Const(T),
    /// A reduction of *all* values the thread has read so far, computed by
    /// the reducer passed to
    /// [`Machine::execute_with`](crate::Machine::execute_with). Models
    /// register-resident accumulation (e.g. a dot product across the read
    /// phases of a matrix-multiply kernel) without charging memory
    /// traffic for it.
    Reduced,
}

/// One thread's memory operation in one program phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemOp<T> {
    /// Read the word at the flat address into the thread's `last_read`
    /// register.
    Read(u64),
    /// Write to the flat address.
    Write(u64, WriteSource<T>),
}

impl<T> MemOp<T> {
    /// The flat address this operation touches.
    #[must_use]
    pub fn address(&self) -> u64 {
        match *self {
            MemOp::Read(a) | MemOp::Write(a, _) => a,
        }
    }

    /// Whether this is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, MemOp::Read(_))
    }
}

/// The merged view of one warp's phase: the unique addresses it touches
/// and the number of pipeline stages the access occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedAccess {
    /// Unique addresses, sorted.
    pub addresses: Vec<u64>,
    /// Per-bank unique-request counts (length = machine width).
    pub bank_loads: Vec<u32>,
}

impl MergedAccess {
    /// Merge the operations of one warp (CRCW: duplicate addresses count
    /// once) on a machine with `width` banks.
    #[must_use]
    pub fn merge<T>(width: usize, ops: &[Option<MemOp<T>>]) -> Self {
        let mut addresses: Vec<u64> = ops
            .iter()
            .filter_map(|op| op.as_ref().map(MemOp::address))
            .collect();
        addresses.sort_unstable();
        addresses.dedup();
        let mut bank_loads = vec![0u32; width];
        for &a in &addresses {
            bank_loads[(a % width as u64) as usize] += 1;
        }
        Self {
            addresses,
            bank_loads,
        }
    }

    /// The congestion of the merged access: max unique requests per bank.
    #[must_use]
    pub fn congestion(&self) -> u32 {
        self.bank_loads.iter().copied().max().unwrap_or(0)
    }

    /// Whether the warp issued anything at all this phase.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }
}

/// Validate that the operations of one warp phase are SIMD-consistent:
/// either all issued operations are reads or all are writes.
///
/// Returns `true` when consistent (an all-`None` phase is trivially so).
#[must_use]
pub fn simd_consistent<T>(ops: &[Option<MemOp<T>>]) -> bool {
    let mut any_read = false;
    let mut any_write = false;
    for op in ops.iter().flatten() {
        if op.is_read() {
            any_read = true;
        } else {
            any_write = true;
        }
    }
    !(any_read && any_write)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Op = MemOp<u64>;

    #[test]
    fn address_and_kind() {
        let r: Op = MemOp::Read(7);
        let w: Op = MemOp::Write(9, WriteSource::Const(1));
        assert_eq!(r.address(), 7);
        assert_eq!(w.address(), 9);
        assert!(r.is_read());
        assert!(!w.is_read());
    }

    #[test]
    fn merge_counts_unique_only() {
        let ops: Vec<Option<Op>> = vec![
            Some(MemOp::Read(0)),
            Some(MemOp::Read(0)),
            Some(MemOp::Read(4)),
            None,
        ];
        let m = MergedAccess::merge(4, &ops);
        assert_eq!(m.addresses, vec![0, 4]);
        assert_eq!(m.bank_loads, vec![2, 0, 0, 0]);
        assert_eq!(m.congestion(), 2);
    }

    #[test]
    fn broadcast_merges_to_one() {
        let ops: Vec<Option<Op>> = (0..32).map(|_| Some(MemOp::Read(5))).collect();
        let m = MergedAccess::merge(32, &ops);
        assert_eq!(m.congestion(), 1);
        assert_eq!(m.addresses.len(), 1);
    }

    #[test]
    fn empty_phase() {
        let ops: Vec<Option<Op>> = vec![None, None];
        let m = MergedAccess::merge(8, &ops);
        assert!(m.is_empty());
        assert_eq!(m.congestion(), 0);
    }

    #[test]
    fn simd_consistency() {
        let reads: Vec<Option<Op>> = vec![Some(MemOp::Read(0)), None, Some(MemOp::Read(1))];
        assert!(simd_consistent(&reads));
        let writes: Vec<Option<Op>> = vec![Some(MemOp::Write(0, WriteSource::LastRead)), None];
        assert!(simd_consistent(&writes));
        let mixed: Vec<Option<Op>> = vec![
            Some(MemOp::Read(0)),
            Some(MemOp::Write(1, WriteSource::LastRead)),
        ];
        assert!(!simd_consistent(&mixed));
        let empty: Vec<Option<Op>> = vec![None, None];
        assert!(simd_consistent(&empty));
    }

    #[test]
    fn merge_respects_width() {
        let ops: Vec<Option<Op>> = vec![Some(MemOp::Read(3)), Some(MemOp::Read(11))];
        // width 4: both in bank 3 → congestion 2
        assert_eq!(MergedAccess::merge(4, &ops).congestion(), 2);
        // width 8: banks 3 and 3 → still 2
        assert_eq!(MergedAccess::merge(8, &ops).congestion(), 2);
        // width 16: banks 3 and 11 → 1
        assert_eq!(MergedAccess::merge(16, &ops).congestion(), 1);
    }
}
