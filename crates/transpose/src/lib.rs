//! # rap-transpose — matrix transpose on the Discrete Memory Machine
//!
//! The paper's running application (§III, §VI): transposing a `w × w`
//! matrix held in banked shared memory. Three algorithms — the naive
//! CRSW and SRCW (which stride through banks) and the hand-optimized DRDW
//! (diagonal order, conflict-free under RAW) — are built as DMM programs
//! generic over the address mapping, so every (algorithm × RAW/RAS/RAP)
//! combination of Table III can be executed, timed, and verified.
//!
//! * [`TransposeKind`] / [`transpose_program`] — the kernels;
//! * [`run_transpose`] — allocate, execute on a [`rap_dmm::Dmm`], verify
//!   against the host reference;
//! * [`host`] — matrix staging through a mapping, reference transpose;
//! * closed forms [`raw_crsw_time`] / [`raw_drdw_time`] for Lemma 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod host;
pub mod runner;

pub use algorithms::{transpose_program, TransposeKind};
pub use host::{load_matrix, reference_transpose, store_matrix};
pub use runner::{raw_crsw_time, raw_drdw_time, run_transpose, TransposeRun};
