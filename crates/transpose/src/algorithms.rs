//! The three matrix transpose algorithms (paper §III, Figure 5).
//!
//! All three transpose a `w × w` matrix `a` into a second matrix `b` using
//! `w²` threads, one element per thread (thread `t` has `i = t / w`,
//! `j = t mod w`):
//!
//! * **CRSW** (Contiguous Read, Stride Write): `b[j][i] = a[i][j]` —
//!   reads rows, writes columns;
//! * **SRCW** (Stride Read, Contiguous Write): `b[i][j] = a[j][i]` —
//!   reads columns, writes rows;
//! * **DRDW** (Diagonal Read, Diagonal Write):
//!   `b[j][(i+j) mod w] = a[(i+j) mod w][j]` — both sides sweep a
//!   diagonal, so *under RAW* both are conflict-free. DRDW is the
//!   "ingenious" hand-optimized algorithm a developer must invent without
//!   RAP; CRSW/SRCW are the naive ones RAP rescues.
//!
//! Each algorithm is a two-phase [`Program`]: a read phase capturing
//! `a[..]` into per-thread registers and a write phase storing them into
//! `b`. The matrices live at `base_a` and `base_b` of the shared memory
//! and are laid out by the *same* [`MatrixMapping`] (in the paper's GPU
//! code both `a[32][32]` and `b[32][32]` use the same shift registers).

use rap_core::mapping::MatrixMapping;
use rap_dmm::{MemOp, Program, WriteSource};
use serde::{Deserialize, Serialize};

/// The transpose algorithm kinds of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransposeKind {
    /// Contiguous Read, Stride Write.
    Crsw,
    /// Stride Read, Contiguous Write.
    Srcw,
    /// Diagonal Read, Diagonal Write.
    Drdw,
}

impl TransposeKind {
    /// All algorithms in the paper's Table III row order.
    #[must_use]
    pub fn all() -> [TransposeKind; 3] {
        [
            TransposeKind::Crsw,
            TransposeKind::Srcw,
            TransposeKind::Drdw,
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TransposeKind::Crsw => "CRSW",
            TransposeKind::Srcw => "SRCW",
            TransposeKind::Drdw => "DRDW",
        }
    }

    /// The logical element thread `(i, j)` **reads** from `a`.
    #[must_use]
    pub fn read_coord(self, i: u32, j: u32, w: u32) -> (u32, u32) {
        match self {
            TransposeKind::Crsw => (i, j),
            TransposeKind::Srcw => (j, i),
            TransposeKind::Drdw => ((i + j) % w, j),
        }
    }

    /// The logical element thread `(i, j)` **writes** in `b`.
    #[must_use]
    pub fn write_coord(self, i: u32, j: u32, w: u32) -> (u32, u32) {
        match self {
            TransposeKind::Crsw => (j, i),
            TransposeKind::Srcw => (i, j),
            TransposeKind::Drdw => (j, (i + j) % w),
        }
    }
}

impl std::fmt::Display for TransposeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build the two-phase DMM program for `kind` on matrices laid out by
/// `mapping` at `base_a` (source) and `base_b` (destination).
///
/// # Panics
/// Panics if `mapping.width() == 0`.
#[must_use]
pub fn transpose_program<T: Copy>(
    kind: TransposeKind,
    mapping: &dyn MatrixMapping,
    base_a: u64,
    base_b: u64,
) -> Program<T> {
    let w = mapping.width() as u32;
    let mut p: Program<T> = Program::new((w * w) as usize);
    p.phase(format!("{kind} read"), |t| {
        let (i, j) = ((t as u32) / w, (t as u32) % w);
        let (ri, rj) = kind.read_coord(i, j, w);
        Some(MemOp::Read(base_a + u64::from(mapping.address(ri, rj))))
    });
    p.phase(format!("{kind} write"), |t| {
        let (i, j) = ((t as u32) / w, (t as u32) % w);
        let (wi, wj) = kind.write_coord(i, j, w);
        Some(MemOp::Write(
            base_b + u64::from(mapping.address(wi, wj)),
            WriteSource::LastRead,
        ))
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = TransposeKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["CRSW", "SRCW", "DRDW"]);
    }

    /// Every algorithm must implement `b = aᵀ`: the write coordinate is
    /// the transpose of the read coordinate.
    #[test]
    fn read_write_coords_compose_to_transpose() {
        let w = 8;
        for kind in TransposeKind::all() {
            for i in 0..w {
                for j in 0..w {
                    let (ri, rj) = kind.read_coord(i, j, w);
                    let (wi, wj) = kind.write_coord(i, j, w);
                    assert_eq!((wi, wj), (rj, ri), "{kind} at ({i},{j})");
                }
            }
        }
    }

    /// Each thread must read a distinct element and write a distinct
    /// element (the algorithms are permutations of work, not reductions).
    #[test]
    fn coords_are_bijective_over_threads() {
        let w = 16;
        for kind in TransposeKind::all() {
            let reads: HashSet<(u32, u32)> = (0..w)
                .flat_map(|i| (0..w).map(move |j| (i, j)))
                .map(|(i, j)| kind.read_coord(i, j, w))
                .collect();
            assert_eq!(reads.len(), (w * w) as usize, "{kind} reads");
            let writes: HashSet<(u32, u32)> = (0..w)
                .flat_map(|i| (0..w).map(move |j| (i, j)))
                .map(|(i, j)| kind.write_coord(i, j, w))
                .collect();
            assert_eq!(writes.len(), (w * w) as usize, "{kind} writes");
        }
    }

    /// DRDW reads and writes are diagonal: within one warp (fixed `i`),
    /// both the read banks and the write banks are pairwise distinct under
    /// RAW.
    #[test]
    fn drdw_is_conflict_free_per_warp_under_raw() {
        let w = 32;
        for i in 0..w {
            let read_banks: HashSet<u32> = (0..w)
                .map(|j| {
                    let (ri, rj) = TransposeKind::Drdw.read_coord(i, j, w);
                    (ri * w + rj) % w
                })
                .collect();
            assert_eq!(read_banks.len(), w as usize, "warp {i} reads");
            let write_banks: HashSet<u32> = (0..w)
                .map(|j| {
                    let (wi, wj) = TransposeKind::Drdw.write_coord(i, j, w);
                    (wi * w + wj) % w
                })
                .collect();
            assert_eq!(write_banks.len(), w as usize, "warp {i} writes");
        }
    }

    #[test]
    fn program_has_two_phases_with_labels() {
        let mapping = rap_core::RowShift::raw(4);
        let p: Program<u64> = transpose_program(TransposeKind::Crsw, &mapping, 0, 16);
        assert_eq!(p.num_phases(), 2);
        assert_eq!(p.num_threads(), 16);
        assert_eq!(p.phases()[0].label, "CRSW read");
        assert_eq!(p.phases()[1].label, "CRSW write");
        assert_eq!(p.max_address(), Some(31));
    }
}
