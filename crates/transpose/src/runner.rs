//! End-to-end transpose execution on the DMM, with verification and the
//! Lemma-1 closed forms.

use crate::algorithms::{transpose_program, TransposeKind};
use crate::host::{load_matrix, reference_transpose, store_matrix};
use rap_core::mapping::MatrixMapping;
use rap_dmm::{BankedMemory, Dmm, ExecReport, Machine};
use serde::{Deserialize, Serialize};

/// Result of one transpose run on the DMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransposeRun {
    /// Which algorithm ran.
    pub kind: TransposeKind,
    /// Scheme name of the mapping used.
    pub scheme: String,
    /// Timing and congestion report from the machine.
    pub report: ExecReport,
    /// Whether the output equalled the reference transpose.
    pub verified: bool,
}

impl TransposeRun {
    /// Mean congestion of the read phase.
    #[must_use]
    pub fn read_congestion(&self) -> f64 {
        self.report.phases[0].mean_congestion()
    }

    /// Mean congestion of the write phase.
    #[must_use]
    pub fn write_congestion(&self) -> f64 {
        self.report.phases[1].mean_congestion()
    }
}

/// Run `kind` on the DMM with the given mapping and latency, transposing
/// the matrix `data` (row-major, `w²` elements), and verify the result.
///
/// ```
/// use rap_core::RowShift;
/// use rap_transpose::{run_transpose, TransposeKind};
///
/// let data: Vec<f64> = (0..16).map(f64::from).collect();
/// let run = run_transpose(TransposeKind::Crsw, &RowShift::raw(4), 1, &data);
/// assert!(run.verified);
/// assert_eq!(run.write_congestion(), 4.0); // RAW stride write serializes
/// ```
///
/// The source matrix `a` occupies addresses `0..w²`, the destination `b`
/// occupies `w²..2w²`, both laid out by `mapping` — mirroring the paper's
/// `__shared__ double a[32][32], b[32][32]`.
///
/// # Panics
/// Panics if `data.len() != w²`.
#[must_use]
pub fn run_transpose(
    kind: TransposeKind,
    mapping: &dyn MatrixMapping,
    latency: u64,
    data: &[f64],
) -> TransposeRun {
    let w = mapping.width();
    assert_eq!(data.len(), w * w, "matrix data must have w² elements");
    let storage = mapping.storage_words();
    let base_b = storage as u64;

    let mut memory: BankedMemory<f64> = BankedMemory::new(w, 2 * storage);
    store_matrix(&mut memory, mapping, 0, data);

    let machine: Dmm = Machine::new(w, latency);
    let program = transpose_program::<f64>(kind, mapping, 0, base_b);
    let report = machine.execute(&program, &mut memory);

    let out = load_matrix(&memory, mapping, base_b);
    let verified = out == reference_transpose(w, data);

    TransposeRun {
        kind,
        scheme: mapping.scheme().name().to_string(),
        report,
        verified,
    }
}

/// Exact DMM time of CRSW/SRCW under RAW for `l ≤ w`:
/// `w² + w + l − 1` (a conflict-free phase of `w` stages plus a stride
/// phase of `w²` stages; Lemma 1's `Θ(w² + l)`).
#[must_use]
pub fn raw_crsw_time(w: u64, l: u64) -> u64 {
    debug_assert!(l <= w, "closed form assumes l ≤ w");
    w * w + w + l - 1
}

/// Exact DMM time of DRDW under RAW for `l ≤ w`:
/// `2w + l − 1` (two conflict-free phases; Lemma 1's `Θ(w + l)`).
#[must_use]
pub fn raw_drdw_time(w: u64, l: u64) -> u64 {
    debug_assert!(l <= w, "closed form assumes l ≤ w");
    2 * w + l - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rap_core::{RowShift, Scheme};

    fn test_matrix(w: usize) -> Vec<f64> {
        (0..w * w).map(|x| x as f64).collect()
    }

    #[test]
    fn every_algorithm_transposes_under_every_scheme() {
        let mut rng = SmallRng::seed_from_u64(21);
        for w in [4usize, 8, 32] {
            for scheme in Scheme::all() {
                let mapping = RowShift::of_scheme(scheme, &mut rng, w);
                for kind in TransposeKind::all() {
                    let run = run_transpose(kind, &mapping, 2, &test_matrix(w));
                    assert!(run.verified, "{kind} under {scheme} at w={w}");
                }
            }
        }
    }

    #[test]
    fn raw_crsw_matches_closed_form() {
        for (w, l) in [(4usize, 1u64), (8, 2), (16, 8), (32, 16)] {
            let mapping = RowShift::raw(w);
            let run = run_transpose(TransposeKind::Crsw, &mapping, l, &test_matrix(w));
            assert_eq!(
                run.report.cycles,
                raw_crsw_time(w as u64, l),
                "CRSW w={w} l={l}"
            );
        }
    }

    #[test]
    fn raw_srcw_matches_closed_form() {
        // SRCW mirrors CRSW: stride first, contiguous second — same total.
        for (w, l) in [(4usize, 1u64), (8, 4)] {
            let mapping = RowShift::raw(w);
            let run = run_transpose(TransposeKind::Srcw, &mapping, l, &test_matrix(w));
            assert_eq!(run.report.cycles, raw_crsw_time(w as u64, l));
        }
    }

    #[test]
    fn raw_drdw_matches_closed_form() {
        for (w, l) in [(4usize, 1u64), (8, 2), (32, 8)] {
            let mapping = RowShift::raw(w);
            let run = run_transpose(TransposeKind::Drdw, &mapping, l, &test_matrix(w));
            assert_eq!(
                run.report.cycles,
                raw_drdw_time(w as u64, l),
                "DRDW w={w} l={l}"
            );
        }
    }

    #[test]
    fn congestion_profile_matches_table3_raw() {
        let w = 32;
        let mapping = RowShift::raw(w);
        let crsw = run_transpose(TransposeKind::Crsw, &mapping, 1, &test_matrix(w));
        assert_eq!(crsw.read_congestion(), 1.0);
        assert_eq!(crsw.write_congestion(), 32.0);
        let srcw = run_transpose(TransposeKind::Srcw, &mapping, 1, &test_matrix(w));
        assert_eq!(srcw.read_congestion(), 32.0);
        assert_eq!(srcw.write_congestion(), 1.0);
        let drdw = run_transpose(TransposeKind::Drdw, &mapping, 1, &test_matrix(w));
        assert_eq!(drdw.read_congestion(), 1.0);
        assert_eq!(drdw.write_congestion(), 1.0);
    }

    #[test]
    fn congestion_profile_matches_table3_rap() {
        let mut rng = SmallRng::seed_from_u64(22);
        let w = 32;
        let mapping = RowShift::rap(&mut rng, w);
        let crsw = run_transpose(TransposeKind::Crsw, &mapping, 1, &test_matrix(w));
        assert_eq!(crsw.read_congestion(), 1.0, "RAP contiguous read");
        assert_eq!(crsw.write_congestion(), 1.0, "RAP stride write (Theorem 2)");
        let drdw = run_transpose(TransposeKind::Drdw, &mapping, 1, &test_matrix(w));
        // Diagonal under RAP is the one pattern with conflicts (~3.6).
        assert!(drdw.read_congestion() > 1.5);
        assert!(drdw.write_congestion() > 1.5);
    }

    #[test]
    fn rap_speeds_up_crsw_by_an_order_of_magnitude() {
        let mut rng = SmallRng::seed_from_u64(23);
        let w = 32;
        let l = 8;
        let raw = run_transpose(TransposeKind::Crsw, &RowShift::raw(w), l, &test_matrix(w));
        let rap = run_transpose(
            TransposeKind::Crsw,
            &RowShift::rap(&mut rng, w),
            l,
            &test_matrix(w),
        );
        let speedup = raw.report.cycles as f64 / rap.report.cycles as f64;
        assert!(
            speedup > 8.0,
            "RAP should be ~10x faster on the DMM, got {speedup:.1}x"
        );
    }

    #[test]
    fn run_metadata_is_filled() {
        let run = run_transpose(TransposeKind::Crsw, &RowShift::raw(4), 1, &test_matrix(4));
        assert_eq!(run.kind, TransposeKind::Crsw);
        assert_eq!(run.scheme, "RAW");
        assert_eq!(run.report.phases.len(), 2);
    }
}
