//! Host-side matrix helpers: moving logical matrices in and out of the
//! banked shared memory through an address mapping, plus the reference
//! transpose used to verify the DMM kernels.

use rap_core::mapping::MatrixMapping;
use rap_dmm::BankedMemory;

/// Store a row-major logical matrix (`data[i·w + j] = A[i][j]`) into
/// `memory` at `base`, placing each element at the address chosen by
/// `mapping`.
///
/// # Panics
/// Panics if `data.len() != w²` or the target addresses exceed the memory.
pub fn store_matrix<T: Copy>(
    memory: &mut BankedMemory<T>,
    mapping: &dyn MatrixMapping,
    base: u64,
    data: &[T],
) {
    let w = mapping.width() as u32;
    assert_eq!(
        data.len(),
        (w * w) as usize,
        "matrix data must have w² elements"
    );
    for i in 0..w {
        for j in 0..w {
            let a = base + u64::from(mapping.address(i, j));
            memory.write(a, data[(i * w + j) as usize]);
        }
    }
}

/// Load a row-major logical matrix from `memory` at `base` through
/// `mapping` (inverse of [`store_matrix`]).
///
/// # Panics
/// Panics if the source addresses exceed the memory.
#[must_use]
pub fn load_matrix<T: Copy + Default>(
    memory: &BankedMemory<T>,
    mapping: &dyn MatrixMapping,
    base: u64,
) -> Vec<T> {
    let w = mapping.width() as u32;
    let mut out = vec![T::default(); (w * w) as usize];
    for i in 0..w {
        for j in 0..w {
            let a = base + u64::from(mapping.address(i, j));
            out[(i * w + j) as usize] = memory.read(a);
        }
    }
    out
}

/// Reference transpose of a row-major `w × w` matrix.
///
/// # Panics
/// Panics if `data.len() != w²`.
#[must_use]
pub fn reference_transpose<T: Copy>(w: usize, data: &[T]) -> Vec<T> {
    assert_eq!(data.len(), w * w, "matrix data must have w² elements");
    let mut t = data.to_vec();
    for i in 0..w {
        for j in 0..w {
            t[j * w + i] = data[i * w + j];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rap_core::{RowShift, Scheme};

    #[test]
    fn reference_transpose_small() {
        let m = vec![1, 2, 3, 4]; // [[1,2],[3,4]]
        assert_eq!(reference_transpose(2, &m), vec![1, 3, 2, 4]);
    }

    #[test]
    fn reference_transpose_involution() {
        let w = 7;
        let m: Vec<u32> = (0..49).collect();
        assert_eq!(reference_transpose(w, &reference_transpose(w, &m)), m);
    }

    #[test]
    fn store_load_roundtrip_all_schemes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let w = 8;
        let data: Vec<u64> = (0..64).collect();
        for scheme in Scheme::all() {
            let mapping = RowShift::of_scheme(scheme, &mut rng, w);
            let mut mem = BankedMemory::new(w, 2 * w * w);
            store_matrix(&mut mem, &mapping, 64, &data);
            assert_eq!(load_matrix(&mem, &mapping, 64), data, "{scheme}");
        }
    }

    #[test]
    fn raw_store_is_row_major_in_memory() {
        let w = 4;
        let mapping = RowShift::raw(w);
        let data: Vec<u32> = (0..16).collect();
        let mut mem = BankedMemory::new(w, 16);
        store_matrix(&mut mem, &mapping, 0, &data);
        assert_eq!(mem.as_slice(), data.as_slice());
    }

    #[test]
    fn rap_store_rotates_rows_physically() {
        let mut rng = SmallRng::seed_from_u64(10);
        let w = 4;
        let mapping = RowShift::rap(&mut rng, w);
        let data: Vec<u32> = (0..16).collect();
        let mut mem = BankedMemory::new(w, 16);
        store_matrix(&mut mem, &mapping, 0, &data);
        // Physical row i contains the logical row i rotated by shift[i].
        for i in 0..4u32 {
            let s = mapping.shift_of_row(i);
            for j in 0..4u32 {
                let phys_col = (j + s) % 4;
                assert_eq!(
                    mem.read(u64::from(i * 4 + phys_col)),
                    data[(i * 4 + j) as usize]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "w² elements")]
    fn store_validates_length() {
        let mapping = RowShift::raw(4);
        let mut mem: BankedMemory<u32> = BankedMemory::new(4, 16);
        store_matrix(&mut mem, &mapping, 0, &[1, 2, 3]);
    }
}
