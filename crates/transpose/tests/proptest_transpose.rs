//! Property tests for the transpose algorithms.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rap_core::{RowShift, Scheme};
use rap_transpose::{
    load_matrix, raw_crsw_time, raw_drdw_time, reference_transpose, run_transpose, store_matrix,
    TransposeKind,
};

proptest! {
    /// Transposing twice with any pair of algorithms under any mapping is
    /// the identity.
    #[test]
    fn double_transpose_identity(
        seed in any::<u64>(), w_exp in 1u32..6,
        k1 in 0usize..3, k2 in 0usize..3, scheme_idx in 0usize..3,
    ) {
        let w = 1usize << w_exp;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::of_scheme(Scheme::all()[scheme_idx], &mut rng, w);
        let data: Vec<f64> = (0..w * w).map(|_| rng.gen_range(-1e3..1e3)).collect();

        let once = run_transpose(TransposeKind::all()[k1], &mapping, 1, &data);
        prop_assert!(once.verified);
        // Reconstruct the intermediate logical matrix and transpose again.
        let t = reference_transpose(w, &data);
        let twice = run_transpose(TransposeKind::all()[k2], &mapping, 1, &t);
        prop_assert!(twice.verified);
    }

    /// Store/load through any mapping round-trips arbitrary data at any
    /// base offset.
    #[test]
    fn store_load_roundtrip(
        seed in any::<u64>(), w in 1usize..24, scheme_idx in 0usize..3, base_rows in 0u64..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::of_scheme(Scheme::all()[scheme_idx], &mut rng, w);
        let data: Vec<u64> = (0..(w * w) as u64).map(|x| x.wrapping_mul(31)).collect();
        let base = base_rows * (w * w) as u64;
        let mut mem = rap_dmm::BankedMemory::new(w, (base_rows as usize + 1) * w * w);
        store_matrix(&mut mem, &mapping, base, &data);
        prop_assert_eq!(load_matrix(&mem, &mapping, base), data);
    }

    /// Closed forms order correctly: DRDW < CRSW for every (w, l), and
    /// both grow monotonically in l.
    #[test]
    fn closed_form_orderings(w in 2u64..64, l in 1u64..64) {
        prop_assume!(l <= w);
        prop_assert!(raw_drdw_time(w, l) < raw_crsw_time(w, l));
        if l > 1 {
            prop_assert_eq!(raw_crsw_time(w, l), raw_crsw_time(w, l - 1) + 1);
            prop_assert_eq!(raw_drdw_time(w, l), raw_drdw_time(w, l - 1) + 1);
        }
    }

    /// Congestion of CRSW under RAP is exactly (1, 1) for every instance
    /// (the paper's Table III RAP row is deterministic, not just likely).
    #[test]
    fn crsw_rap_always_one_one(seed in any::<u64>(), w_exp in 1u32..6) {
        let w = 1usize << w_exp;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mapping = RowShift::rap(&mut rng, w);
        let data: Vec<f64> = (0..w * w).map(|x| x as f64).collect();
        for kind in [TransposeKind::Crsw, TransposeKind::Srcw] {
            let run = run_transpose(kind, &mapping, 1, &data);
            prop_assert_eq!(run.read_congestion(), 1.0);
            prop_assert_eq!(run.write_congestion(), 1.0);
        }
    }

    /// RAS is never better than RAP on CRSW total time (RAP's stride
    /// write is free; RAS's is balls-into-bins), and never better than
    /// RAW on DRDW.
    #[test]
    fn scheme_orderings_hold(seed in any::<u64>()) {
        let w = 32;
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..w * w).map(|x| x as f64).collect();
        let ras = RowShift::ras(&mut rng, w);
        let rap = RowShift::rap(&mut rng, w);
        let raw = RowShift::raw(w);
        let crsw_ras = run_transpose(TransposeKind::Crsw, &ras, 4, &data).report.cycles;
        let crsw_rap = run_transpose(TransposeKind::Crsw, &rap, 4, &data).report.cycles;
        prop_assert!(crsw_rap <= crsw_ras);
        let drdw_raw = run_transpose(TransposeKind::Drdw, &raw, 4, &data).report.cycles;
        let drdw_ras = run_transpose(TransposeKind::Drdw, &ras, 4, &data).report.cycles;
        prop_assert!(drdw_raw <= drdw_ras);
    }
}
