//! Offline vendored JSON layer for the vendored `serde` subset.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — over `serde::Value`. Output
//! conventions follow upstream `serde_json`: compact form has no spaces,
//! pretty form indents with two spaces, non-finite floats serialize as
//! `null`, and object key order is preserved.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON text.
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from JSON text.
///
/// # Errors
/// Returns an error on malformed JSON, trailing input, or a value that does
/// not match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = f.to_string();
    out.push_str(&text);
    // Match serde_json: integral floats keep a ".0" so they re-parse as
    // floats (Rust's Display prints `3` for 3.0).
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // self.pos sits on the first hex digit; consume exactly four.
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i32).unwrap(), "-4");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let opt: Vec<Option<f64>> = vec![Some(1.5), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[1.5,null]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), opt);
    }

    #[test]
    fn pretty_format_matches_upstream_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::U64(2)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("3 x").is_err());
    }
}
