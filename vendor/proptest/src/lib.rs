//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest this workspace uses: the [`strategy::Strategy`]
//! trait (ranges, `Just`, tuples, `prop_map`, `prop_oneof!`, boxing),
//! `prop::collection::vec`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for this offline stub:
//! no shrinking (a failing case reports its values and seed instead), and
//! deterministic seeding derived from the test name so failures reproduce
//! exactly across runs. Case count defaults to 256, overridable with
//! `PROPTEST_CASES`.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A generator of values for property tests.
    ///
    /// Unlike upstream there is no value tree: `sample` draws a finished
    /// value directly (no shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe alias used by [`BoxedStrategy`] and `prop_oneof!`.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Equal-weight choice between strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the listed alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SmallRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `len` (start
    /// inclusive, end exclusive, matching upstream's `Range<usize>` size).
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, 0..80)`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is skipped.
        Reject(String),
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }

    /// FNV-1a, for deriving a per-test seed from its name.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property: run `cases` seeded cases, panic on first failure.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) when a case returns
    /// `TestCaseError::Fail`, reporting the case index and seed.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        let base = hash_name(name);
        let mut rejected = 0u64;
        for case in 0..cases {
            let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = SmallRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > cases.saturating_mul(8) {
                        panic!("proptest `{name}`: too many rejected cases ({rejected})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case} (seed {seed:#x}):\n{msg}");
                }
            }
        }
    }
}

pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each entry becomes a `#[test]` that samples its
/// arguments and runs the body across many seeded cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
}

/// Equal-weight choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Assert inside a `proptest!` body (fails the case, reporting values).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(2u32)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20);
        }

        #[test]
        fn assume_rejects(x in 0u32..10, y in 0u32..10) {
            prop_assume!(x <= y);
            prop_assert!(y >= x);
        }

        #[test]
        fn tuples_sample(pair in (0u32..4, 10u32..14)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10 && pair.1 < 14);
        }
    }
}
