//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the exact slice of `rand` it uses (see
//! `vendor/README.md`). The algorithms are faithful re-implementations of
//! the upstream ones so that seeded streams match rand 0.8 on 64-bit
//! platforms:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ (rand 0.8's 64-bit choice),
//!   including its SplitMix64-based `seed_from_u64`;
//! * [`SeedableRng::seed_from_u64`]'s generic fallback uses the PCG32
//!   stream exactly as `rand_core` 0.6 does;
//! * integer `gen_range` uses Lemire's widening-multiply rejection method
//!   with the exact lazy threshold (the distribution of rand 0.8's
//!   `UniformInt` samplers, but the draw-count stream of the exact
//!   `sample` path rather than `sample_single`'s approximate zone, which
//!   rejects — and therefore consumes — up to 2× as many raw draws).
//!
//! Only the APIs exercised by this workspace are provided: `Rng::{gen,
//! gen_range, gen_bool, fill_bytes}`, `SeedableRng`, and `rngs::SmallRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A type that can be sampled uniformly from the "standard" distribution
/// (full range for integers, `[0, 1)` for floats).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_small {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_small!(u8, i8, u16, i16, u32, i32);

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for isize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() & 1) == 1
    }
}
impl StandardSample for f64 {
    /// 53 random bits scaled into `[0, 1)` (rand's `Standard` for `f64`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let bits = rng.next_u64() >> 11;
        bits as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let bits = rng.next_u32() >> 8;
        bits as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A type with a uniform sampler over arbitrary sub-ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Widening multiply helper: `(hi, lo)` of the full-width product.
#[doc(hidden)]
pub trait WideningMul: Sized {
    /// Full-width product split into high and low halves.
    fn widening_mul(self, rhs: Self) -> (Self, Self);
}

macro_rules! impl_widening {
    ($t:ty, $wide:ty) => {
        impl WideningMul for $t {
            #[inline]
            fn widening_mul(self, rhs: Self) -> (Self, Self) {
                let wide = (self as $wide) * (rhs as $wide);
                (((wide >> <$t>::BITS) as $t), (wide as $t))
            }
        }
    };
}
impl_widening!(u8, u16);
impl_widening!(u16, u32);
impl_widening!(u32, u64);
impl_widening!(u64, u128);
impl WideningMul for usize {
    #[inline]
    fn widening_mul(self, rhs: Self) -> (Self, Self) {
        let (hi, lo) = WideningMul::widening_mul(self as u64, rhs as u64);
        (hi as usize, lo as usize)
    }
}

macro_rules! impl_uniform_int {
    ($t:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                Self::sample_range_inclusive(rng, low, high - 1)
            }

            /// Lemire's method with the **exact lazy threshold** (the
            /// `UniformInt::sample` path of rand 0.8, not the
            /// `sample_single` one): widening multiply, and reject the low
            /// word only when it falls below `2^N mod range`.
            ///
            /// rand 0.8's single-shot sampler approximates the acceptance
            /// zone with a power of two, which rejects up to **half** of
            /// all draws (e.g. exactly half for `range = 32`) — a
            /// mispredicted branch plus a wasted generator step on the
            /// Monte-Carlo hot path. The exact threshold accepts all but
            /// `range / 2^N` of draws, and the division that computes it
            /// runs only in that vanishing case (`lo < range` implies
            /// `lo` might be below the threshold; otherwise acceptance is
            /// division-free). Uniformity is exact, as in rand.
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrap-around to 0 means the range spans the whole type.
                if range == 0 {
                    return <$u_large as StandardSample>::standard_sample(rng) as $t;
                }
                loop {
                    let v = <$u_large as StandardSample>::standard_sample(rng);
                    let (hi, lo) = WideningMul::widening_mul(v, range);
                    // threshold = 2^N mod range < range, so `lo >= range`
                    // accepts without ever computing the modulus.
                    if lo >= range || lo >= range.wrapping_neg() % range {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    };
}

impl_uniform_int!(i8, u8, u32);
impl_uniform_int!(u8, u8, u32);
impl_uniform_int!(i16, u16, u32);
impl_uniform_int!(u16, u16, u32);
impl_uniform_int!(i32, u32, u32);
impl_uniform_int!(u32, u32, u32);
impl_uniform_int!(i64, u64, u64);
impl_uniform_int!(u64, u64, u64);
impl_uniform_int!(isize, usize, usize);
impl_uniform_int!(usize, usize, usize);

macro_rules! impl_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let value0_1 = <$t as StandardSample>::standard_sample(rng);
                let res = low + (high - low) * value0_1;
                // Guard against rounding up to `high`.
                if res < high {
                    res
                } else {
                    high - (high - low) * <$t>::EPSILON
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let value0_1 = <$t as StandardSample>::standard_sample(rng);
                low + (high - low) * value0_1
            }
        }
    };
}
impl_uniform_float!(f32);
impl_uniform_float!(f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution (full integer range, `[0,1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // rand's Bernoulli: compare 64 random bits against p·2⁶⁴.
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * ((1u128 << 64) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the PCG32 stream exactly
    /// as `rand_core` 0.6 does. Types with a dedicated expansion (e.g.
    /// xoshiro's SplitMix64) override this.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on 64-bit
    /// platforms. Fast, small, and statistically strong for simulation
    /// (not cryptographic) use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self { s }
        }

        /// SplitMix64 expansion, matching rand 0.8's
        /// `Xoshiro256PlusPlus::seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            // The seed cannot be all-zero: splitmix64 output over four
            // consecutive states never is.
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference: xoshiro256++ with state [1, 2, 3, 4] produces
        // 41943041, 58720359, 3588806011781223, 3591011842654386,
        // ... (from the public-domain xoshiro256plusplus.c).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        use super::RngCore;
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(0..13);
            assert!(x < 13);
            let y: usize = rng.gen_range(5..6);
            assert_eq!(y, 5);
            let z: i8 = rng.gen_range(-4i8..4);
            assert!((-4..4).contains(&z));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: u64 = rng.gen_range(0..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.75)).count();
        assert!((73_000..77_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
