//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde this workspace uses: the [`Serialize`] / [`Deserialize`]
//! traits (re-implemented over a JSON-shaped [`Value`] data model instead of
//! serde's visitor machinery), and re-exports of the derive macros from the
//! vendored `serde_derive`. The companion `serde_json` crate converts
//! [`Value`] to and from JSON text.
//!
//! Representation choices match upstream serde's defaults so that emitted
//! JSON is byte-compatible for the shapes used here: structs are objects,
//! tuples are arrays, newtype structs are transparent, enums are externally
//! tagged (unit variants as bare strings), `Option` is `null`-or-value.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the intermediate form both derives and
/// `serde_json` speak.
///
/// `Object` preserves insertion order (a plain pair list, not a map), which
/// keeps struct field order stable in emitted JSON like upstream serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The pair list if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The element list if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error (also what `serde_derive`'s `try_from` support
/// maps conversion failures into).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Build from anything printable (used for `TryFrom` error types).
    pub fn custom_display(err: impl std::fmt::Display) -> Self {
        DeError {
            msg: err.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a named field from an object's pair list.
///
/// Out-of-line so derive-generated code can lean on type inference for the
/// field type instead of spelling it out.
pub fn get_field<T: Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or(DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    _ => Err(DeError::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string. Upstream serde
/// only supports borrowed `&str`; the leak keeps derived error enums with
/// `&'static str` fields (diagnostic labels) round-trippable in tests.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

// ------------------------------------------------------- composite types

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or(DeError::custom("expected array for tuple"))?;
                if items.len() != $len {
                    return Err(DeError::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(some.to_value(), Value::U64(7));
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::U64(256)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i32::from_value(&Value::I64(-5)).unwrap(), -5);
    }

    #[test]
    fn get_field_missing() {
        let pairs = vec![("a".to_string(), Value::U64(1))];
        let got: Result<u32, _> = get_field(&pairs, "b");
        assert!(got.unwrap_err().to_string().contains("missing field"));
    }
}
