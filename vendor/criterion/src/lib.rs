//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of criterion this workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a real wall-clock timing harness (calibrated iteration count,
//! multiple samples, min/mean/max report). It measures for real so bench
//! output can back performance claims; it does not implement criterion's
//! statistical analysis, HTML reports, or baseline comparison.
//!
//! Tuning via environment: `CRITERION_SAMPLE_MS` (per-sample target,
//! default 100), `CRITERION_SAMPLES` (default 10), `CRITERION_WARMUP_MS`
//! (default 100).

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// measured computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `group_name/function/parameter` for parameterized benches.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

struct Settings {
    warmup: Duration,
    sample_target: Duration,
    samples: u32,
}

impl Settings {
    fn from_env() -> Self {
        let ms = |key: &str, default: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .map_or(Duration::from_millis(default), Duration::from_millis)
        };
        Settings {
            warmup: ms("CRITERION_WARMUP_MS", 100),
            sample_target: ms("CRITERION_SAMPLE_MS", 100),
            samples: std::env::var("CRITERION_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(10),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; honor a
        // trailing free-form argument as a substring filter like upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            settings: Settings::from_env(),
            filter,
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one(&self, label: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            settings: &self.settings,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!(
                "{label:<50} time: [{} {} {}]",
                format_ns(report.min_ns),
                format_ns(report.mean_ns),
                format_ns(report.max_ns),
            ),
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmark a routine without an input parameter.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// End the group (drop-equivalent; kept for API compatibility).
    pub fn finish(self) {}
}

struct Report {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher<'a> {
    settings: &'a Settings,
    report: Option<Report>,
}

impl Bencher<'_> {
    /// Measure `routine`: warm up, calibrate an iteration count per
    /// sample, then time several samples and record min/mean/max ns.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (also primes caches/branch predictors).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warmup {
            black_box(routine());
            warm_iters += 1;
        }

        // Calibrate how many iterations fill one sample window.
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.settings.sample_target / 4 {
                let scale =
                    self.settings.sample_target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters_per_sample = ((iters_per_sample as f64) * scale).round().max(1.0) as u64;
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(4);
        }
        let _ = warm_iters;

        let mut samples = Vec::with_capacity(self.settings.samples as usize);
        for _ in 0..self.settings.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.report = Some(Report {
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
