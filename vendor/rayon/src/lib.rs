//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of rayon this workspace uses: `Vec::into_par_iter().map(..)` /
//! `.map_init(..)` followed by `.collect()`, plus `ThreadPoolBuilder` /
//! `ThreadPool::install` and [`current_num_threads`].
//!
//! Execution model: eager fork-join over `std::thread::scope`. Items are
//! split into one contiguous chunk per thread, each chunk is processed in
//! order, and chunk results are concatenated in chunk order — so `collect`
//! is **order-preserving and deterministic** regardless of thread count or
//! scheduling, which the Monte-Carlo engine's reproducibility tests rely
//! on. There is no work stealing; chunks are equal-sized, which is a fine
//! fit for the uniform per-trial workloads here.

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "use hardware parallelism".
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations will use on this
/// thread (the `install`ed pool size, else hardware parallelism).
#[must_use]
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        overridden
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this stub;
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = hardware parallelism).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Infallible in this stub; the `Result` mirrors the upstream
    /// signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count setting. Threads are not held persistently; the
/// pool only records how many workers parallel operations inside
/// [`ThreadPool::install`] should spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count in effect on the calling
    /// thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let previous = THREAD_OVERRIDE.with(Cell::get);
        let _restore = Restore(previous);
        THREAD_OVERRIDE.with(|c| c.set(self.num_threads));
        op()
    }

    /// This pool's worker count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

pub mod iter {
    /// Conversion into a parallel iterator (only `Vec<T>` here).
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// Parallel iterator over an owned `Vec`.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> VecParIter<T> {
        /// Parallel map; `collect` runs the chunks across threads.
        pub fn map<R, F>(self, f: F) -> MapOp<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            MapOp {
                items: self.items,
                f,
            }
        }

        /// Parallel map with per-worker state (e.g. a scratch buffer):
        /// `init` runs once per worker thread, and `f` receives the
        /// worker's state with each item.
        pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInitOp<T, INIT, F>
        where
            R: Send,
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, T) -> R + Sync,
        {
            MapInitOp {
                items: self.items,
                init,
                f,
            }
        }
    }

    /// Pending `map` stage.
    pub struct MapOp<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> MapOp<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Execute across threads and gather results in input order.
        pub fn collect<C: FromParallelVec<R>>(self) -> C {
            let f = &self.f;
            C::from_parallel_vec(run_chunked(
                self.items,
                &move |_state: &mut (), item| f(item),
                &|| (),
            ))
        }
    }

    /// Pending `map_init` stage.
    pub struct MapInitOp<T, INIT, F> {
        items: Vec<T>,
        init: INIT,
        f: F,
    }

    impl<T, S, R, INIT, F> MapInitOp<T, INIT, F>
    where
        T: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        /// Execute across threads and gather results in input order.
        pub fn collect<C: FromParallelVec<R>>(self) -> C {
            let f = &self.f;
            C::from_parallel_vec(run_chunked(self.items, f, &self.init))
        }
    }

    /// Sink for parallel results (only `Vec<R>` here).
    pub trait FromParallelVec<R> {
        fn from_parallel_vec(v: Vec<R>) -> Self;
    }

    impl<R> FromParallelVec<R> for Vec<R> {
        fn from_parallel_vec(v: Vec<R>) -> Self {
            v
        }
    }

    /// One contiguous chunk per worker; join in chunk order so output
    /// order (and thus any order-sensitive reduction downstream) is
    /// independent of scheduling.
    fn run_chunked<T, S, R>(
        items: Vec<T>,
        f: &(impl Fn(&mut S, T) -> R + Sync),
        init: &(impl Fn() -> S + Sync),
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let threads = super::current_num_threads().max(1);
        let len = items.len();
        if threads == 1 || len <= 1 {
            let mut state = init();
            return items.into_iter().map(|item| f(&mut state, item)).collect();
        }
        let chunk_len = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut source = items.into_iter();
        loop {
            let chunk: Vec<T> = source.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut state = init();
                        chunk
                            .into_iter()
                            .map(|item| f(&mut state, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }
}

pub mod prelude {
    pub use crate::iter::{FromParallelVec, IntoParallelIterator, VecParIter};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = v.iter().map(|x| x * x).collect();
        for n in [1usize, 2, 5, 16] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| v.clone().into_par_iter().map(|x| x * x).collect());
            assert_eq!(got, reference, "thread count {n}");
        }
    }

    #[test]
    fn map_init_runs_per_worker() {
        let v: Vec<u64> = (0..100).collect();
        let got: Vec<u64> = v
            .clone()
            .into_par_iter()
            .map_init(
                || 0u64,
                |scratch, x| {
                    *scratch += 1;
                    x + 1
                },
            )
            .collect();
        assert_eq!(got, v.iter().map(|x| x + 1).collect::<Vec<_>>());
    }
}
