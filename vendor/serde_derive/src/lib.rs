//! Offline vendored `Serialize` / `Deserialize` derive macros.
//!
//! The build environment has no crates.io access, so this crate implements
//! the two derives against the vendored `serde` subset (a JSON-shaped
//! `Value` data model) with a hand-written token parser — no `syn` or
//! `quote`. It supports the shapes this workspace actually uses:
//!
//! * structs with named fields (optionally generic),
//! * tuple and unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching upstream serde's default representation),
//! * the container attribute `#[serde(try_from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic parameter.
struct Param {
    /// Full declaration text, e.g. `T: Copy` or `'a`.
    decl: String,
    /// Bare name, e.g. `T` or `'a`.
    name: String,
    /// Whether this is a type parameter (gets the extra serde bound).
    is_type: bool,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    params: Vec<Param>,
    where_clause: String,
    kind: Kind,
    try_from: Option<String>,
    into: Option<String>,
}

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let model = parse_input(input);
    generate_serialize(&model)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let model = parse_input(input);
    generate_deserialize(&model)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;
    let mut into = None;

    // Container attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut try_from, &mut into);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    let mut params = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0usize;
        let mut current = String::new();
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    if depth > 1 {
                        current.push('<');
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.trim().is_empty() {
                            params.push(parse_param(&current));
                        }
                        i += 1;
                        break;
                    }
                    current.push('>');
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    if !current.trim().is_empty() {
                        params.push(parse_param(&current));
                    }
                    current.clear();
                }
                Some(tt) => {
                    current.push_str(&tt.to_string());
                    current.push(' ');
                }
                None => panic!("unterminated generics on {name}"),
            }
            i += 1;
        }
    }

    // Optional where clause (verbatim pass-through).
    let mut where_clause = String::new();
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        where_clause.push_str("where ");
        i += 1;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Group(g)
                    if g.delimiter() == Delimiter::Brace
                        || g.delimiter() == Delimiter::Parenthesis =>
                {
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                other => {
                    where_clause.push_str(&other.to_string());
                    where_clause.push(' ');
                    i += 1;
                }
            }
        }
    }

    let kind = if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body for {name}, found {other:?}"),
        };
        Kind::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("expected struct body for {name}, found {other:?}"),
        }
    };

    Input {
        name,
        params,
        where_clause,
        kind,
        try_from,
        into,
    }
}

fn parse_param(decl: &str) -> Param {
    let trimmed = decl.trim();
    if let Some(rest) = trimmed.strip_prefix('\'') {
        let name: String = rest.split_whitespace().next().unwrap_or("").to_string();
        Param {
            decl: trimmed.to_string(),
            name: format!("'{name}"),
            is_type: false,
        }
    } else if trimmed.starts_with("const ") {
        let name = trimmed
            .split_whitespace()
            .nth(1)
            .unwrap_or("")
            .trim_end_matches(':')
            .to_string();
        Param {
            decl: trimmed.to_string(),
            name,
            is_type: false,
        }
    } else {
        let name = trimmed
            .split([':', ' '])
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        Param {
            decl: trimmed.to_string(),
            name,
            is_type: true,
        }
    }
}

/// Extract `try_from`/`into` from a `serde(...)` attribute body.
fn parse_serde_attr(attr: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    if !matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
        return;
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) = (inner.get(j), inner.get(j + 1), inner.get(j + 2))
        {
            if eq.as_char() == '=' {
                let value = lit.to_string();
                let value = value.trim_matches('"').to_string();
                match key.to_string().as_str() {
                    "try_from" => *try_from = Some(value),
                    "into" => *into = Some(value),
                    other => panic!("unsupported serde attribute `{other}` (vendored subset)"),
                }
                j += 3;
                if matches!(inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                continue;
            }
        }
        panic!("unsupported serde attribute shape (vendored subset)");
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:` then the type, up to a top-level comma.
                assert!(
                    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "expected `:` after field `{}`",
                    fields.last().expect("just pushed")
                );
                i += 1;
                let mut angle = 0i32;
                while let Some(tt) = tokens.get(i) {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut saw_content_since_comma = false;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_content_since_comma = false;
            }
            _ => saw_content_since_comma = true,
        }
    }
    if !saw_content_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(parse_named_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an explicit discriminant, then the separating comma.
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    while let Some(tt) = tokens.get(i) {
                        if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                        i += 1;
                    }
                }
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
                variants.push(Variant { name, kind });
            }
            other => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ------------------------------------------------------------- generation

impl Input {
    /// `impl<...>` parameter list with `extra_bound` added to type params.
    fn impl_params(&self, extra_bound: &str) -> String {
        if self.params.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .params
            .iter()
            .map(|p| {
                if p.is_type {
                    if p.decl.contains(':') {
                        format!("{} + {extra_bound}", p.decl)
                    } else {
                        format!("{}: {extra_bound}", p.decl.trim())
                    }
                } else {
                    p.decl.clone()
                }
            })
            .collect();
        format!("<{}>", parts.join(", "))
    }

    /// `<T, 'a, N>` — bare names for the `for Name<...>` position.
    fn type_params(&self) -> String {
        if self.params.is_empty() {
            return String::new();
        }
        let names: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
        format!("<{}>", names.join(", "))
    }
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let impl_params = input.impl_params("::serde::Serialize");
    let type_params = input.type_params();
    let where_clause = &input.where_clause;

    let body = if let Some(into_ty) = &input.into {
        format!(
            "let __converted: {into_ty} = \
             ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__converted)"
        )
    } else {
        match &input.kind {
            Kind::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "{name}::{vname} => ::serde::Value::String(\
                                 ::std::string::String::from(\"{vname}\")),"
                            ),
                            VariantKind::Tuple(1) => format!(
                                "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Serialize::to_value(__f0))]),"
                            ),
                            VariantKind::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|k| format!("__f{k}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({}) => \
                                     ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Array(::std::vec![{}]))]),",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            VariantKind::Struct(fields) => {
                                let binds = fields.join(", ");
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{f}\"), \
                                             ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {binds} }} => \
                                     ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Object(::std::vec![{}]))]),",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Serialize for {name}{type_params} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let impl_params = input.impl_params("::serde::Deserialize");
    let type_params = input.type_params();
    let where_clause = &input.where_clause;

    let body = if let Some(try_from_ty) = &input.try_from {
        format!(
            "let __inner: {try_from_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::core::convert::TryFrom::try_from(__inner)\
             .map_err(::serde::DeError::custom_display)"
        )
    } else {
        match &input.kind {
            Kind::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::get_field(__obj, \"{f}\")?,"))
                    .collect();
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for struct {name}\"))?;\n\
                     ::core::result::Result::Ok({name} {{ {} }})",
                    entries.join(" ")
                )
            }
            Kind::TupleStruct(1) => {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                )
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?,"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for tuple struct {name}\"))?;\n\
                     if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                     ::serde::DeError::custom(\"wrong tuple length for {name}\")); }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(" ")
                )
            }
            Kind::UnitStruct => format!("::core::result::Result::Ok({name})"),
            Kind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| {
                        format!(
                            "\"{0}\" => ::core::result::Result::Ok({name}::{0}),",
                            v.name
                        )
                    })
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vname = &v.name;
                        match &v.kind {
                            VariantKind::Unit => None,
                            VariantKind::Tuple(1) => Some(format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__val)?)),"
                            )),
                            VariantKind::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|k| {
                                        format!("::serde::Deserialize::from_value(&__arr[{k}])?,")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => {{\n\
                                     let __arr = __val.as_array().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected array for {name}::{vname}\"))?;\n\
                                     if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                                     ::serde::DeError::custom(\"wrong tuple length for {name}::{vname}\")); }}\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n}}",
                                    items.join(" ")
                                ))
                            }
                            VariantKind::Struct(fields) => {
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!("{f}: ::serde::get_field(__fields, \"{f}\")?,")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => {{\n\
                                     let __fields = __val.as_object().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected object for {name}::{vname}\"))?;\n\
                                     ::core::result::Result::Ok({name}::{vname} {{ {} }})\n}}",
                                    entries.join(" ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {}\n\
                     __other => ::core::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     __tagged => {{\n\
                     let __obj = __tagged.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected string or object for enum {name}\"))?;\n\
                     let (__tag, __val) = __obj.first().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected single-entry object for enum {name}\"))?;\n\
                     match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::core::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                     }}\n\
                     }}",
                    unit_arms.join("\n"),
                    tagged_arms.join("\n")
                )
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Deserialize for {name}{type_params} {where_clause} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
